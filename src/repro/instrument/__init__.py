"""Pluggable instrumentation for the cycle kernel.

The simulation stack is split into three layers (see
``docs/architecture.md``): the pure cycle kernel
(:class:`~repro.network.engine.SimulationEngine`), this instrumentation
bus, and the harness's execution backends. Everything measurable —
latency, power, time series, utilization profiles, event traces — is an
:class:`Observer` attached to an :class:`InstrumentBus`; the kernel never
learns what is being measured.
"""

from .bus import InstrumentBus, Observer, TransitionEvent
from .observers import (
    MeasurementMeter,
    PowerObserver,
    ProbeObserver,
    SeriesObserver,
)
from .trace import TraceRecorder

__all__ = [
    "InstrumentBus",
    "Observer",
    "TransitionEvent",
    "MeasurementMeter",
    "PowerObserver",
    "ProbeObserver",
    "SeriesObserver",
    "TraceRecorder",
]
