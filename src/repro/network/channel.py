"""Network channel: a DVS channel bound into the topology.

Glues one :class:`~repro.core.dvs_link.DVSChannel` (eight serial links plus
regulator and DVS state machine) to a directed topology edge, and computes
flit arrival times: a flit launched at router cycle ``t`` lands in the
downstream input buffer at

    ceil(t + pipeline_latency + serialization_cycles)

where ``serialization_cycles`` is the channel occupancy at the current
frequency level (1 router cycle at the top level, 8 at the bottom for the
paper's parameters) and ``pipeline_latency`` covers the upstream router's
remaining pipeline stages plus wire flight.
"""

from __future__ import annotations

import math

from ..core.dvs_link import DVSChannel
from ..errors import ConfigError
from .topology import ChannelSpec


class NetworkChannel:
    """One directed inter-router channel with DVS state."""

    __slots__ = ("spec", "dvs", "pipeline_latency")

    def __init__(self, spec: ChannelSpec, dvs: DVSChannel, pipeline_latency: int):
        if pipeline_latency < 0:
            raise ConfigError("pipeline latency must be non-negative")
        self.spec = spec
        self.dvs = dvs
        self.pipeline_latency = pipeline_latency

    def can_accept(self, now: int) -> bool:
        """Whether a flit may be launched onto the wire this cycle."""
        return self.dvs.can_accept_flit(now)

    def send(self, now: int) -> int:
        """Launch one flit; return the downstream arrival cycle."""
        done = self.dvs.send_flit(now)
        return int(math.ceil(done + self.pipeline_latency))

    @property
    def serialization_cycles(self) -> float:
        return self.dvs.serialization_cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NetworkChannel {self.spec.src_node}:{self.spec.src_port} -> "
            f"{self.spec.dst_node}:{self.spec.dst_port} level={self.dvs.level}>"
        )
