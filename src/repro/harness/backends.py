"""Unified execution backends for batches of simulations.

Every sweep in the harness reduces to the same shape of work: a list of
(picklable, frozen) :class:`~repro.config.SimulationConfig` objects, each
run through :func:`~repro.harness.runner.run_simulation`, results wanted
in input order. An :class:`ExecutionBackend` owns exactly that mapping;
:mod:`repro.harness.sweep` and :mod:`repro.harness.parallel` both build
their points on top of it instead of each carrying its own execution
logic.

Determinism: a simulation is fully described by its config, so
:class:`SerialBackend` and :class:`ProcessPoolBackend` produce
bit-identical result lists — the backend choice is purely a wall-clock
decision. Set the ``REPRO_PROCESSES`` environment variable to make every
backend-unaware sweep (including all of
:mod:`repro.harness.experiments`) fan out transparently.

Failure semantics (see :mod:`repro.harness.resilience`): every point runs
under a :class:`~repro.harness.resilience.RetryPolicy` — bounded retries
with deterministic backoff, optional per-point timeout, interrupts always
re-raised. :meth:`ExecutionBackend.run` returns partial results plus a
:class:`~repro.harness.resilience.FailureReport`;
:meth:`ExecutionBackend.map_configs` is the strict wrapper that raises a
structured :class:`~repro.errors.SweepExecutionError` when any point is
lost. The process pool isolates worker crashes: a ``BrokenProcessPool``
respawns the pool and resubmits only the chunks that died with it.

Both backends consult the sweep result cache (:mod:`repro.harness.cache`)
before running anything: previously simulated configs are answered from
disk, only the misses are executed, and fresh results are *checkpointed
incrementally* — the serial path stores each point as it is computed, the
pool stores each chunk as it completes — so an interrupted campaign can
be resumed from the cache. Caching does not change results and is
disabled entirely via ``REPRO_CACHE=off`` or the CLI's ``--no-cache``.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, cast

from ..config import SimulationConfig
from ..errors import ExperimentError
from ..network.batched import (
    DEFAULT_MAX_BATCH,
    BatchedEngine,
    DivergenceOverflow,
    plan_batches,
    require_numpy,
)
from ..network.simulator import SimulationResult
from .cache import SweepCache, get_cache
from .resilience import (
    DEFAULT_RETRY_POLICY,
    FailureReport,
    PointFailure,
    RetryPolicy,
    run_chunk,
    run_point,
)
from .runner import _sanitize_from_env, run_simulation


class ExecutionBackend:
    """Maps a batch of simulation configs to results, preserving order."""

    def run(
        self, configs: Iterable[SimulationConfig]
    ) -> tuple[list[Optional[SimulationResult]], FailureReport]:
        """Run every config, degrading failed points to ``None`` holes.

        Returns the results in input order plus the
        :class:`FailureReport` explaining every hole (and every recovered
        incident). Never raises for per-point faults.
        """
        raise NotImplementedError

    def map_configs(
        self, configs: Iterable[SimulationConfig]
    ) -> list[SimulationResult]:
        """Strict variant of :meth:`run`: all results or a structured error.

        Raises :class:`~repro.errors.SweepExecutionError` (with the
        per-point :class:`PointFailure` records attached) when any point
        failed after retries.
        """
        results, report = self.run(configs)
        report.raise_if_failures(total=len(results))
        return cast("list[SimulationResult]", results)


class SerialBackend(ExecutionBackend):
    """Runs the batch in-process, one simulation at a time."""

    def __init__(self, *, retry: Optional[RetryPolicy] = None) -> None:
        self.retry = DEFAULT_RETRY_POLICY if retry is None else retry

    def run(
        self, configs: Iterable[SimulationConfig]
    ) -> tuple[list[Optional[SimulationResult]], FailureReport]:
        configs = list(configs)
        report = FailureReport()
        cache = get_cache()
        if cache is None:
            return [self._point(config, report) for config in configs], report
        results = cache.map_cached(
            configs,
            lambda missing: (self._point(config, report) for config in missing),
        )
        return results, report

    def _point(
        self, config: SimulationConfig, report: FailureReport
    ) -> Optional[SimulationResult]:
        # run_simulation is resolved through the module global on purpose:
        # tests monkeypatch repro.harness.backends.run_simulation.
        result, failure = run_point(config, self.retry, runner=run_simulation)
        if failure is not None:
            report.record(failure)
        return result

    def __repr__(self) -> str:
        if self.retry is DEFAULT_RETRY_POLICY:
            return "SerialBackend()"
        return f"SerialBackend(retry={self.retry!r})"


@dataclass
class _Chunk:
    """One submitted work unit: a slice of configs plus their positions.

    ``allow_fanout`` is cleared on chunks born from a
    :class:`FanoutRequest` so a diverging batch fans out at most once —
    the sub-batches run unbudgeted rather than recursing.
    """

    configs: list[SimulationConfig]
    indices: list[int]
    allow_fanout: bool = True


class ProcessPoolBackend(ExecutionBackend):
    """Fans the batch out over a :class:`ProcessPoolExecutor`.

    Chunks are submitted individually (``submit`` + wait, not
    ``pool.map``), which buys three things: results checkpoint to the
    sweep cache as each chunk completes, a raising config comes back as a
    :class:`PointFailure` for just that point, and a worker crash
    (``BrokenProcessPool``) is isolated — the pool is respawned and only
    the chunks that died with it are resubmitted, up to
    ``max_pool_respawns`` times.

    ``chunksize`` controls how many configs each worker receives per IPC
    round-trip; the default sizes chunks so each worker sees ~4 of them
    over the batch, amortizing pickling without starving the pool on
    unevenly sized simulations. A single-process pool degenerates to the
    serial path (no pool spawn).
    """

    def __init__(
        self,
        processes: int = 4,
        *,
        chunksize: int | None = None,
        retry: Optional[RetryPolicy] = None,
        max_pool_respawns: int = 3,
    ) -> None:
        if processes < 1:
            raise ExperimentError("need at least one process")
        if chunksize is not None and chunksize < 1:
            raise ExperimentError("chunksize must be positive")
        if max_pool_respawns < 0:
            raise ExperimentError("max_pool_respawns cannot be negative")
        self.processes = processes
        self.chunksize = chunksize
        self.retry = DEFAULT_RETRY_POLICY if retry is None else retry
        self.max_pool_respawns = max_pool_respawns

    def run(
        self, configs: Iterable[SimulationConfig]
    ) -> tuple[list[Optional[SimulationResult]], FailureReport]:
        configs = list(configs)
        report = FailureReport()
        if not configs:
            return [], report
        cache = get_cache()
        if cache is None:
            results: list[Optional[SimulationResult]] = [None] * len(configs)
            self._execute(configs, list(range(len(configs))), results, report, None)
            return results, report
        results, miss_indices, miss_configs = cache.partition(configs)
        if miss_configs:
            self._execute(miss_configs, miss_indices, results, report, cache)
        return results, report

    # -- execution --------------------------------------------------------

    def _chunks(
        self, configs: list[SimulationConfig], indices: list[int]
    ) -> Iterator[_Chunk]:
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, len(configs) // (self.processes * 4))
        for start in range(0, len(configs), chunksize):
            stop = start + chunksize
            yield _Chunk(configs[start:stop], indices[start:stop])

    def _spawn(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.processes)

    def _execute(
        self,
        configs: list[SimulationConfig],
        indices: list[int],
        results: list[Optional[SimulationResult]],
        report: FailureReport,
        cache: Optional[SweepCache],
    ) -> None:
        """Run *configs*, writing ``results[indices[i]]`` as work lands.

        Every completed point is checkpointed to *cache* immediately, so
        whatever interrupts the batch, finished work survives.
        """
        if self.processes == 1:
            self._run_inline(configs, indices, results, report, cache)
            return

        pool = self._spawn()
        pending: dict[Future, _Chunk] = {}
        respawns = 0
        try:
            for chunk in self._chunks(configs, indices):
                pending[self._submit(pool, chunk)] = chunk
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                lost: list[_Chunk] = []
                followups: list[_Chunk] = []
                for future in done:
                    self._settle(future, pending.pop(future), results, report,
                                 cache, lost, followups)
                if not lost:
                    for chunk in followups:
                        pending[self._submit(pool, chunk)] = chunk
                    continue
                # The pool is broken: every other in-flight future dies
                # with it (already-finished ones still return fine).
                for future, chunk in list(pending.items()):
                    self._settle(future, chunk, results, report, cache, lost,
                                 followups)
                pending.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                respawns += 1
                if respawns > self.max_pool_respawns:
                    for chunk in lost + followups:
                        self._fail_chunk(
                            chunk, report, outcome="worker-crash",
                            attempts=respawns,
                            error=(
                                "worker pool broke "
                                f"{respawns} times; giving up on this chunk"
                            ),
                        )
                    continue
                pool = self._spawn()
                for chunk in lost:
                    report.record(
                        PointFailure(
                            fingerprint=chunk.configs[0].fingerprint(),
                            outcome="worker-crash",
                            attempts=respawns,
                            error=(
                                "BrokenProcessPool: chunk lost with the "
                                "pool; respawned and resubmitted"
                            ),
                            recovered=True,
                            points=len(chunk.configs),
                        )
                    )
                    pending[self._submit(pool, chunk)] = chunk
                for chunk in followups:
                    pending[self._submit(pool, chunk)] = chunk
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _run_inline(
        self,
        configs: list[SimulationConfig],
        indices: list[int],
        results: list[Optional[SimulationResult]],
        report: FailureReport,
        cache: Optional[SweepCache],
    ) -> None:
        """Single-process degenerate path: no pool spawn, same semantics."""
        for config, index in zip(configs, indices, strict=False):
            result, failure = run_point(config, self.retry, runner=run_simulation)
            if failure is not None:
                report.record(failure)
            if result is not None and cache is not None:
                cache.store(config, result)
            results[index] = result

    def _submit(self, pool: ProcessPoolExecutor, chunk: _Chunk) -> Future:
        """Submit one chunk's work; the seam subclasses override to swap
        the worker function while inheriting the respawn machinery."""
        return pool.submit(run_chunk, chunk.configs, self.retry)

    def _settle(
        self,
        future: Future,
        chunk: _Chunk,
        results: list[Optional[SimulationResult]],
        report: FailureReport,
        cache: Optional[SweepCache],
        lost: list[_Chunk],
        followups: list[_Chunk],
    ) -> None:
        """Fold one finished future into results/report (or mark it lost)."""
        try:
            payload = future.result()
        except (KeyboardInterrupt, SystemExit):
            raise
        except BrokenProcessPool:
            lost.append(chunk)
            return
        except Exception as exc:
            # Submit-side failures (e.g. results that cannot unpickle):
            # the chunk is charged, the rest of the batch proceeds.
            self._fail_chunk(
                chunk, report, outcome="executor", attempts=1, error=repr(exc)
            )
            return
        fanned = self._fan_out(chunk, payload, report)
        if fanned is not None:
            followups.extend(fanned)
            return
        self._fold(chunk, payload, results, report, cache)

    def _fan_out(
        self, chunk: _Chunk, payload, report: FailureReport
    ) -> Optional[list[_Chunk]]:
        """Turn a :class:`FanoutRequest` payload into follow-up chunks.

        The scalar worker never fans out; :class:`BatchedBackend`
        overrides this to split diverging batches across the pool.
        """
        return None

    def _unpack(self, payload) -> tuple[list, Iterable[PointFailure]]:
        """Split a worker payload into per-point outcomes plus any
        chunk-level recovered incidents (none for the scalar worker)."""
        return payload, ()

    def _fold(
        self,
        chunk: _Chunk,
        payload,
        results: list[Optional[SimulationResult]],
        report: FailureReport,
        cache: Optional[SweepCache],
    ) -> None:
        outcomes, incidents = self._unpack(payload)
        for incident in incidents:
            report.record(incident)
        if len(outcomes) != len(chunk.configs):
            raise ExperimentError(
                f"worker returned {len(outcomes)} results for a chunk of "
                f"{len(chunk.configs)} configs"
            )
        for (result, failure), config, index in zip(
            outcomes, chunk.configs, chunk.indices, strict=False
        ):
            if failure is not None:
                report.record(failure)
            if result is not None and cache is not None:
                cache.store(config, result)
            results[index] = result

    @staticmethod
    def _fail_chunk(
        chunk: _Chunk,
        report: FailureReport,
        *,
        outcome: str,
        attempts: int,
        error: str,
    ) -> None:
        for config in chunk.configs:
            report.record(
                PointFailure(
                    fingerprint=config.fingerprint(),
                    outcome=outcome,
                    attempts=attempts,
                    error=error,
                )
            )

    def __repr__(self) -> str:
        return (
            f"ProcessPoolBackend(processes={self.processes}, "
            f"chunksize={self.chunksize})"
        )


@dataclass
class FanoutRequest:
    """Worker verdict: this batch diverged past its ``max_classes`` budget.

    ``groups`` holds member-index lists, one per equivalence class at the
    moment the budget was exceeded. Members of one group were still
    lockstep-identical then, so re-running each group as its own
    (unbudgeted) batch preserves most of the sharing the overflowing
    batch had — and the coordinator can spread the groups across pool
    workers instead of stepping every class serially in one process.
    """

    groups: list[list[int]]


def run_config_batch(
    configs: list[SimulationConfig],
    retry: RetryPolicy,
    *,
    max_classes: int | None = None,
) -> (
    tuple[
        list[tuple[Optional[SimulationResult], Optional[PointFailure]]],
        list[PointFailure],
        Optional[dict],
    ]
    | FanoutRequest
):
    """Worker for :class:`BatchedBackend`: one lockstep batch, scalar fallback.

    Returns ``(outcomes, incidents, stats)``: *outcomes* matches
    :func:`~repro.harness.resilience.run_chunk`'s per-point shape,
    *incidents* carries batch-level recovered events, and *stats* is the
    kernel's divergence report (``members``/``classes``/``splits``/
    ``merges``) or ``None`` when the batch ran scalar. The batch must
    share a compatibility key (the planner guarantees it). Falls back to
    the scalar per-point path, which owns the PR-5 retry/timeout/chaos
    machinery:

    * single-member batches (nothing to amortize);
    * sanitizer runs (``REPRO_SANITIZE``): the sanitizer instruments one
      engine, which the copy-on-divergence splits would confuse;
    * a raising :class:`~repro.network.batched.BatchedEngine`: the whole
      batch is **evicted** — recorded as a recovered ``batch-evicted``
      incident — and every member retried scalar, so a poisoned batch
      degrades to the scalar kernel's semantics instead of losing points.

    With *max_classes* set, a batch that diverges past the budget returns
    a :class:`FanoutRequest` instead of outcomes (caught **before** the
    eviction handler — overflow is a scheduling verdict, not a fault);
    the coordinator re-runs the class-aligned groups as sub-batches.

    Top-level (picklable) so pool workers can import it.
    """
    incidents: list[PointFailure] = []
    if len(configs) > 1 and not _sanitize_from_env():
        try:
            engine = BatchedEngine(list(configs), max_classes=max_classes)
            results = engine.run()
            stats = {
                "members": len(configs),
                "classes": engine.class_count,
                "splits": engine.splits,
                "merges": engine.merges,
            }
            return [(result, None) for result in results], incidents, stats
        except (KeyboardInterrupt, SystemExit):
            raise
        except DivergenceOverflow as exc:
            return FanoutRequest(groups=exc.groups)
        except Exception as exc:
            incidents.append(
                PointFailure(
                    fingerprint=configs[0].fingerprint(),
                    outcome="batch-evicted",
                    attempts=1,
                    error=repr(exc),
                    recovered=True,
                    points=len(configs),
                )
            )
    outcomes = [
        run_point(config, retry, runner=run_simulation) for config in configs
    ]
    return outcomes, incidents, None


class BatchedBackend(ProcessPoolBackend):
    """Runs sweeps through the batched lockstep kernel
    (:mod:`repro.network.batched`), scalar semantics preserved.

    Work units are *batches* planned by
    :func:`~repro.network.batched.plan_batches` — compatible configs
    grouped up to ``chunksize`` members (default
    :data:`~repro.network.batched.DEFAULT_MAX_BATCH`) — instead of
    positional slices. Everything else is inherited from
    :class:`ProcessPoolBackend`: per-point cache consultation and
    checkpointing, ``BrokenProcessPool`` respawns, hole-preserving
    failure reports. ``processes=1`` (the default) runs batches
    in-process; more processes fan batches out over the pool. Because
    batch results are bit-identical to scalar runs and batch planning is
    deterministic, this backend's outputs equal the scalar backends'
    point for point.

    ``fanout_classes`` budgets divergence per batch: a batch whose class
    count exceeds it is re-run as class-aligned sub-batches (see
    :class:`FanoutRequest`), which a multi-process pool steps in
    parallel. Defaults to ``processes`` when pooled, off (``None``) for
    in-process runs, where serializing the classes in one engine is
    strictly cheaper than re-running groups. Fan-out replays the
    overflowing batch's prefix, so results stay bit-identical either way.

    ``progress`` (a callable taking one line of text) receives a live
    ``classes=… splits=… merges=…`` line per completed batch; the CLI
    points it at stderr for ``--kernel batched`` sweeps.
    """

    def __init__(
        self,
        processes: int = 1,
        *,
        chunksize: int | None = None,
        retry: Optional[RetryPolicy] = None,
        max_pool_respawns: int = 3,
        fanout_classes: int | None = None,
        progress=None,
    ) -> None:
        require_numpy()
        super().__init__(
            processes,
            chunksize=chunksize,
            retry=retry,
            max_pool_respawns=max_pool_respawns,
        )
        if fanout_classes is not None and fanout_classes < 1:
            raise ExperimentError("fanout_classes must be positive")
        if fanout_classes is None and processes > 1:
            fanout_classes = processes
        self.fanout_classes = fanout_classes
        self.progress = progress
        self.kernel_stats = {
            "batches": 0, "classes": 0, "splits": 0, "merges": 0, "fanouts": 0,
        }

    @property
    def max_batch(self) -> int:
        return self.chunksize or DEFAULT_MAX_BATCH

    def _chunks(
        self, configs: list[SimulationConfig], indices: list[int]
    ) -> Iterator[_Chunk]:
        for batch in plan_batches(configs, self.max_batch):
            yield _Chunk(
                [configs[i] for i in batch], [indices[i] for i in batch]
            )

    def _submit(self, pool: ProcessPoolExecutor, chunk: _Chunk) -> Future:
        max_classes = self.fanout_classes if chunk.allow_fanout else None
        return pool.submit(
            run_config_batch, chunk.configs, self.retry,
            max_classes=max_classes,
        )

    def _unpack(self, payload) -> tuple[list, Iterable[PointFailure]]:
        outcomes, incidents, stats = payload
        if stats is not None:
            self.kernel_stats["batches"] += 1
            for key in ("classes", "splits", "merges"):
                self.kernel_stats[key] += stats[key]
            if self.progress is not None:
                self.progress(
                    f"batch of {stats['members']}: "
                    f"classes={stats['classes']} splits={stats['splits']} "
                    f"merges={stats['merges']}"
                )
        return outcomes, incidents

    def _fan_out(
        self, chunk: _Chunk, payload, report: FailureReport
    ) -> Optional[list[_Chunk]]:
        if not isinstance(payload, FanoutRequest):
            return None
        self.kernel_stats["fanouts"] += 1
        report.record(
            PointFailure(
                fingerprint=chunk.configs[0].fingerprint(),
                outcome="batch-fanout",
                attempts=1,
                error=(
                    f"batch diverged past {self.fanout_classes} classes; "
                    f"re-running as {len(payload.groups)} class-aligned "
                    "sub-batches"
                ),
                recovered=True,
                points=len(chunk.configs),
            )
        )
        if self.progress is not None:
            self.progress(
                f"fan-out: {len(chunk.configs)}-member batch split into "
                f"{len(payload.groups)} sub-batches"
            )
        return [
            _Chunk(
                [chunk.configs[i] for i in group],
                [chunk.indices[i] for i in group],
                allow_fanout=False,
            )
            for group in payload.groups
        ]

    def _run_inline(
        self,
        configs: list[SimulationConfig],
        indices: list[int],
        results: list[Optional[SimulationResult]],
        report: FailureReport,
        cache: Optional[SweepCache],
    ) -> None:
        worklist = list(self._chunks(configs, indices))
        while worklist:
            chunk = worklist.pop(0)
            max_classes = self.fanout_classes if chunk.allow_fanout else None
            payload = run_config_batch(
                chunk.configs, self.retry, max_classes=max_classes
            )
            fanned = self._fan_out(chunk, payload, report)
            if fanned is not None:
                worklist.extend(fanned)
                continue
            self._fold(chunk, payload, results, report, cache)

    def __repr__(self) -> str:
        return (
            f"BatchedBackend(processes={self.processes}, "
            f"chunksize={self.chunksize})"
        )


def make_backend(
    processes: int | None = None,
    *,
    chunksize: int | None = None,
    retry: Optional[RetryPolicy] = None,
    kernel: str = "scalar",
    progress=None,
    backend: str = "local",
    workers: int = 0,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ExecutionBackend:
    """Backend for *processes* workers (``None``/``0``/``1`` = serial).

    ``kernel="batched"`` selects :class:`BatchedBackend` — the lockstep
    sweep kernel — at any process count (1 means in-process batches).
    *progress* is the batched kernel's live divergence reporter; scalar
    backends have no per-batch stats and ignore it.

    ``backend="distributed"`` selects the fault-tolerant TCP fabric
    (:class:`~repro.harness.distributed.DistributedBackend`): *workers*
    loopback worker processes are spawned for the run (0 means serve
    externally started ``repro worker`` processes on *host*:*port*).
    The distributed fabric ships scalar chunks only — combining it with
    ``kernel="batched"`` is an error rather than a silent downgrade.
    """
    if processes is not None and processes < 0:
        raise ExperimentError("process count cannot be negative")
    if kernel not in ("scalar", "batched"):
        raise ExperimentError(
            f"unknown kernel {kernel!r}: expected 'scalar' or 'batched'"
        )
    if backend not in ("local", "distributed"):
        raise ExperimentError(
            f"unknown backend {backend!r}: expected 'local' or 'distributed'"
        )
    if backend == "distributed":
        if kernel == "batched":
            raise ExperimentError(
                "the distributed backend ships scalar chunks; "
                "--kernel batched is local-only"
            )
        # Imported lazily: the coordinator imports this module for the
        # chunk machinery, so a top-level import would be circular.
        from .distributed import DistributedBackend

        return DistributedBackend(
            spawn_workers=workers,
            host=host,
            port=port,
            chunksize=chunksize or 1,
            retry=retry,
            progress=progress,
        )
    if kernel == "batched":
        return BatchedBackend(
            processes or 1, chunksize=chunksize, retry=retry, progress=progress
        )
    if not processes or processes == 1:
        return SerialBackend(retry=retry)
    return ProcessPoolBackend(processes, chunksize=chunksize, retry=retry)


def default_backend(*, retry: Optional[RetryPolicy] = None) -> ExecutionBackend:
    """The backend selected by the ``REPRO_PROCESSES`` environment variable.

    Unset, empty, or ``1`` means serial — the safe default for tests and
    nested pools. Invalid values raise rather than silently serializing.
    """
    raw = os.environ.get("REPRO_PROCESSES", "").strip()
    if not raw:
        return SerialBackend(retry=retry)
    try:
        processes = int(raw)
    except ValueError as exc:
        raise ExperimentError(
            f"REPRO_PROCESSES must be an integer, got {raw!r}"
        ) from exc
    return make_backend(processes, retry=retry)
