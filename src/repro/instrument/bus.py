"""The instrumentation bus: observer protocol and dispatch lists.

The cycle kernel (:class:`~repro.network.engine.SimulationEngine`) is pure
simulation — topology, event buckets, the per-cycle step — and knows
nothing about measurement. Every observable quantity (latency samples,
power accounting, windowed time series, utilization profiles, event
traces) is collected by *observers* attached to an :class:`InstrumentBus`.

An observer subclasses :class:`Observer` and overrides any subset of the
hook methods; the bus sorts each observer into per-hook dispatch lists at
attach time, so the kernel pays nothing for hooks nobody subscribed to.
The hook points, in the order they fire within one cycle:

``on_transition``
    A DVS channel crossed a state-machine boundary: a voltage ramp
    started (``kind="ramp_start"`` — exactly what the power accountant
    counts as a transition) or a scheduled phase ended
    (``kind="phase_end"``: ramp settled or frequency re-locked).
``on_packet_offered``
    A packet entered a source queue this cycle.
``on_window_close``
    Fires when ``now`` is a multiple of the observer's ``window_cycles``
    (which must be positive for this hook to be registered).
``on_cycle``
    Once per cycle, after events, injection and window bookkeeping, just
    before the routers step.
``on_packet_ejected``
    A packet's tail flit left the network (fires inside the router step).
``on_idle_span``
    The kernel fast-forwarded over a quiescent span: every cycle in
    ``[start, end)`` was provably a no-op (no routers active, no events,
    no injections, no window boundaries) and was skipped rather than
    stepped. Observers that count or integrate per-cycle state use this
    to account the span in closed form.

Observers may also override ``on_mark`` to receive out-of-band lifecycle
marks (e.g. ``measurement_begin``) emitted by the harness via
:meth:`InstrumentBus.mark`; marks are driven by the measurement layer,
never by the kernel itself.

Fast-forward contract: an observer that overrides ``on_cycle`` but not
``on_idle_span`` needs to see every cycle, so its presence disables the
kernel's quiescence skipping (the bus tracks these in
:attr:`InstrumentBus.unskippable_cycle_hooks`). Overriding both opts the
observer back in: skipped spans arrive through ``on_idle_span`` and
stepped cycles through ``on_cycle``. An observer that genuinely must see
every individual cycle declares it by setting ``unskippable = True`` as a
class attribute — the explicit form repro-lint rule R4 requires — which
disables skipping even when ``on_idle_span`` is defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network imports us)
    from ..network.packet import Packet


@dataclass(frozen=True, slots=True)
class TransitionEvent:
    """One DVS channel state-machine boundary, as seen by the kernel.

    Attributes:
        cycle: Router cycle the boundary was processed at.
        channel: Topology channel id of the affected channel.
        kind: ``"ramp_start"`` when a voltage ramp (a counted transition)
            began, ``"phase_end"`` when a scheduled phase boundary fired.
        phase: The channel's phase *after* the boundary.
        level: Frequency level in effect after the boundary.
        voltage_level: Voltage level in effect after the boundary.
        target_level: Level the channel is heading toward.
    """

    cycle: int
    channel: int
    kind: str
    phase: str
    level: int
    voltage_level: int
    target_level: int


class Observer:
    """Base instrumentation observer; override any subset of the hooks.

    Set :attr:`window_cycles` to a positive window size (and override
    :meth:`on_window_close`) to be called back at window boundaries.
    """

    #: Window size in router cycles for :meth:`on_window_close`; 0 = none.
    window_cycles: int = 0

    #: Set True on a subclass whose ``on_cycle`` must see every individual
    #: cycle; its presence disables the kernel's quiescence fast-forward.
    #: (Overriding ``on_cycle`` without ``on_idle_span`` implies the same
    #: thing, but repro-lint rule R4 requires the intent to be explicit.)
    unskippable: bool = False

    def on_cycle(self, now: int) -> None:
        """Called once per cycle, before the routers step."""

    def on_packet_offered(self, packet: "Packet", now: int) -> None:
        """Called when *packet* enters its source queue."""

    def on_packet_ejected(self, packet: "Packet", now: int) -> None:
        """Called when *packet*'s tail flit is ejected at its destination."""

    def on_window_close(self, now: int) -> None:
        """Called when ``now % window_cycles == 0`` (and ``now > 0``)."""

    def on_idle_span(self, start: int, end: int) -> None:
        """Called when the kernel skipped the quiescent cycles ``[start, end)``."""

    def on_transition(self, event: TransitionEvent) -> None:
        """Called at DVS channel state-machine boundaries."""

    def on_mark(self, label: str, cycle: int) -> None:
        """Called for out-of-band lifecycle marks from the harness."""


#: Hook name -> dispatch-list attribute on the bus.
_HOOKS = {
    "on_cycle": "cycle_hooks",
    "on_packet_offered": "offered_hooks",
    "on_packet_ejected": "ejected_hooks",
    "on_window_close": "window_hooks",
    "on_idle_span": "idle_span_hooks",
    "on_transition": "transition_hooks",
    "on_mark": "mark_hooks",
}


def _overrides(observer: Observer, hook: str) -> bool:
    method = getattr(type(observer), hook, None)
    return method is not None and method is not getattr(Observer, hook)


class InstrumentBus:
    """Per-hook observer dispatch lists for one simulation.

    The kernel reads the list attributes directly in its hot loop; an
    empty list costs one attribute load and a falsy check per cycle.
    """

    __slots__ = (
        "observers",
        "cycle_hooks",
        "offered_hooks",
        "ejected_hooks",
        "window_hooks",
        "idle_span_hooks",
        "transition_hooks",
        "mark_hooks",
        "unskippable_cycle_hooks",
    )

    def __init__(self) -> None:
        self.observers: list[Observer] = []
        self.cycle_hooks: list[Observer] = []
        self.offered_hooks: list[Observer] = []
        self.ejected_hooks: list[Observer] = []
        self.window_hooks: list[Observer] = []
        self.idle_span_hooks: list[Observer] = []
        self.transition_hooks: list[Observer] = []
        self.mark_hooks: list[Observer] = []
        #: Cycle-hook observers with no ``on_idle_span`` — while any is
        #: attached the kernel must step every cycle (no fast-forward).
        self.unskippable_cycle_hooks: list[Observer] = []

    def attach(self, observer: Observer) -> Observer:
        """Register *observer* on every hook it overrides; returns it."""
        if observer in self.observers:
            raise ConfigError("observer is already attached")
        for hook, attr in _HOOKS.items():
            if not _overrides(observer, hook):
                continue
            if hook == "on_window_close":
                window = getattr(observer, "window_cycles", 0)
                if not isinstance(window, int) or window <= 0:
                    raise ConfigError(
                        "a window observer needs a positive integer "
                        f"window_cycles, got {window!r}"
                    )
            getattr(self, attr).append(observer)
        self.observers.append(observer)
        self._refresh_fast_forward_view()
        return observer

    def detach(self, observer: Observer) -> None:
        """Remove *observer* from every dispatch list."""
        if observer not in self.observers:
            raise ConfigError("observer is not attached")
        self.observers.remove(observer)
        for attr in _HOOKS.values():
            hooks = getattr(self, attr)
            if observer in hooks:
                hooks.remove(observer)
        self._refresh_fast_forward_view()

    def _refresh_fast_forward_view(self) -> None:
        spanners = self.idle_span_hooks
        self.unskippable_cycle_hooks = [
            observer
            for observer in self.cycle_hooks
            if observer.unskippable or observer not in spanners
        ]

    def mark(self, label: str, cycle: int) -> None:
        """Broadcast a lifecycle mark (e.g. ``measurement_begin``)."""
        for observer in self.mark_hooks:
            observer.on_mark(label, cycle)

    def __len__(self) -> int:
        return len(self.observers)
