"""Tests for routing functions."""

import pytest

from repro.errors import ConfigError, RoutingError
from repro.network.routing import (
    DimensionOrderRouting,
    MinimalAdaptiveRouting,
    make_routing,
)
from repro.network.topology import Topology


def walk_route(routing, topology, src, dst, max_hops=64):
    """Follow a deterministic route; return the hop count."""
    node = src
    hops = 0
    while node != dst:
        port = routing.candidates(node, dst)[0]
        node = topology.neighbor(node, port)
        assert node is not None
        hops += 1
        assert hops <= max_hops, "routing loop"
    return hops


class TestMeshDOR:
    @pytest.fixture(scope="class")
    def setup(self):
        topology = Topology(5, 2)
        return topology, DimensionOrderRouting(topology, 2)

    def test_routes_are_minimal(self, setup):
        topology, routing = setup
        for src in range(topology.node_count):
            for dst in range(topology.node_count):
                if src == dst:
                    continue
                hops = walk_route(routing, topology, src, dst)
                assert hops == topology.distance(src, dst)

    def test_x_before_y(self, setup):
        topology, routing = setup
        src = topology.node_at((0, 0))
        dst = topology.node_at((2, 2))
        assert routing.candidates(src, dst) == (Topology.plus_port(0),)

    def test_all_vcs_allowed_on_mesh(self, setup):
        topology, routing = setup
        src = topology.node_at((0, 0))
        dst = topology.node_at((2, 2))
        assert routing.allowed_vcs(src, 0, dst, 0) == (0, 1)

    def test_vc_class_stays_zero_on_mesh(self, setup):
        topology, routing = setup
        assert routing.next_vc_class(0, 0, 0) == 0

    def test_route_at_destination_raises(self, setup):
        _, routing = setup
        with pytest.raises(RoutingError):
            routing.route_port(3, 3)

    def test_large_topology_skips_table(self):
        topology = Topology(6, 4)  # 1296 nodes > table limit
        routing = DimensionOrderRouting(topology, 2)
        assert routing._table is None
        src, dst = 0, topology.node_count - 1
        assert walk_route(routing, topology, src, dst) == topology.distance(src, dst)


class TestTorusDOR:
    @pytest.fixture(scope="class")
    def setup(self):
        topology = Topology(4, 2, wraparound=True)
        return topology, DimensionOrderRouting(topology, 2)

    def test_routes_take_short_way_around(self, setup):
        topology, routing = setup
        src = topology.node_at((0, 0))
        dst = topology.node_at((3, 0))
        # Wrapping backward is 1 hop; forward is 3.
        assert routing.candidates(src, dst) == (Topology.minus_port(0),)

    def test_routes_are_minimal(self, setup):
        topology, routing = setup
        for src in range(topology.node_count):
            for dst in range(topology.node_count):
                if src != dst:
                    hops = walk_route(routing, topology, src, dst)
                    assert hops == topology.distance(src, dst)

    def test_dateline_raises_class(self, setup):
        topology, routing = setup
        edge = topology.node_at((3, 0))
        # Crossing the wrap edge in +x raises the class to 1.
        assert routing.next_vc_class(edge, Topology.plus_port(0), 0) == 1
        inner = topology.node_at((1, 0))
        assert routing.next_vc_class(inner, Topology.plus_port(0), 0) == 0

    def test_dateline_vc_restriction(self, setup):
        topology, routing = setup
        node = topology.node_at((1, 0))
        dst = topology.node_at((3, 0))
        assert routing.allowed_vcs(node, 0, dst, 0) == (0,)
        assert routing.allowed_vcs(node, 0, dst, 1) == (1,)

    def test_torus_needs_two_vcs(self):
        topology = Topology(4, 2, wraparound=True)
        with pytest.raises(ConfigError):
            DimensionOrderRouting(topology, 1)


class TestMinimalAdaptive:
    @pytest.fixture(scope="class")
    def setup(self):
        topology = Topology(5, 2)
        return topology, MinimalAdaptiveRouting(topology, 2)

    def test_candidates_are_productive(self, setup):
        topology, routing = setup
        for src in range(topology.node_count):
            for dst in range(topology.node_count):
                if src == dst:
                    continue
                distance = topology.distance(src, dst)
                for port in routing.candidates(src, dst):
                    neighbor = topology.neighbor(src, port)
                    assert topology.distance(neighbor, dst) == distance - 1

    def test_two_candidates_off_axis(self, setup):
        topology, routing = setup
        src = topology.node_at((0, 0))
        dst = topology.node_at((2, 3))
        assert len(routing.candidates(src, dst)) == 2

    def test_escape_vc_only_on_dor_port(self, setup):
        topology, routing = setup
        src = topology.node_at((0, 0))
        dst = topology.node_at((2, 3))
        dor_port = DimensionOrderRouting(topology, 2).route_port(src, dst)
        for port in routing.candidates(src, dst):
            allowed = routing.allowed_vcs(src, port, dst, 0)
            if port == dor_port:
                assert 0 in allowed
            else:
                assert 0 not in allowed
                assert allowed == (1,)

    def test_needs_two_vcs(self):
        with pytest.raises(ConfigError):
            MinimalAdaptiveRouting(Topology(4, 2), 1)

    def test_mesh_only(self):
        with pytest.raises(ConfigError):
            MinimalAdaptiveRouting(Topology(4, 2, wraparound=True), 2)


class TestFactory:
    def test_names(self):
        topology = Topology(4, 2)
        assert isinstance(make_routing("dor", topology, 2), DimensionOrderRouting)
        assert isinstance(
            make_routing("adaptive", topology, 2), MinimalAdaptiveRouting
        )

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_routing("magic", Topology(4, 2), 2)


class TestBoundedCaches:
    """The per-query caches honor their documented size bound: querying
    more pairs than the limit evicts rather than growing without bound,
    and every answer (cached, evicted-then-recomputed) stays correct."""

    def test_dor_cache_respects_limit(self, monkeypatch):
        monkeypatch.setattr(DimensionOrderRouting, "_TABLE_LIMIT", 0)
        monkeypatch.setattr(DimensionOrderRouting, "_CACHE_LIMIT", 4)
        topology = Topology(3, 2)
        routing = DimensionOrderRouting(topology, 2)
        assert routing._table is None
        pairs = [
            (src, dst)
            for src in range(topology.node_count)
            for dst in range(topology.node_count)
            if src != dst
        ]
        assert len(pairs) > 4
        reference = DimensionOrderRouting(Topology(3, 2), 2)
        for _sweep in range(2):  # second sweep re-queries evicted pairs
            for src, dst in pairs:
                assert routing.route_port(src, dst) == (
                    reference._compute_route_port(src, dst)
                )
                assert len(routing._route_cache) <= 4

    def test_dor_cache_hits_do_not_evict(self, monkeypatch):
        monkeypatch.setattr(DimensionOrderRouting, "_TABLE_LIMIT", 0)
        monkeypatch.setattr(DimensionOrderRouting, "_CACHE_LIMIT", 4)
        routing = DimensionOrderRouting(Topology(3, 2), 2)
        for _ in range(10):
            routing.route_port(0, 1)
        assert len(routing._route_cache) == 1

    def test_adaptive_candidate_cache_respects_limit(self, monkeypatch):
        monkeypatch.setattr(MinimalAdaptiveRouting, "_CACHE_LIMIT", 4)
        topology = Topology(3, 2)
        routing = MinimalAdaptiveRouting(topology, 2)
        reference = MinimalAdaptiveRouting(Topology(3, 2), 2)
        pairs = [
            (src, dst)
            for src in range(topology.node_count)
            for dst in range(topology.node_count)
            if src != dst
        ]
        for _sweep in range(2):
            for src, dst in pairs:
                assert routing.candidates(src, dst) == (
                    reference._compute_candidates(src, dst)
                )
                assert len(routing._candidate_cache) <= 4

    def test_full_simulation_under_tiny_cache_limits(self, monkeypatch):
        """Bit-identity sanity: eviction pressure never changes routes."""
        from repro.harness.serialization import to_json
        from repro.network.simulator import Simulator

        from .conftest import small_config

        config = small_config(rate=0.3, warmup=200, measure=600)
        baseline = to_json(Simulator(config).run())
        monkeypatch.setattr(DimensionOrderRouting, "_TABLE_LIMIT", 0)
        monkeypatch.setattr(DimensionOrderRouting, "_CACHE_LIMIT", 2)
        squeezed = to_json(Simulator(config).run())
        assert squeezed == baseline
