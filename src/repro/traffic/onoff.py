"""Multiplexed Pareto ON/OFF sources — the self-similar packet process.

The paper's second workload level: "self-similar traffic can be generated
by multiplexing ON/OFF sources that have Pareto-distributed ON and OFF
periods" [Leland et al.], with ON shape 1.4 and OFF shape 1.2. During an
ON period a source emits packets at a fixed peak spacing; OFF periods are
silent. Because the period distributions are heavy-tailed (infinite
variance), the superposition of many such sources is long-range dependent.

Calibration: the paper specifies the two shapes and the per-task average
rate but not the location parameters. We fix the ON location (hence the
mean burst length) and the peak packet spacing, then solve the OFF
location so the source's renewal-reward rate matches the requested
average:

    rate = E[packets per burst] / (E[on] + E[off])

All expectations use Pareto means **truncated at the source's lifetime**:
with 1 < shape < 2 the untruncated mean is dominated by rare huge samples
that a finite task session never observes, and calibrating against it
over-delivers by 2x or more on realistic horizons. If the requested rate
is too high for the configured spacing, the spacing is tightened so the
duty cycle stays below 0.9.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Iterator

from ..errors import WorkloadError
from .pareto import (
    pareto_location_for_mean,
    pareto_location_for_truncated_mean,
    pareto_mean,
    pareto_sample,
    pareto_truncated_mean,
)


class _RenewalPacketStream:
    """Unbounded stream of one renewal-mode source's packet times.

    Each source starts mid-OFF at a random phase so the bank does not
    fire in lockstep at task start. This used to be a generator function,
    but live generators cannot be deepcopied and the batched sweep
    kernel's copy-on-divergence splits (:mod:`repro.network.batched`)
    deepcopy the whole engine, traffic state included — so the stream
    state lives in plain attributes instead. The RNG draw order is
    identical to the old generator's, including performing the initial
    phase draw lazily at the first ``__next__`` (a generator body does
    not run until first resumed), which the golden determinism tests pin.
    """

    __slots__ = ("owner", "t", "burst_end", "started")

    def __init__(self, owner: "OnOffSourceSet"):
        self.owner = owner
        self.t = 0.0
        self.burst_end = 0.0
        self.started = False

    def __iter__(self) -> "_RenewalPacketStream":
        return self

    def __next__(self) -> float:
        owner = self.owner
        rng = owner.rng
        if not self.started:
            self.started = True
            phase = rng.random()
            self.t = owner.start + phase * pareto_sample(
                rng, owner.off_shape, owner.off_location
            )
            self.burst_end = self.t + pareto_sample(
                rng, owner.on_shape, owner.on_location
            )
        while self.t >= self.burst_end:
            self.t = self.burst_end + pareto_sample(
                rng, owner.off_shape, owner.off_location
            )
            self.burst_end = self.t + pareto_sample(
                rng, owner.on_shape, owner.on_location
            )
        time = self.t
        self.t += owner.peak_interval
        return time


class OnOffSourceSet:
    """A bank of multiplexed ON/OFF sources for one traffic flow.

    Emits absolute packet times in ``[start, end)``. The owner polls
    :attr:`next_time` and calls :meth:`advance` to collect the packets due
    by the current cycle.
    """

    __slots__ = (
        "rng",
        "start",
        "end",
        "on_shape",
        "off_shape",
        "on_location",
        "peak_interval",
        "off_location",
        "mode",
        "bursts_per_source",
        "_heap",
        "packets_emitted",
    )

    def __init__(
        self,
        rng: random.Random,
        *,
        sources: int,
        target_rate: float,
        start: int,
        end: int,
        on_shape: float = 1.4,
        off_shape: float = 1.2,
        on_location: float = 60.0,
        peak_interval: float = 20.0,
    ):
        if sources < 1:
            raise WorkloadError("need at least one ON/OFF source")
        if target_rate <= 0.0:
            raise WorkloadError("target rate must be positive")
        if end <= start:
            raise WorkloadError("source set must have a positive lifetime")
        self.rng = rng
        self.start = start
        self.end = end
        self.on_shape = on_shape
        self.off_shape = off_shape
        self.on_location = on_location

        per_source_rate = target_rate / sources
        peak_interval = float(peak_interval)
        duty = per_source_rate * peak_interval
        if duty >= 0.9:
            # Requested rate too high for the configured spacing; emit
            # faster during bursts instead of saturating the duty cycle.
            peak_interval = 0.9 / per_source_rate
            duty = 0.9
        self.peak_interval = peak_interval

        # Renewal-reward calibration with lifetime-truncated means: a burst
        # of duration `on` emits floor(on / interval) + 1 packets, so
        #   rate = (E[on]/interval + 1) / (E[on] + E[off])
        # and we solve the truncated E[off] that hits per_source_rate.
        lifetime = float(end - start)
        mean_on = pareto_truncated_mean(on_shape, on_location, lifetime)
        packets_per_burst = mean_on / peak_interval + 1.0
        mean_off = packets_per_burst / per_source_rate - mean_on
        if mean_off <= 0.0:
            raise WorkloadError(
                "per-source rate exceeds the burst rate; add sources or "
                "lower the rate"
            )
        # A session of finite lifetime cannot realize OFF periods much
        # longer than itself — with fewer than about one ON/OFF cycle per
        # lifetime, renewal-reward calibration is dominated by edge
        # effects. Below that point each source switches to Poisson-burst
        # mode: a Poisson number of Pareto-long bursts placed uniformly in
        # the lifetime, which hits the rate exactly in expectation while
        # keeping burst lengths heavy-tailed.
        mean_off_cap = 0.5 * lifetime
        if mean_off <= mean_off_cap:
            self.mode = "renewal"
            self.off_location = pareto_location_for_truncated_mean(
                off_shape, mean_off, lifetime
            )
            self.bursts_per_source = lifetime / (mean_on + mean_off)
        else:
            self.mode = "poisson_burst"
            self.off_location = pareto_location_for_mean(off_shape, mean_off)
            self.bursts_per_source = per_source_rate * lifetime / packets_per_burst

        self._heap: list[tuple[float, int, Iterator[float]]] = []
        for index in range(sources):
            if self.mode == "renewal":
                gen = _RenewalPacketStream(self)
            else:
                gen = iter(self._poisson_burst_times())
            first = self._next_within_lifetime(gen)
            if first is not None:
                self._heap.append((first, index, gen))
        heapq.heapify(self._heap)
        self.packets_emitted = 0

    @property
    def expected_duty(self) -> float:
        """Calibrated fraction of time each source spends ON."""
        mean_on = pareto_mean(self.on_shape, self.on_location)
        mean_off = pareto_mean(self.off_shape, self.off_location)
        return mean_on / (mean_on + mean_off)

    @property
    def next_time(self) -> float:
        """Absolute cycle of the next packet, or +inf when exhausted."""
        return self._heap[0][0] if self._heap else math.inf

    @property
    def exhausted(self) -> bool:
        return not self._heap

    def advance(self, now: int) -> int:
        """Count of packets due at cycles <= *now*; removes them."""
        count = 0
        heap = self._heap
        while heap and heap[0][0] <= now:
            _, index, gen = heapq.heappop(heap)
            count += 1
            nxt = self._next_within_lifetime(gen)
            if nxt is not None:
                heapq.heappush(heap, (nxt, index, gen))
        self.packets_emitted += count
        return count

    # ------------------------------------------------------------------

    def _next_within_lifetime(self, gen: Iterator[float]) -> float | None:
        time = next(gen, None)
        if time is None or time >= self.end:
            return None
        return time

    def _poisson_burst_times(self) -> list[float]:
        """Packet times for one source in Poisson-burst mode (sorted)."""
        rng = self.rng
        # Knuth Poisson sampler; bursts_per_source is <= ~2 in this mode.
        threshold = math.exp(-self.bursts_per_source)
        count = 0
        product = rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        times: list[float] = []
        lifetime = self.end - self.start
        for _ in range(count):
            burst_start = self.start + rng.random() * lifetime
            on = pareto_sample(rng, self.on_shape, self.on_location)
            t = burst_start
            burst_end = burst_start + on
            while t < burst_end and t < self.end:
                times.append(t)
                t += self.peak_interval
        times.sort()
        return times
