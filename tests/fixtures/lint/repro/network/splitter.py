"""R6 (deepcopy flavor): engine deep-copied inside a # repro-hot split.

Divergence splits sit on the sweep hot path; ``copy.deepcopy`` walks the
*entire* object graph — immutable config, topology, route memos and all —
every time a class splits. The snapshot protocol
(``repro.network.snapshot.fast_clone``) copies only live mutable state.
"""

import copy


class ClassSplitter:
    def __init__(self, engine):
        self.engine = engine

    def split(self, members):  # repro-hot
        clone = copy.deepcopy(self.engine)
        clone.members = members
        return clone
