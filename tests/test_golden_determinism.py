"""Golden determinism guard for the kernel/instrumentation split.

The values below were captured from the monolithic ``Simulator`` (one
class owning both the cycle loop and all measurement state) immediately
before it was split into ``SimulationEngine`` + instrumentation bus. The
refactor's contract is that ``SimulationResult`` stays **bit-identical**
for a fixed seed — every float compared with ``==``, not approx — so any
drift in event ordering, energy-accrual chunking, or counter bookkeeping
shows up here as a hard failure.

Also pins the serial-equals-parallel acceptance criterion:
``parallel_compare_policies(processes=2)`` must equal the serial
``compare_policies`` point for point.

The energy pins were re-captured when the channel accumulators moved to
integer femtojoules and window utilization became reset-based (the
batched kernel's class re-merging needs both) — a pure quantization
shift; every behavioral pin (packet counts, latency distribution,
transition count, drops) was bit-identical across that change.
"""

from __future__ import annotations

from repro.config import (
    DVSControlConfig,
    LinkConfig,
    NetworkConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.harness.parallel import parallel_compare_policies
from repro.harness.sweep import compare_policies
from repro.network.simulator import Simulator

from .conftest import small_config

#: Same fast link the fixtures use — transitions complete within the run.
GOLDEN_LINK = LinkConfig(
    voltage_transition_s=0.2e-6, frequency_transition_link_cycles=4
)


def golden_config(policy: str, kind: str, rate: float) -> SimulationConfig:
    return SimulationConfig(
        network=NetworkConfig(
            radix=4, dimensions=2, vcs_per_port=2, buffers_per_port=16
        ),
        link=GOLDEN_LINK,
        dvs=DVSControlConfig(policy=policy),
        workload=WorkloadConfig(
            kind=kind,
            injection_rate=rate,
            seed=7,
            average_tasks=5,
            average_task_duration_s=3.0e-6,
            onoff_sources_per_task=4,
        ),
        warmup_cycles=500,
        measure_cycles=4_000,
    )


class TestGoldenDVS:
    """History-policy DVS under the paper's two-level workload."""

    def test_bit_identical_to_prerefactor_capture(self):
        result = Simulator(golden_config("history", "two_level", 0.6)).run()
        assert result.offered_packets == 3085
        assert result.ejected_packets == 2519
        assert result.offered_rate == 0.77125
        assert result.accepted_rate == 0.62975
        assert result.latency.count == 2464
        assert result.latency.mean == 213.7353896103896
        assert result.latency.median == 51.0
        assert result.latency.p95 == 826.0
        assert result.latency.p99 == 1682.0
        assert result.latency.minimum == 18
        assert result.latency.maximum == 2036
        assert result.power.mean_power_w == 67.17859494300001
        assert result.power.normalized == 0.8747212883203125
        assert result.power.savings_factor == 1.1432212904298402
        assert result.power.transition_count == 347
        assert result.power.transition_energy_j == 0.00010727308638800001
        assert result.mean_level == 2.3958333333333335
        assert result.requests_dropped == 372


class TestGoldenSeries:
    """No-DVS uniform run with a 500-cycle series window."""

    def test_bit_identical_to_prerefactor_capture(self):
        result = Simulator(
            golden_config("none", "uniform", 0.3), series_window=500
        ).run()
        assert result.offered_packets == 1163
        assert result.ejected_packets == 1161
        assert result.latency.count == 1149
        assert result.latency.mean == 41.65187119234117
        assert result.latency.minimum == 18
        assert result.latency.maximum == 96
        assert result.power.mean_power_w == 76.80000000000001
        assert result.power.transition_count == 0
        assert result.mean_level == 9.0
        assert result.requests_dropped == 0
        assert result.series["offered_rate"].values == [
            0.002, 0.304, 0.286, 0.258, 0.278, 0.348, 0.258, 0.296,
        ]
        assert result.series["accepted_rate"].values == [
            0.0, 0.3, 0.294, 0.254, 0.272, 0.336, 0.286, 0.278,
        ]
        assert result.series["power_w"].values == [
            0.0,
            76.79999999999997,
            76.8000000000002,
            76.79999999999976,
            76.79999999999987,
            76.80000000000051,
            76.80000000000003,
            76.79999999999949,
        ]
        assert result.series["mean_level"].values == [9.0] * 8


class TestSerialParallelEquivalence:
    def test_parallel_compare_policies_matches_serial_point_for_point(self):
        config = small_config(rate=0.2, warmup=200, measure=800)
        rates = (0.2, 0.5)
        policies = {
            "none": DVSControlConfig(policy="none"),
            "history": DVSControlConfig(policy="history"),
        }
        serial = compare_policies(config, rates, policies)
        parallel = parallel_compare_policies(
            config, rates, policies, processes=2
        )
        assert serial == parallel


class TestGoldenSweepCache:
    """The on-disk sweep cache must not perturb golden results: a cached
    re-run returns the bit-identical points without simulating a cycle."""

    def test_cached_rerun_is_bit_identical_and_simulation_free(
        self, tmp_path, monkeypatch
    ):
        from repro.harness import cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        cache_mod.reset_cache()
        try:
            config = small_config(rate=0.2, warmup=200, measure=800)
            rates = (0.2, 0.5)
            policies = {
                "none": DVSControlConfig(policy="none"),
                "history": DVSControlConfig(policy="history"),
            }
            first = compare_policies(config, rates, policies)

            def boom(*args, **kwargs):  # pragma: no cover - must never run
                raise AssertionError("cached re-run simulated a config")

            monkeypatch.setattr("repro.harness.backends.run_simulation", boom)
            second = compare_policies(config, rates, policies)
            assert second == first
            cache = cache_mod.get_cache()
            assert cache.hits == len(rates) * len(policies)
        finally:
            cache_mod.reset_cache()
