"""Fixed-bin histogram for utilization profiles (Figures 3-5)."""

from __future__ import annotations

from ..errors import ConfigError


class Histogram:
    """Equal-width bins over ``[low, high)`` with clamping at the edges."""

    __slots__ = ("low", "high", "bins", "counts", "_width", "total")

    def __init__(self, bins: int = 10, low: float = 0.0, high: float = 1.0):
        if bins < 1:
            raise ConfigError("need at least one bin")
        if high <= low:
            raise ConfigError("high edge must exceed low edge")
        self.low = low
        self.high = high
        self.bins = bins
        self._width = (high - low) / bins
        self.counts = [0] * bins
        self.total = 0

    def add(self, value: float) -> None:
        """Count *value* (values outside the range clamp to the edge bins)."""
        index = int((value - self.low) / self._width)
        if index < 0:
            index = 0
        elif index >= self.bins:
            index = self.bins - 1
        self.counts[index] += 1
        self.total += 1

    def frequencies(self) -> list[float]:
        """Bin fractions (sum to 1.0; all zeros when empty)."""
        if self.total == 0:
            return [0.0] * self.bins
        return [count / self.total for count in self.counts]

    def bin_edges(self) -> list[float]:
        """The ``bins + 1`` edges."""
        return [self.low + i * self._width for i in range(self.bins + 1)]

    def mean(self) -> float:
        """Mean of bin midpoints weighted by counts."""
        if self.total == 0:
            return 0.0
        half = self._width / 2.0
        return (
            sum(
                count * (self.low + i * self._width + half)
                for i, count in enumerate(self.counts)
            )
            / self.total
        )

    def describe(self, label: str = "") -> str:
        """ASCII rendering with one row per bin."""
        lines = []
        if label:
            lines.append(label)
        freqs = self.frequencies()
        edges = self.bin_edges()
        peak = max(freqs) if any(freqs) else 1.0
        for i, freq in enumerate(freqs):
            bar = "#" * int(round(40 * freq / peak)) if peak else ""
            lines.append(f"[{edges[i]:5.2f},{edges[i + 1]:5.2f})  {freq:6.3f}  {bar}")
        return "\n".join(lines)
