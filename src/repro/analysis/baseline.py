"""Committed finding baseline for the static-analysis framework.

Interprocedural rules arrive after the code they judge. Rather than
pragma-spraying every pre-existing finding (which silences the *line*
forever) or loosening the rules (which silences the *class* of bug), the
framework tracks known findings in a committed JSON file. Each entry
carries a justification that is reviewed like code; the lint exits 0
when every finding matches the baseline and 1 the moment a *new* one
appears. ``--update-baseline`` rewrites the file from the current
findings, preserving justifications for entries that survive.

Matching is content-anchored, not line-anchored: an entry matches on
``(path, rule, stripped source line)`` so pure line-shifts (an import
added above) do not invalidate the baseline, while editing the flagged
statement itself — which deserves a fresh look — does. Entries that no
longer match anything are reported as stale so the file cannot silently
rot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Sequence

from .model import Violation

#: Default committed baseline path, relative to the working directory.
DEFAULT_BASELINE = ".repro-lint-baseline.json"

#: Justification placeholder written for new entries by --update-baseline.
TODO_JUSTIFICATION = "TODO: justify this finding or fix it"


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def _entry_key(entry: dict[str, object]) -> tuple[str, str, str]:
    return (
        str(entry.get("path", "")),
        str(entry.get("rule", "")),
        str(entry.get("context", "")),
    )


def load(path: str | Path) -> list[dict[str, object]]:
    """Load baseline entries from *path* (raises BaselineError)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"{path}: unreadable ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(payload, dict) or not isinstance(
        payload.get("entries"), list
    ):
        raise BaselineError(f"{path}: expected an object with an 'entries' list")
    entries: list[dict[str, object]] = []
    for raw in payload["entries"]:
        if not isinstance(raw, dict):
            raise BaselineError(f"{path}: entries must be objects")
        entries.append(raw)
    return entries


def save(
    path: str | Path,
    violations: Sequence[Violation],
    get_line: Callable[[str, int], str],
    previous: Sequence[dict[str, object]] = (),
) -> int:
    """Write a baseline covering *violations*; returns the entry count.

    Justifications from *previous* entries are carried over for findings
    that still match; new findings get :data:`TODO_JUSTIFICATION`.
    """
    justifications: dict[tuple[str, str, str], list[str]] = {}
    for entry in previous:
        justifications.setdefault(_entry_key(entry), []).append(
            str(entry.get("justification", TODO_JUSTIFICATION))
        )
    entries = []
    for violation in sorted(
        violations, key=lambda v: (v.path, v.line, v.col, v.rule)
    ):
        context = get_line(violation.path, violation.line).strip()
        key = (violation.path, violation.rule, context)
        stack = justifications.get(key)
        justification = stack.pop(0) if stack else TODO_JUSTIFICATION
        entries.append(
            {
                "path": violation.path,
                "rule": violation.rule,
                "context": context,
                "message": violation.message,
                "justification": justification,
            }
        )
    payload = {
        "comment": (
            "Known findings, reviewed like code. Matched on (path, rule, "
            "stripped source line); regenerate with --update-baseline. See "
            "docs/static_analysis.md."
        ),
        "entries": entries,
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)


def apply(
    violations: Sequence[Violation],
    entries: Sequence[dict[str, object]],
    get_line: Callable[[str, int], str],
) -> tuple[list[Violation], list[Violation], list[str]]:
    """Split *violations* against the baseline.

    Returns ``(new, matched, stale)`` where *stale* describes baseline
    entries that matched nothing. Duplicate keys are count-aware: two
    identical entries absorb at most two identical findings.
    """
    budget: dict[tuple[str, str, str], int] = {}
    for entry in entries:
        key = _entry_key(entry)
        budget[key] = budget.get(key, 0) + 1

    def find_key(
        path: str, rule: str, context: str
    ) -> tuple[str, str, str] | None:
        key = (path, rule, context)
        if budget.get(key, 0) > 0:
            return key
        # Path-suffix tolerance: the committed baseline stores repo-relative
        # paths; a caller linting absolute paths must still match.
        for candidate, remaining in budget.items():
            entry_path, entry_rule, entry_context = candidate
            if (
                remaining > 0
                and entry_rule == rule
                and entry_context == context
                and (
                    path.endswith("/" + entry_path)
                    or entry_path.endswith("/" + path)
                )
            ):
                return candidate
        return None

    new: list[Violation] = []
    matched: list[Violation] = []
    for violation in violations:
        context = get_line(violation.path, violation.line).strip()
        key = find_key(violation.path, violation.rule, context)
        if key is not None:
            budget[key] -= 1
            matched.append(violation)
        else:
            new.append(violation)
    stale = [
        f"stale baseline entry: {path}: {rule} ({context!r})"
        for (path, rule, context), remaining in sorted(budget.items())
        for _ in range(remaining)
    ]
    return new, matched, stale
