"""Standard observers: the paper's measurement stack, ported to the bus.

Each class here adapts one of the long-standing collectors
(:class:`~repro.metrics.latency.LatencyCollector`,
:class:`~repro.power.accounting.PowerAccountant`,
:class:`~repro.metrics.timeseries.WindowedSeries`,
:class:`~repro.metrics.utilization.UtilizationProbe`) to the
:class:`~repro.instrument.bus.Observer` protocol, so the cycle kernel
stays measurement-free and new observables can ride the same seam.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..metrics.latency import LatencyCollector
from ..metrics.timeseries import WindowedSeries
from ..metrics.utilization import UtilizationProbe
from ..power.accounting import PowerAccountant
from .bus import Observer, TransitionEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..network.channel import NetworkChannel
    from ..network.packet import Packet


class MeasurementMeter(Observer):
    """Offered/ejected counts and packet latencies for the measured phase.

    Counts every ejected packet from cycle 0 (``total_ejected``); once
    :meth:`begin` marks the start of the measurement phase it also counts
    offered and ejected packets and records the latency of packets
    *created* inside the phase, per the paper's methodology.
    """

    __slots__ = ("latency", "measuring", "measure_start", "offered", "ejected",
                 "total_ejected")

    def __init__(self, latency: LatencyCollector | None = None) -> None:
        self.latency = latency if latency is not None else LatencyCollector()
        self.measuring = False
        self.measure_start = 0
        self.offered = 0
        self.ejected = 0
        self.total_ejected = 0

    def begin(self, now: int) -> None:
        """Start (or restart) the measured phase at cycle *now*."""
        self.measuring = True
        self.measure_start = now
        self.latency.reset()
        self.offered = 0
        self.ejected = 0

    def on_packet_offered(self, packet: Packet, now: int) -> None:
        if self.measuring:
            self.offered += 1

    def on_packet_ejected(self, packet: Packet, now: int) -> None:
        self.total_ejected += 1
        if self.measuring:
            self.ejected += 1
            if packet.created_cycle >= self.measure_start:
                self.latency.record(packet.latency)


class PowerObserver(Observer):
    """Wraps a :class:`PowerAccountant` and tallies observed transitions.

    The accountant itself integrates energy lazily from the channels, so
    the only bus traffic this observer needs is the transition stream —
    ``ramp_starts_seen`` counts exactly what the accountant's
    ``transition_count`` counts, giving traces and tests an independent
    cross-check.
    """

    __slots__ = ("accountant", "ramp_starts_seen")

    def __init__(self, accountant: PowerAccountant) -> None:
        self.accountant = accountant
        self.ramp_starts_seen = 0

    def begin(self, now: int) -> None:
        self.accountant.begin(now)

    def on_transition(self, event: TransitionEvent) -> None:
        if event.kind == "ramp_start":
            self.ramp_starts_seen += 1


class SeriesObserver(Observer):
    """Windowed network-wide time series (Figures 9 and 12 support).

    Maintains the four standard series — ``offered_rate``,
    ``accepted_rate``, ``power_w``, ``mean_level`` — one sample per
    ``window_cycles``. Offered/ejected tallies follow the meter's
    measurement gate, matching the historical simulator behaviour.
    """

    __slots__ = ("window_cycles", "series", "_meter", "_channels", "_accountant",
                 "_router_clock_hz", "_offered", "_ejected", "_last_energy")

    def __init__(
        self,
        window_cycles: int,
        channels: Sequence[NetworkChannel],
        accountant: PowerAccountant,
        router_clock_hz: float,
        meter: MeasurementMeter,
    ) -> None:
        self.window_cycles = window_cycles
        self.series: dict[str, WindowedSeries] = {
            name: WindowedSeries(window_cycles)
            for name in ("offered_rate", "accepted_rate", "power_w", "mean_level")
        }
        self._meter = meter
        self._channels = channels
        self._accountant = accountant
        self._router_clock_hz = router_clock_hz
        self._offered = 0
        self._ejected = 0
        self._last_energy = 0.0

    def _total_energy(self, now: int) -> float:
        total = 0.0
        for channel in self._channels:
            channel.dvs.finalize(now)
            total += channel.dvs.total_energy_j
        return total

    def begin(self, now: int) -> None:
        """Reset window tallies at the start of the measured phase."""
        self._offered = 0
        self._ejected = 0
        self._last_energy = self._total_energy(now)

    def on_packet_offered(self, packet: Packet, now: int) -> None:
        if self._meter.measuring:
            self._offered += 1

    def on_packet_ejected(self, packet: Packet, now: int) -> None:
        if self._meter.measuring:
            self._ejected += 1

    def on_window_close(self, now: int) -> None:
        window = self.window_cycles
        self.series["offered_rate"].append(self._offered / window)
        self.series["accepted_rate"].append(self._ejected / window)
        energy = self._total_energy(now)
        window_s = window / self._router_clock_hz
        self.series["power_w"].append((energy - self._last_energy) / window_s)
        self.series["mean_level"].append(self._accountant.mean_level())
        self._last_energy = energy
        self._offered = 0
        self._ejected = 0


class ProbeObserver(Observer):
    """Drives one :class:`UtilizationProbe`'s window clock from the bus."""

    __slots__ = ("probe", "window_cycles")

    def __init__(self, probe: UtilizationProbe) -> None:
        self.probe = probe
        self.window_cycles = probe.window_cycles

    def on_window_close(self, now: int) -> None:
        self.probe.close_window(now)
