"""Ablations and extensions beyond the paper's figures.

* Congestion litmus: the full policy vs the LU-only strawman Section 3.1
  argues against — the litmus should buy extra power savings under load.
* EWMA weight W and history window H sensitivity (the paper fixes W=3 and
  H=200 for hardware convenience).
* The dynamically adjusted thresholds the paper suggests in Section 4.4.2.
"""

from repro.harness.experiments import (
    ablation_adaptive_thresholds,
    ablation_congestion_litmus,
    ablation_ewma_weight,
    ablation_history_window,
    ablation_ideal_links,
)

from .common import emit, run_once, scale

#: The deep-congestion point is where the litmus matters: stalled links
#: show low LU and only the BU test licenses slowing them down.
RATES = (0.7, 3.5)


def test_ablation_congestion_litmus(benchmark):
    figure = run_once(
        benchmark, lambda: ablation_congestion_litmus(scale(), rates=RATES)
    )
    emit("ablation_litmus", figure)
    sweeps = figure.extras["sweeps"]
    # At the higher (congesting) rate, the litmus lets congested links slow
    # down: full policy burns no more power than LU-only.
    full = sweeps["history"][-1].normalized_power
    lu_only = sweeps["lu_only"][-1].normalized_power
    print(f"\nLitmus ablation at {RATES[-1]} pkt/cyc: history {full:.3f} vs lu_only {lu_only:.3f}")
    assert full <= lu_only * 1.15


def test_ablation_ewma_weight(benchmark):
    figure = run_once(
        benchmark, lambda: ablation_ewma_weight(scale(), rate=1.1)
    )
    emit("ablation_ewma_weight", figure)
    transitions = [row[3] for row in figure.rows]
    assert all(t >= 0 for t in transitions)


def test_ablation_history_window(benchmark):
    figure = run_once(
        benchmark, lambda: ablation_history_window(scale(), rate=1.1)
    )
    emit("ablation_history_window", figure)
    # Shorter windows evaluate more often -> at least as many transitions.
    by_window = {row[0]: row[3] for row in figure.rows}
    assert by_window[50] >= by_window[800]


def test_extension_ideal_links(benchmark):
    """The future-technology limit the paper's conclusion points to:
    instantaneous, non-disabling transitions should cut the DVS latency
    cost substantially at similar power."""
    figure = run_once(
        benchmark, lambda: ablation_ideal_links(scale(), rates=RATES)
    )
    emit("extension_ideal_links", figure)
    sweeps = figure.extras["sweeps"]
    conservative = sweeps["conservative"][0]
    ideal = sweeps["ideal"][0]
    print(
        f"\nIdeal links at {RATES[0]} pkt/cyc: latency "
        f"{conservative.mean_latency:.0f} -> {ideal.mean_latency:.0f}, "
        f"power {conservative.normalized_power:.3f} -> {ideal.normalized_power:.3f}"
    )
    assert ideal.mean_latency <= conservative.mean_latency
    assert ideal.normalized_power < 0.6


def test_extension_adaptive_thresholds(benchmark):
    figure = run_once(
        benchmark, lambda: ablation_adaptive_thresholds(scale(), rates=RATES)
    )
    emit("extension_adaptive_thresholds", figure)
    sweeps = figure.extras["sweeps"]
    # The adaptive variant must stay a sane policy: it saves power at the
    # light-load point.
    assert sweeps["adaptive"][0].normalized_power < 0.7
