"""Figure 12: power and throughput as congestion deepens.

Paper shape: as offered load climbs past saturation, accepted throughput
first rises then falls, and network power under the history DVS policy
*tracks throughput* — it rises while throughput rises and dips once the
whole network congests (stalled links show low utilization and get
down-scaled).
"""

from repro.harness.experiments import fig12_congestion_power

from .common import emit, run_once, scale

RATES = (0.5, 1.5, 3.0, 5.0, 8.0)


def test_fig12_congestion_power(benchmark):
    figure = run_once(
        benchmark, lambda: fig12_congestion_power(scale(), rates=RATES)
    )
    emit("fig12_congestion", figure)
    throughput = [row[2] for row in figure.rows]
    power = [row[3] for row in figure.rows]

    # Power rises from light load toward the throughput peak...
    peak = throughput.index(max(throughput))
    assert power[peak] > power[0]
    # ...and does not keep rising once throughput has collapsed: the
    # deepest-congestion point burns less than the peak point.
    assert power[-1] <= power[peak] * 1.05

    # Throughput is non-monotone (rises then saturates/dips).
    assert max(throughput) >= throughput[-1]
