"""Tests for uniform random and permutation traffic."""

import pytest

from repro.config import WorkloadConfig
from repro.errors import WorkloadError
from repro.network.topology import Topology
from repro.traffic.permutation import PERMUTATIONS, PermutationTraffic
from repro.traffic.uniform import UniformRandomTraffic


def run_source(source, horizon):
    pairs = []
    for now in range(horizon):
        pairs.extend(source.injections(now))
    return pairs


class TestUniform:
    def test_rate(self):
        topology = Topology(4, 2)
        source = UniformRandomTraffic(
            topology, WorkloadConfig(kind="uniform", injection_rate=0.5, seed=3)
        )
        pairs = run_source(source, 20_000)
        assert len(pairs) / 20_000 == pytest.approx(0.5, rel=0.1)

    def test_no_self_traffic(self):
        topology = Topology(3, 2)
        source = UniformRandomTraffic(
            topology, WorkloadConfig(kind="uniform", injection_rate=1.0, seed=4)
        )
        for src, dst in run_source(source, 2_000):
            assert src != dst

    def test_sources_roughly_uniform(self):
        topology = Topology(4, 2)
        source = UniformRandomTraffic(
            topology, WorkloadConfig(kind="uniform", injection_rate=2.0, seed=5)
        )
        counts = [0] * 16
        for src, _ in run_source(source, 20_000):
            counts[src] += 1
        total = sum(counts)
        for count in counts:
            assert count / total == pytest.approx(1 / 16, abs=0.02)

    def test_zero_rate_silent(self):
        topology = Topology(3, 2)
        source = UniformRandomTraffic(
            topology, WorkloadConfig(kind="uniform", injection_rate=0.0)
        )
        assert run_source(source, 100) == []


class TestPermutationFunctions:
    def test_transpose_2d(self):
        topology = Topology(4, 2)
        dst = PERMUTATIONS["transpose"](topology, topology.node_at((1, 3)))
        assert topology.coords(dst) == (3, 1)

    def test_bit_complement(self):
        topology = Topology(4, 2)  # 16 nodes, 4 bits
        assert PERMUTATIONS["bit_complement"](topology, 0b0000) == 0b1111
        assert PERMUTATIONS["bit_complement"](topology, 0b1010) == 0b0101

    def test_bit_reverse(self):
        topology = Topology(4, 2)
        assert PERMUTATIONS["bit_reverse"](topology, 0b0001) == 0b1000
        assert PERMUTATIONS["bit_reverse"](topology, 0b0110) == 0b0110

    def test_shuffle(self):
        topology = Topology(4, 2)
        assert PERMUTATIONS["shuffle"](topology, 0b1000) == 0b0001
        assert PERMUTATIONS["shuffle"](topology, 0b0011) == 0b0110

    def test_bit_patterns_need_power_of_two(self):
        topology = Topology(3, 2)  # 9 nodes
        with pytest.raises(WorkloadError):
            PERMUTATIONS["bit_complement"](topology, 1)


class TestPermutationTraffic:
    def test_fixed_destinations(self):
        topology = Topology(4, 2)
        source = PermutationTraffic(
            topology,
            WorkloadConfig(
                kind="permutation", permutation="transpose", injection_rate=1.0, seed=6
            ),
        )
        for src, dst in run_source(source, 3_000):
            assert dst == PERMUTATIONS["transpose"](topology, src)

    def test_identity_sources_skipped(self):
        topology = Topology(4, 2)
        source = PermutationTraffic(
            topology,
            WorkloadConfig(
                kind="permutation", permutation="transpose", injection_rate=1.0, seed=7
            ),
        )
        diagonal = {topology.node_at((i, i)) for i in range(4)}
        for src, _ in run_source(source, 3_000):
            assert src not in diagonal

    def test_unknown_permutation(self):
        topology = Topology(4, 2)
        with pytest.raises(Exception):
            PermutationTraffic(
                topology,
                WorkloadConfig(kind="permutation", permutation="nope"),
            )
