"""Router power distribution — the analytical Figure 7 model.

The paper synthesized its Verilog router to TSMC 0.25 um and measured the
power split with Synopsys Power Compiler; the published anchors are:

* link circuitry consumes **82.4%** of total router+channel power;
* the allocators consume **81 mW**;
* one channel of eight links peaks at 8 x 200 mW = 1.6 W.

We cannot rerun the synthesis flow, so this module reconstructs the full
distribution from those anchors: with four network ports the links total
6.4 W, fixing total power at 6.4/0.824 = 7.77 W; the published allocator
power is subtracted and the remaining core power is split across buffers,
crossbar and clock in the proportions typical of buffer-heavy VC routers
(the paper's router carries a large 128-flit buffer pool per port, so
buffers dominate the core).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError

#: Core-remainder split (after allocators): buffers dominate in a router
#: with 128 flit buffers per port; crossbar and clock follow.
_CORE_SPLIT = {"buffers": 0.62, "crossbar": 0.23, "clock": 0.15}


@dataclass(frozen=True, slots=True)
class RouterPowerProfile:
    """Analytical router power breakdown pinned to the paper's anchors."""

    ports: int = 4
    lanes_per_port: int = 8
    link_power_w: float = 0.2
    link_fraction: float = 0.824
    allocator_power_w: float = 0.081
    core_split: dict = field(default_factory=lambda: dict(_CORE_SPLIT))

    def __post_init__(self) -> None:
        if self.ports < 1 or self.lanes_per_port < 1:
            raise ConfigError("ports and lanes must be positive")
        if not 0.0 < self.link_fraction < 1.0:
            raise ConfigError("link fraction must be in (0, 1)")
        if self.link_power_w <= 0.0 or self.allocator_power_w < 0.0:
            raise ConfigError("powers must be non-negative (links positive)")
        if abs(sum(self.core_split.values()) - 1.0) > 1e-9:
            raise ConfigError("core split fractions must sum to 1")

    @property
    def links_power_w(self) -> float:
        """Max power of all the router's link circuitry."""
        return self.ports * self.lanes_per_port * self.link_power_w

    @property
    def total_power_w(self) -> float:
        """Total router+channel power implied by the link fraction."""
        return self.links_power_w / self.link_fraction

    @property
    def core_power_w(self) -> float:
        """Router-core (non-link) power."""
        return self.total_power_w - self.links_power_w

    def breakdown_w(self) -> dict[str, float]:
        """Component -> watts, matching Figure 7's categories."""
        remainder = self.core_power_w - self.allocator_power_w
        if remainder < 0.0:
            raise ConfigError(
                "allocator power exceeds the core budget; anchors inconsistent"
            )
        parts = {"links": self.links_power_w, "allocators": self.allocator_power_w}
        for name, fraction in self.core_split.items():
            parts[name] = remainder * fraction
        return parts

    def breakdown_fractions(self) -> dict[str, float]:
        """Component -> fraction of total power."""
        total = self.total_power_w
        return {name: power / total for name, power in self.breakdown_w().items()}

    def describe(self) -> str:
        """Figure-7-style text table."""
        lines = ["Router power distribution (max channel power)"]
        for name, power in sorted(
            self.breakdown_w().items(), key=lambda item: -item[1]
        ):
            fraction = power / self.total_power_w
            lines.append(f"  {name:<11} {power * 1e3:>8.1f} mW  {fraction:6.1%}")
        lines.append(f"  {'TOTAL':<11} {self.total_power_w * 1e3:>8.1f} mW")
        return "\n".join(lines)
