"""The paper's reported numbers, as structured data.

Everything the paper states quantitatively about its evaluation, encoded
once so benches, docs and tests reference a single source instead of
scattering magic numbers. Values are reproduced from the text of
Shang, Peh & Jha (HPCA 2003); section/figure references are noted.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PaperClaim:
    """One quantitative claim from the paper."""

    metric: str
    value: float
    source: str
    #: Whether this reproduction matches the claim's *shape* (EXPERIMENTS.md
    #: carries the measured values and analysis).
    reproduced: bool


#: The abstract's headline results (Sections 1 and 4.4.1).
HEADLINE_CLAIMS = (
    PaperClaim("max_power_savings_x", 6.3, "abstract / Fig 10", True),
    PaperClaim("avg_power_savings_x", 4.6, "abstract / Fig 10", True),
    PaperClaim("zero_load_latency_increase", 0.108, "Sec 4.4.1", False),
    PaperClaim("presaturation_latency_increase", 0.152, "abstract / Sec 4.4.1", False),
    PaperClaim("throughput_reduction", 0.025, "abstract / Sec 4.4.1", True),
    PaperClaim("max_power_savings_50tasks_x", 6.4, "Sec 4.4.1 / Fig 11", True),
    PaperClaim("avg_power_savings_50tasks_x", 4.9, "Sec 4.4.1 / Fig 11", True),
)

#: DVS link electrical facts (Sections 2 and 4.2).
LINK_FACTS = {
    "levels": 10,
    "min_frequency_hz": 125.0e6,
    "max_frequency_hz": 1.0e9,
    "min_voltage_v": 0.9,
    "max_voltage_v": 2.5,
    "min_link_power_w": 23.6e-3,
    "max_link_power_w": 200.0e-3,
    "lanes_per_channel": 8,
    "mux_ratio": 4,
    "channel_bandwidth_bps": 32.0e9,
    "voltage_transition_s": 10.0e-6,
    "frequency_transition_link_cycles": 100,
    "filter_capacitance_f": 5.0e-6,
    "regulator_efficiency": 0.9,
    "variable_freq_link_potential_savings_x": 10.0,  # Sec 1 [12, 29]
}

#: Router microarchitecture (Section 4.2).
ROUTER_FACTS = {
    "mesh_radix": 8,
    "router_clock_hz": 1.0e9,
    "virtual_channels": 2,
    "flit_buffers_per_port": 128,
    "flits_per_packet": 5,
    "flit_bits": 32,
    "pipeline_stages": 13,
    "nominal_network_power_w": 409.6,  # 64 * 4 * 8 * 0.2
    "link_power_fraction": 0.824,      # Fig 7
    "allocator_power_w": 0.081,        # Sec 4.2
}

#: Workload model constants the paper *does* publish (Section 4.3).
WORKLOAD_FACTS = {
    "on_shape": 1.4,
    "off_shape": 1.2,
    "onoff_sources_per_task": 128,
    "task_counts": (50, 100),
    "task_duration_range_s": (1.0e-6, 1.0e-3),
    "fig15_rate_packets_per_cycle": 1.7,
}

#: Controller hardware (Section 3.3).
HARDWARE_FACTS = {
    "gate_count": 500,
    "max_power_w": 3.0e-3,
}

#: Comparative context the introduction cites.
CONTEXT_FACTS = {
    "alpha21364_router_links_w": 23.0,
    "alpha21364_link_fraction": 0.58,
    "mellanox_network_w": 15.0,
    "mellanox_total_w": 40.0,
    "ibm_switch_total_w": 31.0,
    "ibm_switch_link_fraction": 0.65,
}


def headline_table() -> list[tuple[str, float, str]]:
    """(metric, paper value, source) rows for rendering."""
    return [(c.metric, c.value, c.source) for c in HEADLINE_CLAIMS]
