"""Tests for network snapshots."""

import pytest

from repro.network.simulator import Simulator
from repro.network.stats import NetworkSnapshot, snapshot

from .conftest import small_config


class TestSnapshot:
    def test_shape(self):
        simulator = Simulator(small_config())
        simulator.run_cycles(1_000)
        snap = snapshot(simulator)
        assert snap.cycle == 1_000
        assert len(snap.channels) == len(simulator.channels)
        assert len(snap.routers) == simulator.topology.node_count
        assert sum(snap.level_histogram) == len(snap.channels)

    def test_levels_match_simulator(self):
        config = small_config(policy="history", rate=0.05, measure=3_000)
        simulator = Simulator(config)
        simulator.run_cycles(3_000)
        snap = snapshot(simulator)
        assert snap.mean_level == pytest.approx(
            simulator.accountant.mean_level()
        )

    def test_buffer_totals_match(self):
        simulator = Simulator(small_config(rate=0.8))
        simulator.run_cycles(1_500)
        snap = snapshot(simulator)
        assert snap.total_flits_in_buffers == sum(
            router.total_buffered for router in simulator.routers
        )

    def test_busiest_channels_ordered(self):
        simulator = Simulator(small_config(rate=0.5))
        simulator.run_cycles(2_000)
        ranked = snapshot(simulator).busiest_channels(4)
        sent = [ch.flits_sent for ch in ranked]
        assert sent == sorted(sent, reverse=True)
        assert sent[0] > 0

    def test_hottest_routers_ordered(self):
        simulator = Simulator(small_config(rate=2.5))
        simulator.run_cycles(2_000)
        ranked = snapshot(simulator).hottest_routers(3)
        heat = [r.buffered_flits + r.source_queue_depth for r in ranked]
        assert heat == sorted(heat, reverse=True)

    def test_utilization_in_unit_range(self):
        simulator = Simulator(small_config(rate=1.5))
        simulator.run_cycles(2_000)
        for channel in snapshot(simulator).channels:
            assert 0.0 <= channel.utilization <= 1.0

    def test_snapshot_does_not_perturb(self):
        config = small_config(rate=0.4, seed=3)
        plain = Simulator(config)
        observed = Simulator(config)
        for _ in range(4):
            plain.run_cycles(500)
            observed.run_cycles(500)
            snapshot(observed)
        assert plain.total_ejected_packets == observed.total_ejected_packets

    def test_empty_snapshot_mean_level(self):
        snap = NetworkSnapshot(cycle=0, channels=(), routers=())
        with pytest.raises(Exception):
            _ = snap.mean_level
