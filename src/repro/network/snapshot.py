"""O(live-state) engine snapshots: fast cloning and state digests.

The batched sweep kernel (:mod:`repro.network.batched`) clones a class
engine whenever member policies diverge at a history-window boundary, and
re-merges classes whose states reconverge. Both operations used to lean on
``copy.deepcopy``, which walks the *entire* object graph — immutable
config, topology tables, route memos, pooled free lists — even though only
the mutable simulation state differs between two engines. This module
implements the explicit protocol instead:

* :func:`fast_clone` builds a new :class:`~repro.network.simulator.Simulator`
  that **shares** everything immutable or pure (config, topology, routing,
  VF tables, power/regulator models, route-computation memos, per-port
  destination tables) and **copies** only live mutable state: channel DVS
  registers and energy counters, VC buffer contents, credit counters,
  arbiter pointers, injection queues, the calendar ring/spill event queue,
  controller registers, observers, and the traffic source. Packets and
  flits are cloned through identity maps so shared-structure (one packet's
  flits across buffers and in-flight events) is preserved exactly,
  ``packet_id`` included. The clone receives *empty* event/flit free lists
  — pool occupancy is behaviorally invisible (a pool miss allocates a
  fresh object with identical state).

* :func:`state_digest` hashes the *behaviorally relevant* state along the
  same walk, canonicalized so that two engines receive equal digests
  exactly when their future evolution (results aside) is bit-identical:

  - stale ``busy_until`` values (``<= now``) canonicalize to ``now`` —
    every such value behaves identically in ``can_accept_flit`` and
    ``send_flit``;
  - the occupied-VC scan list drops entries whose buffer has emptied —
    the scan lazily discards them with no behavioral effect;
  - ``packet_id`` is excluded — ids come from a process-global counter,
    so independently evolving classes interleave differently even in
    identical states, and no simulated decision reads the id;
  - cumulative diagnostics and result accumulators are excluded:
    energy/transition/meter/latency state is carried per member by the
    batched coordinator as exact integer (or multiset) corrections, and
    cumulative bases (``busy_cycles_total``, occupancy integrals and the
    controller's last-integral register, ``_last_cycle`` stamps) cancel
    exactly in the windowed deltas the controllers compute (integer-valued
    float increments below 2**53 subtract exactly).

Both functions refuse structures they cannot prove they handle:
:func:`fast_clone` falls back to ``copy.deepcopy`` for instrumented
engines (sanitizer, probes, series observer, extra bus observers,
``legacy_scan``), and raises :class:`~repro.errors.SimulationError` if the
engine carries an attribute this walk does not know — so a future engine
field fails loudly here instead of silently desynchronizing clones.
"""

from __future__ import annotations

import copy
import hashlib
import struct

from ..core.controller import PortDVSController
from ..core.dvs_link import DVSChannel
from ..errors import SimulationError
from ..instrument.bus import InstrumentBus
from ..instrument.observers import MeasurementMeter, PowerObserver
from ..metrics.latency import LatencyCollector
from ..network.arbiters import RoundRobinArbiter
from ..network.buffers import VCBuffer
from ..network.channel import NetworkChannel
from ..network.flowcontrol import CreditState, OccupancyTracker
from ..network.packet import Flit, Packet
from ..network.router import EVENT_ARRIVAL, EVENT_CREDIT, Router
from ..network.vc import InputVC
from ..power.accounting import PowerAccountant
from .simulator import Simulator

#: Every attribute a Simulator (engine included) owns. fast_clone and
#: state_digest both verify the live instance against this inventory so a
#: newly added engine field cannot be silently dropped from a clone.
_EXPECTED_ATTRS = frozenset(
    {
        # SimulationEngine.__init__
        "config",
        "bus",
        "fast_forward",
        "_legacy_scan",
        "_dispatch_fn",
        "_flits_per_packet",
        "_history_window",
        "idle_cycles_skipped",
        "idle_spans",
        "topology",
        "routing",
        "_ring",
        "_ring_mask",
        "_spill",
        "_spill_min",
        "_event_pool",
        "_flit_pool",
        "now",
        "_counters",
        "_pending_source",
        "_active_flags",
        "_active_list",
        "routers",
        "channels",
        "_channel_ids",
        "controllers",
        "traffic",
        "sanitizer",
        # Simulator.__init__
        "series_window",
        "accountant",
        "probes",
        "_meter",
        "_power_observer",
        "_series_observer",
    }
)


def _check_inventory(sim: Simulator) -> None:
    unknown = set(sim.__dict__) - _EXPECTED_ATTRS
    if unknown:
        raise SimulationError(
            "fast_clone/state_digest do not know engine attribute(s) "
            f"{sorted(unknown)!r}; teach repro.network.snapshot about them "
            "(share, copy, or digest) before cloning this engine"
        )


def _needs_deepcopy(sim: Simulator) -> bool:
    """Whether *sim* carries instrumentation outside the fast-clone walk."""
    if sim.sanitizer is not None or sim._legacy_scan:
        return True
    if sim.probes or sim._series_observer is not None:
        return True
    if sim.bus.observers != [sim._meter, sim._power_observer]:
        return True
    return any(router.age_hooks for router in sim.routers)


# ---------------------------------------------------------------------------
# Leaf clones
# ---------------------------------------------------------------------------


def _clone_dvs(dvs: DVSChannel) -> DVSChannel:
    clone = DVSChannel.__new__(DVSChannel)
    # Every slot is a scalar, an immutable model shared by design (table,
    # power_model, regulator, timing), or the one mutable dict below.
    for name in DVSChannel.__slots__:
        setattr(clone, name, getattr(dvs, name))
    clone.level_step_counts = dict(dvs.level_step_counts)
    return clone


def _clone_tracker(tracker: OccupancyTracker) -> OccupancyTracker:
    clone = OccupancyTracker.__new__(OccupancyTracker)
    clone.occupied = tracker.occupied
    clone._integral = tracker._integral
    clone._last_cycle = tracker._last_cycle
    return clone


def _clone_credit_state(state: CreditState) -> CreditState:
    clone = CreditState.__new__(CreditState)
    clone.capacity_per_vc = state.capacity_per_vc
    clone.credits = list(state.credits)
    clone.vc_free = list(state.vc_free)
    return clone


def _clone_arbiter(arbiter: RoundRobinArbiter) -> RoundRobinArbiter:
    clone = RoundRobinArbiter.__new__(RoundRobinArbiter)
    clone.size = arbiter.size
    clone._next = arbiter._next
    return clone


class _Walk:
    """Identity maps shared by one fast_clone invocation."""

    __slots__ = ("packets", "flits", "dvs", "trackers")

    def __init__(self) -> None:
        self.packets: dict[int, Packet] = {}
        self.flits: dict[int, Flit] = {}
        self.dvs: dict[int, DVSChannel] = {}
        self.trackers: dict[int, OccupancyTracker] = {}

    def packet(self, packet: Packet) -> Packet:
        clone = self.packets.get(id(packet))
        if clone is None:
            clone = Packet.__new__(Packet)
            clone.src = packet.src
            clone.dst = packet.dst
            clone.size_flits = packet.size_flits
            clone.created_cycle = packet.created_cycle
            clone.packet_id = packet.packet_id
            clone.ejected_cycle = packet.ejected_cycle
            clone.vc_class = packet.vc_class
            clone.last_dim = packet.last_dim
            self.packets[id(packet)] = clone
        return clone

    def flit(self, flit: Flit) -> Flit:
        clone = self.flits.get(id(flit))
        if clone is None:
            clone = Flit.__new__(Flit)
            clone.packet = self.packet(flit.packet)
            clone.index = flit.index
            clone.is_head = flit.is_head
            clone.is_tail = flit.is_tail
            clone.buffer_arrival_cycle = flit.buffer_arrival_cycle
            self.flits[id(flit)] = clone
        return clone


def _clone_router(src: Router, target: Simulator, walk: _Walk) -> Router:
    router = Router.__new__(Router)
    router.node = src.node
    router.local_port = src.local_port
    router.vcs_per_port = src.vcs_per_port
    router.routing = src.routing
    router.schedule = target.schedule
    router.packet_sink = target._on_packet_ejected
    router.injected_sink = target._on_packet_injected
    router.credit_delay = src.credit_delay
    router.event_pool = target._event_pool
    router.flit_pool = target._flit_pool
    router._fast_ring = None
    router._fast_mask = 0
    router._fast_counters = None

    router.occupancy = []
    for tracker in src.occupancy:
        if tracker is None:
            router.occupancy.append(None)
        else:
            clone = _clone_tracker(tracker)
            walk.trackers[id(tracker)] = clone
            router.occupancy.append(clone)
    # Read-only wiring tables, shared: upstream coordinates, downstream
    # coordinates, pipeline latencies, dateline-class rows, route memo
    # (pure function of its key; cached lists are never mutated).
    router.credit_targets = src.credit_targets
    router._port_dst = src._port_dst
    router._port_pipeline = src._port_pipeline
    router._next_class = src._next_class
    router._route_memo = src._route_memo

    vc_map: dict[int, InputVC] = {}
    router.in_vcs = []
    for row in src.in_vcs:
        new_row = []
        for vcstate in row:
            clone = InputVC.__new__(InputVC)
            buffer = VCBuffer.__new__(VCBuffer)
            buffer.capacity = vcstate.buffer.capacity
            buffer.flits = type(vcstate.buffer.flits)(
                walk.flit(flit) for flit in vcstate.buffer.flits
            )
            clone.buffer = buffer
            clone.out_port = vcstate.out_port
            clone.out_vc = vcstate.out_vc
            clone.route_options = vcstate.route_options
            clone.flits = buffer.flits
            clone.capacity = vcstate.capacity
            clone.in_port = vcstate.in_port
            clone.in_vc = vcstate.in_vc
            clone.rid = vcstate.rid
            tracker = vcstate.tracker
            clone.tracker = None if tracker is None else walk.trackers[id(tracker)]
            clone.credit_target = vcstate.credit_target
            clone.in_occ = vcstate.in_occ
            vc_map[id(vcstate)] = clone
            new_row.append(clone)
        router.in_vcs.append(new_row)

    # Filled by fast_clone once the clone's channel list exists.
    router.channels = [None] * len(src.channels)
    router.credit_states = [
        None if state is None else _clone_credit_state(state)
        for state in src.credit_states
    ]
    router.connected_out = src.connected_out
    router.sa_arbiters = [
        None if arbiter is None else _clone_arbiter(arbiter)
        for arbiter in src.sa_arbiters
    ]
    router._port_dvs = [
        None if dvs is None else walk.dvs[id(dvs)] for dvs in src._port_dvs
    ]

    router.inj_queue = type(src.inj_queue)(
        walk.packet(packet) for packet in src.inj_queue
    )
    router.inj_flits = [walk.flit(flit) for flit in src.inj_flits]
    router.inj_pos = src.inj_pos
    router.inj_vc = src.inj_vc
    router.total_buffered = src.total_buffered
    router.age_hooks = {}
    router.flits_ejected = src.flits_ejected
    router.packets_ejected = src.packets_ejected
    router.flits_launched = src.flits_launched

    router._vc_scan = [vc_map[id(vcstate)] for vcstate in src._vc_scan]
    router._local_vcs = router.in_vcs[router.local_port]
    router._occ_list = list(src._occ_list)
    router._req_ports = list(src._req_ports)
    router._req_lists = [
        [vc_map[id(vcstate)] for vcstate in requests]
        for requests in src._req_lists
    ]
    router._grants = [vc_map[id(vcstate)] for vcstate in src._grants]
    router._hot = (
        router.local_port,
        router.credit_states,
        router._port_dvs,
        router._req_ports,
        router._req_lists,
        router._vc_scan,
        router._occ_list,
        router.sa_arbiters,
        router.schedule,
        router.credit_delay,
        router._port_dst,
        router._port_pipeline,
        router.age_hooks,
        router._grants,
    )
    return router


def _map_event(event: list, walk: _Walk) -> list:
    kind = event[0]
    if kind == EVENT_ARRIVAL:
        return [kind, event[1], event[2], event[3], walk.flit(event[4])]
    if kind == EVENT_CREDIT:
        return [kind, event[1], event[2], event[3], event[4]]
    return [kind, walk.dvs[id(event[1])], None, None, None]


# ---------------------------------------------------------------------------
# fast_clone
# ---------------------------------------------------------------------------


def fast_clone(sim: Simulator) -> Simulator:
    """An independent Simulator bit-identical in behavior to *sim*.

    Continuing the clone and a ``copy.deepcopy`` of *sim* produces equal
    :class:`~repro.network.simulator.SimulationResult`\\ s (the property
    tests in ``tests/test_snapshot.py`` assert exactly that for every
    registered policy). Cost is proportional to the *live* mutable state —
    buffered flits, pending events, per-channel registers — not to the
    full object graph.
    """
    _check_inventory(sim)
    if _needs_deepcopy(sim):
        clone = copy.deepcopy(sim)
        # deepcopy preserves values, not ids — rebuild the id-keyed index.
        clone._channel_ids = {
            id(channel.dvs): channel.spec.channel_id
            for channel in clone.channels
        }
        return clone

    walk = _Walk()
    clone = object.__new__(type(sim))

    # Shared immutables / pure structures.
    clone.config = sim.config
    clone.topology = sim.topology
    clone.routing = sim.routing
    clone.fast_forward = sim.fast_forward
    clone._legacy_scan = False
    clone._flits_per_packet = sim._flits_per_packet
    clone._history_window = sim._history_window
    clone.series_window = sim.series_window
    clone.sanitizer = None
    clone.probes = []
    clone._series_observer = None
    clone._dispatch_fn = clone._dispatch

    # Scalar engine state.
    clone.now = sim.now
    clone.idle_cycles_skipped = sim.idle_cycles_skipped
    clone.idle_spans = sim.idle_spans
    clone._ring_mask = sim._ring_mask
    clone._spill_min = sim._spill_min
    clone._counters = list(sim._counters)
    clone._pending_source = sim._pending_source
    clone._active_flags = bytearray(sim._active_flags)
    clone._active_list = list(sim._active_list)
    clone._event_pool = []
    clone._flit_pool = []

    # Channels first: events and routers reference the DVS clones.
    clone.channels = []
    for channel in sim.channels:
        dvs = _clone_dvs(channel.dvs)
        walk.dvs[id(channel.dvs)] = dvs
        clone.channels.append(
            NetworkChannel(channel.spec, dvs, channel.pipeline_latency)
        )
    clone._channel_ids = {
        id(channel.dvs): channel.spec.channel_id for channel in clone.channels
    }

    # Event queue: map every record onto the clone's object graph,
    # preserving bucket membership and in-bucket order exactly.
    clone._ring = [
        [_map_event(event, walk) for event in bucket] for bucket in sim._ring
    ]
    clone._spill = {
        cycle: [_map_event(event, walk) for event in bucket]
        for cycle, bucket in sim._spill.items()
    }

    # Routers, wired to the clone's channels by positional lookup.
    channel_clone_by_id = {
        id(original): clone.channels[index]
        for index, original in enumerate(sim.channels)
    }
    clone.routers = []
    for src in sim.routers:
        router = _clone_router(src, clone, walk)
        router.channels = [
            None if channel is None else channel_clone_by_id[id(channel)]
            for channel in src.channels
        ]
        router.bind_fast_queue(clone._ring, clone._ring_mask, clone._counters)
        clone.routers.append(router)

    # Controllers: cloned channel + cloned tracker + deep-copied policy
    # (policy objects are small and self-contained: puppet replays in the
    # batched kernel, EWMA registers in scalar use).
    clone.controllers = []
    for controller in sim.controllers:
        new = PortDVSController.__new__(PortDVSController)
        new.channel = walk.dvs[id(controller.channel)]
        new.policy = copy.deepcopy(controller.policy)
        source = controller.occupancy_source
        tracker = walk.trackers.get(id(source))
        if tracker is None:
            raise SimulationError(
                "fast_clone requires controller occupancy sources to be "
                "router occupancy trackers; found "
                f"{type(source).__name__!r}"
            )
        new.occupancy_source = tracker
        new.window_cycles = controller.window_cycles
        new.buffer_capacity = controller.buffer_capacity
        new.windows_evaluated = controller.windows_evaluated
        new.actions_taken = dict(controller.actions_taken)
        new.requests_dropped = controller.requests_dropped
        new.last_link_utilization = controller.last_link_utilization
        new.last_buffer_utilization = controller.last_buffer_utilization
        new._last_occupancy_integral = controller._last_occupancy_integral
        clone.controllers.append(new)

    # Traffic: a small self-contained object graph (heaps, RNG state);
    # deepcopy is both exact and cheap relative to the network state.
    clone.traffic = copy.deepcopy(sim.traffic)

    # Measurement stack: fresh accountant/meter/observer over the clone's
    # channels, state copied field by field, attached in __init__ order.
    accountant = PowerAccountant.__new__(PowerAccountant)
    accountant.channels = [channel.dvs for channel in clone.channels]
    accountant.router_clock_hz = sim.accountant.router_clock_hz
    accountant.baseline_power_w = sim.accountant.baseline_power_w
    accountant._start_cycle = sim.accountant._start_cycle
    accountant._start_link_energy_fj = sim.accountant._start_link_energy_fj
    accountant._start_transitions = sim.accountant._start_transitions
    accountant._start_transition_energy_fj = (
        sim.accountant._start_transition_energy_fj
    )
    clone.accountant = accountant

    meter = MeasurementMeter.__new__(MeasurementMeter)
    latency = LatencyCollector.__new__(LatencyCollector)
    latency._latencies = list(sim._meter.latency._latencies)
    meter.latency = latency
    meter.measuring = sim._meter.measuring
    meter.measure_start = sim._meter.measure_start
    meter.offered = sim._meter.offered
    meter.ejected = sim._meter.ejected
    meter.total_ejected = sim._meter.total_ejected
    clone._meter = meter

    observer = PowerObserver.__new__(PowerObserver)
    observer.accountant = accountant
    observer.ramp_starts_seen = sim._power_observer.ramp_starts_seen
    clone._power_observer = observer

    bus = InstrumentBus()
    bus.attach(meter)
    bus.attach(observer)
    clone.bus = bus
    return clone


# ---------------------------------------------------------------------------
# state_digest
# ---------------------------------------------------------------------------


def _encode(obj, out: list) -> None:
    """Type-tagged, structure-unambiguous canonical byte encoding."""
    if obj is True:
        out.append(b"T")
    elif obj is False:
        out.append(b"F")
    elif obj is None:
        out.append(b"N")
    else:
        kind = type(obj)
        if kind is int:
            out.append(b"i%d;" % obj)
        elif kind is float:
            out.append(b"f")
            out.append(struct.pack("<d", obj))
        elif kind is str:
            raw = obj.encode("utf-8")
            out.append(b"s%d:" % len(raw))
            out.append(raw)
        elif kind is tuple or kind is list:
            out.append(b"(%d:" % len(obj))
            for item in obj:
                _encode(item, out)
            out.append(b")")
        else:
            raise SimulationError(
                f"state_digest cannot canonicalize a {kind.__name__!r}"
            )


def state_digest(sim: Simulator) -> bytes:
    """Canonical digest of *sim*'s behaviorally relevant state.

    Two engines with equal digests at the same cycle evolve bit-identically
    forever (given identical future policy commands); the batched kernel
    coalesces equivalence classes on digest equality at history-window
    boundaries. See the module docstring for the canonicalization and
    exclusion rules.
    """
    _check_inventory(sim)
    now = sim.now
    items: list = [now, sim._pending_source, sim.traffic.packets_offered]

    for channel in sim.channels:
        dvs = channel.dvs
        busy_until = dvs.busy_until
        items.append(
            (
                dvs._level,
                dvs._voltage_level,
                dvs._target_level,
                dvs._phase.name,
                dvs._phase_end_cycle,
                dvs.locked,
                dvs.sleeping,
                dvs.sleep_demand,
                dvs._sleep_lockout_until,
                dvs._last_energy_cycle,
                busy_until if busy_until > now else float(now),
                dvs.busy_window,
            )
        )

    # Packet identity table: first-visit order; packet_id excluded (the
    # process-global counter interleaves across classes).
    packet_index: dict[int, int] = {}

    def pk(packet: Packet) -> int:
        index = packet_index.get(id(packet))
        if index is None:
            index = len(packet_index)
            packet_index[id(packet)] = index
            items.append(
                (
                    packet.src,
                    packet.dst,
                    packet.size_flits,
                    packet.created_cycle,
                    packet.vc_class,
                    packet.last_dim,
                )
            )
        return index

    for router in sim.routers:
        items.append((router.total_buffered, router.inj_pos, router.inj_vc))
        items.append(tuple(pk(packet) for packet in router.inj_queue))
        items.append(tuple((pk(flit.packet), flit.index) for flit in router.inj_flits))
        for state in router.credit_states:
            if state is not None:
                items.append((tuple(state.credits), tuple(state.vc_free)))
        for arbiter in router.sa_arbiters:
            if arbiter is not None:
                items.append(arbiter._next)
        for tracker in router.occupancy:
            if tracker is not None:
                items.append(tracker.occupied)
        scan = router._vc_scan
        for vcstate in scan:
            items.append(
                (
                    vcstate.out_port,
                    vcstate.out_vc,
                    tuple(
                        (pk(flit.packet), flit.index, flit.buffer_arrival_cycle)
                        for flit in vcstate.flits
                    ),
                )
            )
        # Emptied-buffer entries are dropped lazily by the scan with no
        # behavioral effect; canonicalize them away.
        items.append(tuple(rid for rid in router._occ_list if scan[rid].flits))

    items.append(tuple(sim._active_list))

    # Pending events, in exact dispatch order: ascending cycle, spill
    # bucket before ring bucket, insertion order within each.
    ring_buckets: dict[int, list] = {}
    if sim._counters[2]:
        mask = sim._ring_mask
        for slot, bucket in enumerate(sim._ring):
            if bucket:
                ring_buckets[now + ((slot - now) & mask)] = bucket
    spill = sim._spill
    # Not sim._channel_ids: that map keys object ids and goes stale across
    # deepcopy (the batched kernel rebuilds it after cloning).
    channel_ids = {
        id(channel.dvs): channel.spec.channel_id for channel in sim.channels
    }
    for cycle in sorted(set(spill) | set(ring_buckets)):
        encoded = []
        for bucket in (spill.get(cycle), ring_buckets.get(cycle)):
            if not bucket:
                continue
            for event in bucket:
                kind = event[0]
                if kind == EVENT_ARRIVAL:
                    flit = event[4]
                    # buffer_arrival_cycle is overwritten at dispatch.
                    encoded.append(
                        (kind, event[1], event[2], event[3], pk(flit.packet), flit.index)
                    )
                elif kind == EVENT_CREDIT:
                    encoded.append((kind, event[1], event[2], event[3], bool(event[4])))
                else:
                    encoded.append((kind, channel_ids[id(event[1])]))
        items.append((cycle, tuple(encoded)))

    out: list = []
    _encode(items, out)
    return hashlib.blake2b(b"".join(out), digest_size=16).digest()
