"""Tests for Hurst-exponent estimation and workload self-similarity.

These validate the paper's Section 4.3 claim: the two-level ON/OFF
workload is long-range dependent (H > 0.5) while Poisson traffic is not
(H ~ 0.5). Block estimators are biased on short series, so the assertions
check *separation*, not absolute values.
"""

import random

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.traffic.onoff import OnOffSourceSet
from repro.traffic.selfsim import hurst_rs, hurst_variance_time


def poisson_counts(rng, rate, n):
    return [sum(1 for _ in range(20) if rng.random() < rate / 20) for _ in range(n)]


def onoff_counts(seed, n, window=50):
    rng = random.Random(seed)
    source_set = OnOffSourceSet(
        rng,
        sources=16,
        target_rate=0.2,
        start=0,
        end=n * window,
        on_location=200.0,
        peak_interval=10.0,
    )
    counts = [0] * n
    for now in range(n * window):
        if source_set.next_time <= now:
            counts[now // window] += source_set.advance(now)
    return counts


class TestEstimators:
    def test_white_noise_near_half(self):
        rng = np.random.default_rng(1)
        series = rng.poisson(5.0, size=8_192)
        assert 0.35 < hurst_rs(series) < 0.68
        assert 0.3 < hurst_variance_time(series) < 0.68

    def test_integrated_noise_near_one(self):
        """A random walk's increments aggregated -> H close to 1 for the
        level series."""
        rng = np.random.default_rng(2)
        series = np.cumsum(rng.normal(size=8_192))
        assert hurst_rs(series) > 0.8
        assert hurst_variance_time(series) > 0.8

    def test_validation(self):
        with pytest.raises(WorkloadError):
            hurst_rs([1.0] * 100)  # constant
        with pytest.raises(WorkloadError):
            hurst_rs([1.0, 2.0])  # too short
        with pytest.raises(WorkloadError):
            hurst_variance_time(np.ones((4, 4)))  # not 1-D


class TestWorkloadLRD:
    def test_onoff_more_self_similar_than_poisson(self):
        onoff_h = np.mean([hurst_variance_time(onoff_counts(s, 2_000)) for s in range(3)])
        rng = random.Random(9)
        poisson_h = np.mean(
            [
                hurst_variance_time(poisson_counts(rng, 5.0, 2_000))
                for _ in range(3)
            ]
        )
        assert onoff_h > poisson_h + 0.1

    def test_onoff_hurst_above_half(self):
        estimates = [hurst_rs(onoff_counts(seed, 2_000)) for seed in range(3)]
        assert np.mean(estimates) > 0.55
