"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.rate == 1.0
        assert args.policy == "history"

    def test_figure_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_every_paper_figure_has_a_cli_name(self):
        for name in (
            "fig3", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10",
            "fig11", "fig12", "fig13", "fig14", "fig15", "fig16a",
            "fig16b", "fig17a", "fig17b", "headline",
        ):
            assert name in FIGURES


class TestCommands:
    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "125.0" in out          # VF table
        assert "TOTAL" in out          # hardware estimate
        assert "Table 2" in out

    def test_run_smoke(self, capsys):
        assert main(["run", "--rate", "0.2", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "accepted packets/cycle" in out
        assert "savings factor" in out

    def test_figure_with_json(self, capsys, tmp_path):
        path = tmp_path / "fig7.json"
        assert main(["figure", "fig7", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["figure"] == "Figure 7"
        assert any(row[0] == "links" for row in data["rows"])

    def test_bad_scale_reports_error(self, capsys):
        assert main(["run", "--scale", "galactic"]) == 2
        assert "error:" in capsys.readouterr().err


class TestFig7Scale:
    def test_scale_flag_accepted_and_noted(self, capsys):
        # fig7 used to silently swallow --scale through a discarding
        # lambda; now the figure function takes the scale and the CLI
        # tells the user it has no effect.
        assert main(["figure", "fig7", "--scale", "paper"]) == 0
        captured = capsys.readouterr()
        assert "Figure 7" in captured.out
        assert "no effect" in captured.err

    def test_no_scale_no_note(self, capsys):
        assert main(["figure", "fig7"]) == 0
        assert "no effect" not in capsys.readouterr().err


class TestRunTrace:
    def test_trace_written(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main([
            "run", "--rate", "0.3", "--scale", "smoke", "--trace", str(path),
        ]) == 0
        assert "trace:" in capsys.readouterr().out
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert any(r["event"] == "mark" for r in records)
        assert any(
            r.get("kind") == "ramp_start" for r in records
        )  # smoke runs DVS by default


class TestSweepProcesses:
    def test_parser_default_is_serial(self):
        args = build_parser().parse_args(["sweep"])
        assert args.processes == 1

    def test_sweep_with_two_processes(self, capsys):
        assert main([
            "sweep", "--rates", "0.3,0.6", "--scale", "smoke",
            "--processes", "2",
        ]) == 0
        assert "DVS (history) vs non-DVS sweep" in capsys.readouterr().out
