"""JSON serialization of experiment results.

Experiment result objects are nested dataclasses containing floats, ints,
dicts and lists; :func:`to_json` converts them recursively (dataclasses to
dicts, NaN preserved as the string ``"nan"`` for portability) and
:func:`write_json` persists them.

This module serializes *results*, not engines. If you need to capture a
live engine mid-run — checkpointing, forking what-if branches — do not
pickle or ``copy.deepcopy`` the ``Simulator``: both walk the entire
object graph (immutable config, topology, route memos and all). The
snapshot protocol (``repro.network.snapshot``) is the cheap seam:
``fast_clone`` copies only the live mutable state and shares the
immutable rest, and ``state_digest`` gives a canonical fingerprint of
the network state for equality checks — the same pair the batched
kernel uses for copy-on-divergence splits and class re-merging.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path


def to_json(obj: object) -> object:
    """Recursively convert *obj* into JSON-compatible primitives."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_json(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): to_json(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_json(item) for item in obj]
    if isinstance(obj, float):
        if math.isnan(obj):
            return "nan"
        if math.isinf(obj):
            return "inf" if obj > 0 else "-inf"
        return obj
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    # Fall back to repr for exotic leaves (enums, objects) — lossy but
    # never raises, which matters for best-effort experiment archiving.
    return repr(obj)


def canonical_json(obj: object) -> str:
    """Deterministic compact JSON for content addressing.

    Keys are sorted and separators fixed, so two structurally equal
    objects always produce byte-identical strings — the property the
    sweep cache's fingerprints rely on.
    """
    return json.dumps(to_json(obj), sort_keys=True, separators=(",", ":"))


def write_json(obj: object, path: str | Path) -> Path:
    """Serialize *obj* with :func:`to_json` and write it to *path*."""
    path = Path(path)
    path.write_text(json.dumps(to_json(obj), indent=2))
    return path
