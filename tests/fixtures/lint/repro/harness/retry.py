"""Fixture: R7 (harness interrupt safety).

The path mimics the real harness package so the path-scoped rule fires.
"""


def swallow_everything(run, config):
    try:
        return run(config)
    except Exception:  # one R7 violation: no interrupt guard
        return None


def retry_safely(run, config):
    try:
        return run(config)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:  # clean: interrupts provably re-raised above
        return None


def cleanup_then_reraise(run, config, undo):
    try:
        return run(config)
    except BaseException:  # clean: unconditional re-raise
        undo()
        raise


def documented_escape(run, config):
    try:
        return run(config)
    # Suppressed R7: must NOT be reported.
    except BaseException:  # repro-lint: ignore[R7]
        return None
