"""Tests for the DVS channel state machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dvs_link import ChannelPhase, DVSChannel, TransitionTiming
from repro.core.levels import PAPER_TABLE
from repro.core.power_model import PAPER_LINK_POWER, RegulatorModel
from repro.errors import ConfigError, LinkStateError


def make_channel(
    *,
    initial_level=None,
    voltage_transition_s=1.0e-6,
    frequency_transition_link_cycles=10,
    lanes=8,
):
    return DVSChannel(
        PAPER_TABLE,
        PAPER_LINK_POWER,
        RegulatorModel(),
        lanes=lanes,
        router_clock_hz=1.0e9,
        timing=TransitionTiming(
            voltage_transition_s=voltage_transition_s,
            frequency_transition_link_cycles=frequency_transition_link_cycles,
        ),
        initial_level=initial_level,
    )


def drive_to_completion(channel, now):
    """Advance through all pending phase ends; return the finish cycle."""
    while channel.pending_event_cycle is not None:
        now = channel.pending_event_cycle
        channel.on_phase_end(now)
    return now


class TestConstruction:
    def test_defaults_to_max_level(self):
        channel = make_channel()
        assert channel.level == 9
        assert channel.is_steady
        assert channel.functional

    def test_initial_level(self):
        assert make_channel(initial_level=3).level == 3

    def test_bad_initial_level(self):
        with pytest.raises(ConfigError):
            make_channel(initial_level=10)

    def test_initial_power_is_channel_power(self):
        channel = make_channel(initial_level=9)
        assert channel.power_w == pytest.approx(1.6)  # 8 x 200 mW

    def test_serialization_at_levels(self):
        assert make_channel(initial_level=9).serialization_cycles == pytest.approx(1.0)
        assert make_channel(initial_level=0).serialization_cycles == pytest.approx(8.0)


class TestUpTransition:
    def test_voltage_first_then_frequency(self):
        channel = make_channel(initial_level=5)
        assert channel.request_level(6, now=100)
        # Voltage ramp: functional, frequency unchanged.
        assert channel.phase is ChannelPhase.VOLTAGE_RAMP
        assert channel.functional
        assert channel.level == 5
        assert channel.pending_event_cycle == 100 + 1000  # 1 us at 1 GHz
        channel.on_phase_end(1100)
        # Frequency lock: dead, still at old frequency's serialization.
        assert channel.phase is ChannelPhase.FREQUENCY_LOCK
        assert not channel.functional
        channel.on_phase_end(channel.pending_event_cycle)
        assert channel.is_steady
        assert channel.level == 6
        assert channel.voltage_level == 6

    def test_frequency_lock_duration_uses_old_frequency(self):
        channel = make_channel(initial_level=0)  # 125 MHz: 8 router cycles per link clock
        channel.request_level(1, now=0)
        channel.on_phase_end(1000)  # end of voltage ramp
        lock_cycles = channel.pending_event_cycle - 1000
        assert lock_cycles == 10 * 8  # 10 link clocks at 125 MHz

    def test_transition_energy_charged(self):
        channel = make_channel(initial_level=5)
        channel.request_level(6, now=0)
        v1 = PAPER_TABLE.voltage(5)
        v2 = PAPER_TABLE.voltage(6)
        expected = 0.1 * 5.0e-6 * (v2**2 - v1**2)
        assert channel.transition_energy_j == pytest.approx(expected)
        assert channel.transition_count == 1


class TestDownTransition:
    def test_frequency_first_then_voltage(self):
        channel = make_channel(initial_level=6)
        assert channel.request_level(5, now=50)
        assert channel.phase is ChannelPhase.FREQUENCY_LOCK
        assert not channel.functional
        channel.on_phase_end(channel.pending_event_cycle)
        # Frequency now lower; voltage ramps down while functional.
        assert channel.level == 5
        assert channel.phase is ChannelPhase.VOLTAGE_RAMP
        assert channel.functional
        assert channel.voltage_level == 6  # rail still at the old level
        channel.on_phase_end(channel.pending_event_cycle)
        assert channel.is_steady
        assert channel.voltage_level == 5

    def test_down_serialization_applies_after_lock(self):
        channel = make_channel(initial_level=9)
        channel.request_level(8, now=0)
        assert channel.serialization_cycles == pytest.approx(1.0)
        channel.on_phase_end(channel.pending_event_cycle)
        assert channel.serialization_cycles > 1.0


class TestTransitionRules:
    def test_request_during_transition_rejected(self):
        channel = make_channel(initial_level=5)
        assert channel.request_level(6, now=0)
        assert not channel.request_level(7, now=10)
        assert not channel.request_level(4, now=10)
        assert channel.target_level == 6

    def test_request_same_level_is_noop(self):
        channel = make_channel(initial_level=5)
        assert channel.request_level(5, now=0)
        assert channel.is_steady
        assert channel.pending_event_cycle is None

    def test_request_clamps(self):
        channel = make_channel(initial_level=9)
        assert channel.request_level(99, now=0)
        assert channel.is_steady  # clamped to 9 == current

    def test_multi_step_chains(self):
        channel = make_channel(initial_level=2)
        channel.request_level(4, now=0)
        drive_to_completion(channel, 0)
        assert channel.level == 4
        assert channel.level_step_counts["up"] == 2
        assert channel.transition_count == 2

    def test_phase_end_requires_exact_cycle(self):
        channel = make_channel(initial_level=5)
        channel.request_level(6, now=0)
        with pytest.raises(LinkStateError):
            channel.on_phase_end(channel.pending_event_cycle + 1)

    def test_phase_end_without_pending(self):
        channel = make_channel()
        with pytest.raises(LinkStateError):
            channel.on_phase_end(0)

    def test_force_level_during_transition_rejected(self):
        channel = make_channel(initial_level=5)
        channel.request_level(6, now=0)
        with pytest.raises(LinkStateError):
            channel.force_level(3)

    def test_dead_cycles_accumulate(self):
        channel = make_channel(initial_level=9)
        channel.request_level(8, now=0)
        drive_to_completion(channel, 0)
        assert channel.dead_cycles == 10  # 10 link clocks at 1 GHz


class TestWire:
    def test_send_and_busy(self):
        channel = make_channel(initial_level=9)
        assert channel.can_accept_flit(0)
        done = channel.send_flit(0)
        assert done == pytest.approx(1.0)
        assert channel.flits_sent == 1
        assert channel.busy_cycles_total == pytest.approx(1.0)

    def test_staging_allows_back_to_back_at_fractional_ratio(self):
        channel = make_channel(initial_level=8)  # ser ~1.098
        sent = 0
        now = 0
        for now in range(100):
            if channel.can_accept_flit(now):
                channel.send_flit(now)
                sent += 1
        # Achieved rate must be close to the rated 1/ser, not floor-limited.
        rated = 100 / channel.serialization_cycles
        assert sent >= int(rated) - 1

    def test_send_while_locked_raises(self):
        channel = make_channel(initial_level=9)
        channel.request_level(8, now=0)  # down: immediate frequency lock
        assert not channel.can_accept_flit(1)
        with pytest.raises(LinkStateError):
            channel.send_flit(1)

    def test_send_while_staged_full_raises(self):
        channel = make_channel(initial_level=0)  # ser 8
        channel.send_flit(0)
        assert not channel.can_accept_flit(1)
        with pytest.raises(LinkStateError):
            channel.send_flit(1)

    def test_functional_during_voltage_ramp(self):
        channel = make_channel(initial_level=5)
        channel.request_level(6, now=0)
        assert channel.phase is ChannelPhase.VOLTAGE_RAMP
        assert channel.can_accept_flit(5)
        channel.send_flit(5)  # no exception


class TestEnergy:
    def test_steady_energy_integration(self):
        channel = make_channel(initial_level=9)
        channel.finalize(1000)
        # 1.6 W for 1 us.
        assert channel.link_energy_j == pytest.approx(1.6e-6)

    def test_average_power_steady(self):
        channel = make_channel(initial_level=0)
        power = channel.average_power_w(10_000)
        assert power == pytest.approx(8 * 23.6e-3)

    def test_ramp_billed_at_higher_level(self):
        channel = make_channel(initial_level=5)
        steady = channel.power_w
        channel.request_level(6, now=0)
        assert channel.power_w > steady

    def test_energy_monotone_in_time(self):
        channel = make_channel(initial_level=4)
        channel.finalize(100)
        first = channel.total_energy_j
        channel.finalize(200)
        assert channel.total_energy_j > first

    def test_finalize_before_checkpoint_is_a_noop(self):
        # Transition starts pre-bill energy past `now`, so finalize must
        # tolerate landing inside an already-integrated span (it used to
        # raise LinkStateError, crashing series collection under DVS).
        channel = make_channel()
        channel.finalize(100)
        before = channel.total_energy_j
        channel.finalize(50)
        assert channel.total_energy_j == before


@settings(max_examples=60, deadline=None)
@given(
    initial=st.integers(min_value=0, max_value=9),
    commands=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=12),
)
def test_random_command_sequences_keep_invariants(initial, commands):
    """Whatever levels are requested, the machine stays consistent."""
    channel = make_channel(initial_level=initial)
    now = 0
    for target in commands:
        channel.request_level(target, now)
        while channel.pending_event_cycle is not None:
            now = channel.pending_event_cycle
            channel.on_phase_end(now)
        # Invariants at every steady point:
        assert channel.is_steady
        assert 0 <= channel.level <= 9
        assert channel.voltage_level == channel.level
        assert channel.serialization_cycles == pytest.approx(
            1.0e9 / PAPER_TABLE.frequency(channel.level)
        )
        assert channel.transition_energy_j >= 0.0
        now += 1
    # Energy accounting remains self-consistent.
    channel.finalize(now + 10)
    assert channel.total_energy_j >= 0.0
