"""Pipelined virtual-channel router.

Models one router of the paper's network (Section 4.2): an input-queued VC
router in the style of the Alpha 21364's integrated router, with

* per-input-port VC buffers (128 flit slots split across 2 VCs by default),
* route computation and VC allocation for head flits,
* separable switch allocation with rotating priority per output port and at
  most one grant per input port per cycle (crossbar speedup 1),
* credit-based flow control with a configurable credit return delay,
* a fixed pipeline latency applied to flits in flight, standing in for the
  13-stage pipeline's stages between switch allocation and link traversal,
* immediate ejection at the destination (one flit per VC per cycle, no
  ejection-bandwidth artifacts, per the paper's latency definition).

The router communicates with the rest of the network only through the
kernel's event queue: launched flits become ARRIVAL events at the
downstream router, dequeued flits become CREDIT events at the upstream
router. The per-cycle :meth:`step` is the kernel's hot path and is written
to allocate nothing in steady state:

* every per-VC fact the scan needs (the buffer's deque, the request id,
  the occupancy tracker, the upstream credit target) is prebound onto the
  :class:`~repro.network.vc.InputVC` at construction time;
* per-output-port channel facts (DVS state machine, downstream
  coordinates, pipeline latency) are prebound into flat lists at
  :meth:`attach_channel` time;
* switch-allocation requests accumulate in persistent per-port lists that
  are cleared after arbitration instead of a per-cycle dict;
* event records are reusable 5-slot lists drawn from the kernel's shared
  free list (``event_pool``), and ejected flits return to a shared
  ``flit_pool`` for reuse at injection. Both pools are optional — without
  them (standalone routers, ``legacy_scan`` A/B runs) fresh objects are
  allocated, with bit-identical behavior.

Flow-control invariants that the old code enforced through
:class:`~repro.network.flowcontrol.CreditState` method calls on this path
are now guarded structurally (a switch-allocation request is only filed
with a positive credit in the same cycle that consumes it; a downstream VC
is claimed once at allocation and released once at tail launch); the
checked primitives remain for every other caller, and the opt-in network
sanitizer re-verifies the invariants end to end.

Two callback seams connect the router to the layers above it without the
router knowing they exist (see ``docs/architecture.md``):

* ``packet_sink`` — invoked with ``(packet, now)`` when a tail flit is
  ejected at its destination. The cycle kernel passes its instrumentation
  dispatcher here, which fans out to every ``on_packet_ejected`` observer.
* ``injected_sink`` — invoked (no arguments) when a packet's tail flit has
  fully entered the local input buffers, i.e. the packet left the source
  queue side of the router. The kernel maintains its O(1)
  pending-source-packet counter through this seam.
* ``age_hooks`` — per-input-port lists of ``hook(age_cycles)`` callables
  fired on every dequeue; utilization probes tap buffer-age distributions
  (paper Figure 5) through these.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from math import ceil
from typing import Callable

from ..errors import FlowControlError, SimulationError
from .arbiters import RoundRobinArbiter
from .channel import NetworkChannel
from .flowcontrol import CreditState, OccupancyTracker
from .packet import Flit, Packet
from .routing import RoutingFunction
from .topology import Topology
from .vc import UNROUTED, InputVC

#: Event kinds understood by the kernel's dispatch loop.
EVENT_ARRIVAL = 0
EVENT_CREDIT = 1
EVENT_PHASE = 2

ScheduleFn = Callable[[int, tuple], None]
#: The kernel-facing ejection seam: called with (packet, now) on tail eject.
PacketSink = Callable[[Packet, int], None]


def _noop() -> None:
    """Default ``injected_sink`` for routers built outside the kernel."""


class Router:
    """One virtual-channel router plus its attached output channels."""

    __slots__ = (
        "node",
        "local_port",
        "vcs_per_port",
        "routing",
        "in_vcs",
        "occupancy",
        "channels",
        "credit_states",
        "credit_targets",
        "connected_out",
        "sa_arbiters",
        "inj_queue",
        "inj_flits",
        "inj_pos",
        "inj_vc",
        "total_buffered",
        "packet_sink",
        "injected_sink",
        "age_hooks",
        "schedule",
        "credit_delay",
        "flits_ejected",
        "packets_ejected",
        "flits_launched",
        "event_pool",
        "flit_pool",
        "_fast_ring",
        "_fast_mask",
        "_fast_counters",
        "_vc_scan",
        "_occ_list",
        "_local_vcs",
        "_req_ports",
        "_req_lists",
        "_port_dvs",
        "_port_dst",
        "_port_pipeline",
        "_grants",
        "_route_memo",
        "_next_class",
        "_hot",
    )

    def __init__(
        self,
        node: int,
        topology: Topology,
        routing: RoutingFunction,
        *,
        vcs_per_port: int,
        buffers_per_vc: int,
        credit_delay: int,
        schedule: ScheduleFn,
        packet_sink: PacketSink,
        injected_sink: Callable[[], None] | None = None,
        event_pool: list | None = None,
        flit_pool: list | None = None,
    ):
        self.node = node
        self.local_port = topology.local_port
        self.vcs_per_port = vcs_per_port
        self.routing = routing
        self.schedule = schedule
        self.packet_sink = packet_sink
        self.injected_sink = injected_sink if injected_sink is not None else _noop
        self.credit_delay = credit_delay
        #: Shared free lists owned by the kernel; None = allocate fresh
        #: objects (standalone routers, legacy_scan A/B runs).
        self.event_pool = event_pool
        self.flit_pool = flit_pool
        # Direct view of the kernel's near-horizon calendar ring (see
        # bind_fast_queue); None routes every event through schedule().
        self._fast_ring: list[list] | None = None
        self._fast_mask = 0
        self._fast_counters: list[int] | None = None

        num_in_ports = topology.ports_per_router + 1  # network ports + local
        self.in_vcs = [
            [InputVC(buffers_per_vc) for _ in range(vcs_per_port)]
            for _ in range(num_in_ports)
        ]
        # Occupancy trackers only where an upstream DVS controller (or a
        # profiling probe) watches the port, i.e. network input ports.
        self.occupancy: list[OccupancyTracker | None] = [
            OccupancyTracker() if p < topology.ports_per_router else None
            for p in range(num_in_ports)
        ]
        # Upstream (router, out_port) feeding each network input port.
        self.credit_targets: list[tuple[int, int] | None] = []
        for p in range(num_in_ports):
            if p < topology.ports_per_router:
                upstream = topology.neighbor(node, p)
                if upstream is None:
                    self.credit_targets.append(None)
                else:
                    self.credit_targets.append((upstream, topology.opposite_port(p)))
            else:
                self.credit_targets.append(None)

        # Output side: filled in by the simulator via attach_channel().
        ports = topology.ports_per_router
        self.channels: list[NetworkChannel | None] = [None] * ports
        self.credit_states: list[CreditState | None] = [None] * ports
        self.connected_out: tuple[int, ...] = ()
        self.sa_arbiters: list[RoundRobinArbiter | None] = [None] * ports
        self._port_dvs: list = [None] * ports
        self._port_dst: list[tuple[int, int] | None] = [None] * ports
        self._port_pipeline: list[int] = [0] * ports

        self.inj_queue: deque[Packet] = deque()
        self.inj_flits: list[Flit] = []
        self.inj_pos = 0
        self.inj_vc = 0
        self.total_buffered = 0
        self.age_hooks: dict[int, list[Callable[[int], None]]] = {}
        self.flits_ejected = 0
        self.packets_ejected = 0
        self.flits_launched = 0

        # Prebind every per-VC fact the hot scan needs (see vc.py).
        self._vc_scan: list[InputVC] = []
        for p in range(num_in_ports):
            tracker = self.occupancy[p]
            target = self.credit_targets[p]
            for v in range(vcs_per_port):
                vcstate = self.in_vcs[p][v]
                vcstate.in_port = p
                vcstate.in_vc = v
                vcstate.rid = p * vcs_per_port + v
                vcstate.tracker = tracker
                vcstate.credit_target = target
                self._vc_scan.append(vcstate)
        self._local_vcs = self.in_vcs[self.local_port]
        #: Request ids of VCs whose deque is (or was recently) non-empty,
        #: ascending — the per-cycle scan walks only these instead of all
        #: ports x VCs. Enqueue sites insert eagerly (guarded by
        #: ``InputVC.in_occ``); the scan drops emptied entries lazily, so
        #: the order always equals the full scan's visit order.
        self._occ_list: list[int] = []
        # Persistent switch-allocation request structures: request lists
        # per output port plus the ports requested this cycle, cleared
        # after arbitration (no per-cycle dict).
        self._req_ports: list[int] = []
        self._req_lists: list[list[InputVC]] = [[] for _ in range(ports)]
        # Switch-allocation winners this cycle, traversed after all grant
        # decisions (cleared in step; the winner's out_port/out_vc live on
        # the InputVC itself).
        self._grants: list[InputVC] = []
        # Route-computation memo: (dst, vc_class, last_dim) -> the options
        # list _route_and_allocate would build. Valid because the routing
        # interface is a pure function of those inputs (plus this fixed
        # node), and the cached list is never mutated — VCs share it via
        # route_options and only ever drop their reference.
        self._route_memo: dict[tuple[int, int, int], list] = {}
        # Per-port next_vc_class table (filled by attach_channel); None
        # falls back to the routing method in the traversal loop.
        self._next_class: list[tuple[int, ...] | None] = [None] * ports
        # Everything step() needs that is fixed for the router's lifetime,
        # as one tuple: a single attribute load + unpack replaces ~13 per
        # step. Safe to capture here because every element is either a
        # constant or a container only ever mutated in place (attach_channel
        # fills the port lists; probes append into age_hooks). The
        # mode-dependent pieces (event pool, fast ring) stay attributes.
        self._hot = (
            self.local_port,
            self.credit_states,
            self._port_dvs,
            self._req_ports,
            self._req_lists,
            self._vc_scan,
            self._occ_list,
            self.sa_arbiters,
            self.schedule,
            self.credit_delay,
            self._port_dst,
            self._port_pipeline,
            self.age_hooks,
            self._grants,
        )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_channel(
        self, out_port: int, channel: NetworkChannel, buffers_per_vc: int
    ) -> None:
        """Connect *channel* at *out_port* (called during network build)."""
        if self.channels[out_port] is not None:
            raise SimulationError(f"output port {out_port} already attached")
        self.channels[out_port] = channel
        self.credit_states[out_port] = CreditState(self.vcs_per_port, buffers_per_vc)
        self.sa_arbiters[out_port] = RoundRobinArbiter(
            len(self.in_vcs) * self.vcs_per_port
        )
        spec = channel.spec
        self._port_dvs[out_port] = channel.dvs
        self._port_dst[out_port] = (spec.dst_node, spec.dst_port)
        self._port_pipeline[out_port] = channel.pipeline_latency
        # Tabulate the (pure) dateline-class transition for this port. The
        # table is closed — every output indexes back into it — for the
        # routing functions shipped here; a custom function escaping the
        # range disables the table and the traversal loop falls back to
        # calling next_vc_class directly.
        classes = max(2, self.vcs_per_port)
        row = tuple(
            self.routing.next_vc_class(self.node, out_port, c)
            for c in range(classes)
        )
        self._next_class[out_port] = row if max(row) < classes else None
        self.connected_out = tuple(
            p for p, ch in enumerate(self.channels) if ch is not None
        )

    def bind_fast_queue(
        self, ring: list[list] | None, mask: int, counters: list[int] | None
    ) -> None:
        """Hand the router a direct view of the kernel's calendar ring.

        Every flit launch schedules two events (the arrival downstream and
        the credit upstream) whose targets provably land inside the ring's
        near horizon, so the bound router appends records straight into
        ``ring[cycle & mask]`` and bumps the kernel's shared outstanding
        counters ``[transport, arrivals, ring_count]`` — bit-identical to
        calling ``schedule()``, minus 2 Python calls per launch. Pass
        ``ring=None`` to unbind (standalone routers, ``legacy_scan``).
        """
        self._fast_ring = ring
        self._fast_mask = mask
        self._fast_counters = counters

    @property
    def is_idle(self) -> bool:
        """True when :meth:`step` would be a no-op this cycle."""
        return not (self.total_buffered or self.inj_flits or self.inj_queue)

    @staticmethod
    def _event_record() -> list:
        """Pool-miss fallback: a fresh 5-slot event record."""
        return [0, None, None, None, None]

    # ------------------------------------------------------------------
    # Read-only views (diagnostics / network sanitizer)
    # ------------------------------------------------------------------

    def iter_vc_states(self):
        """Yield ``(in_port, vc, InputVC)`` for every input VC."""
        for vcstate in self._vc_scan:
            yield vcstate.in_port, vcstate.in_vc, vcstate

    def unsent_source_flits(self) -> int:
        """Flits offered at this node but not yet in the input buffers:
        whole packets queued at the source plus the unsent remainder of a
        partially injected packet."""
        queued = sum(packet.size_flits for packet in self.inj_queue)
        return queued + len(self.inj_flits) - self.inj_pos

    # ------------------------------------------------------------------
    # Event handlers (called by the simulator dispatch loop)
    # ------------------------------------------------------------------

    def on_arrival(self, port: int, vc: int, flit: Flit, now: int) -> None:  # repro-hot
        """A flit arrived from the upstream channel into input *port*.

        Reference implementation for the body the kernel inlines into its
        dispatch loop (see ``SimulationEngine._dispatch``) — keep in sync.
        """
        vcstate = self.in_vcs[port][vc]
        flits = vcstate.flits
        if len(flits) >= vcstate.capacity:
            raise FlowControlError(
                f"buffer overflow: enqueue into full VC buffer at cycle {now}"
            )
        flit.buffer_arrival_cycle = now
        flits.append(flit)
        if not vcstate.in_occ:
            vcstate.in_occ = True
            insort(self._occ_list, vcstate.rid)
        tracker = vcstate.tracker
        if tracker is not None:
            tracker.on_enqueue(now)
        self.total_buffered += 1

    def resync_occupancy(self) -> None:
        """Rebuild the occupied-VC list from the buffers.

        Needed after stepping outside the incremental bookkeeping — the
        kernel calls this when ``legacy_scan`` toggles, since the legacy
        pipeline fills buffers without maintaining the list.
        """
        occ = self._occ_list
        del occ[:]
        for vcstate in self._vc_scan:
            if vcstate.flits:
                vcstate.in_occ = True
                occ.append(vcstate.rid)
            else:
                vcstate.in_occ = False

    def on_credit(self, out_port: int, vc: int, is_tail: bool) -> None:  # repro-hot
        """A credit returned from the downstream router.

        Credits only replenish buffer slots; output-VC ownership is
        released when the tail flit is *sent* (see the switch-traversal
        stage of :meth:`step`), per
        classic VC flow control — packets may queue back-to-back in a
        downstream VC buffer.
        """
        state = self.credit_states[out_port]
        if state is None:
            raise SimulationError(f"credit for unattached port {out_port}")
        credits = state.credits
        if credits[vc] >= state.capacity_per_vc:
            raise FlowControlError(f"credit overflow on VC {vc}")
        credits[vc] += 1

    def offer_packet(self, packet: Packet) -> None:
        """Enqueue *packet* in this node's source queue."""
        self.inj_queue.append(packet)

    # ------------------------------------------------------------------
    # Per-cycle pipeline
    # ------------------------------------------------------------------

    def step(self, now: int):  # repro-hot
        """One router cycle: eject, route/allocate, switch-allocate, inject.

        Returns a truthy value when the router still has work after the
        cycle (buffered flits or pending injections), falsy when idle.
        """
        (
            local_port,
            credit_states,
            port_dvs,
            req_ports,
            req_lists,
            vc_scan,
            occ,
            arbiters,
            schedule,
            credit_delay,
            port_dst,
            port_pipeline,
            age_hooks,
            grants,
        ) = self._hot
        horizon = now + 1

        count = len(occ)
        if count == 1:
            # Lone-occupied-VC fast path — the overwhelmingly common case
            # at saturation (one packet flowing through the router). One
            # occupied VC can file at most one switch-allocation request,
            # which trivially wins its port's arbitration (the rotated-
            # priority minimum of a single requester is that requester),
            # so the request/grant machinery below collapses to a direct
            # eligibility check. Same decisions, same order.
            rid = occ[0]
            vcstate = vc_scan[rid]
            flits = vcstate.flits
            if not flits:
                vcstate.in_occ = False
                del occ[:]
            else:
                out_port = vcstate.out_port
                if out_port == UNROUTED:
                    head = flits[0]
                    if not head.is_head:
                        raise SimulationError(
                            f"body flit at head of unrouted VC at node {self.node}"
                        )
                    packet = head.packet
                    if packet.dst == self.node:
                        vcstate.out_port = local_port
                        vcstate.out_vc = 0
                        out_port = local_port
                    else:
                        out_port = self._route_and_allocate(vcstate, packet)
                if out_port == local_port:
                    self._eject(vcstate, now)
                    if not flits:
                        vcstate.in_occ = False
                        del occ[:]
                elif out_port != UNROUTED:
                    # Needs a credit and a willing wire (as the scan below).
                    if credit_states[out_port].credits[vcstate.out_vc] > 0:
                        dvs = port_dvs[out_port]
                        if not dvs.locked and dvs.busy_until < horizon:
                            # RoundRobinArbiter.advance_past, inlined.
                            arbiter = arbiters[out_port]
                            arbiter._next = (rid + 1) % arbiter.size
                            grants.append(vcstate)
                        elif dvs.sleeping:
                            dvs.sleep_demand = True
        elif count:
            # Scan only the occupied VCs, in ascending request-id order —
            # the exact order the old full scan visited non-empty VCs.
            # Entries whose deque emptied since (a launch last cycle) are
            # dropped in place; nothing is added during the loop (arrivals
            # dispatched before stepping, injection runs after).
            write = 0
            read = 0
            while read < count:
                rid = occ[read]
                read += 1
                vcstate = vc_scan[rid]
                flits = vcstate.flits
                if not flits:
                    vcstate.in_occ = False
                    continue
                out_port = vcstate.out_port
                if out_port == UNROUTED:
                    head = flits[0]
                    if not head.is_head:
                        raise SimulationError(
                            f"body flit at head of unrouted VC at node {self.node}"
                        )
                    packet = head.packet
                    if packet.dst == self.node:
                        vcstate.out_port = local_port
                        vcstate.out_vc = 0
                        out_port = local_port
                    else:
                        out_port = self._route_and_allocate(vcstate, packet)
                        if out_port == UNROUTED:
                            occ[write] = rid
                            write += 1
                            continue  # retry next cycle
                if out_port == local_port:
                    self._eject(vcstate, now)
                    if flits:
                        occ[write] = rid
                        write += 1
                    else:
                        vcstate.in_occ = False
                    continue
                occ[write] = rid
                write += 1
                # Switch-allocation request: needs a credit and a willing
                # wire.
                if credit_states[out_port].credits[vcstate.out_vc] <= 0:
                    continue
                dvs = port_dvs[out_port]
                if dvs.locked or dvs.busy_until >= horizon:
                    if dvs.sleeping:
                        dvs.sleep_demand = True
                    continue
                bucket = req_lists[out_port]
                if not bucket:
                    req_ports.append(out_port)
                bucket.append(vcstate)
            if write != count:
                del occ[write:]

            if req_ports:
                # Separable switch allocation, one rotating-priority grant
                # per requested output port, at most one grant per input
                # port. Ports arbitrate in first-request order == the old
                # dict's insertion order; within a port the smallest
                # rotated request id wins, exactly as RoundRobinArbiter
                # .grant would pick. Winners traverse the switch after all
                # grant decisions — deferral is invisible because a
                # traversal touches only its own VC and its own output
                # port, each granted at most once per cycle.
                granted_inputs = 0
                for out_port in req_ports:
                    bucket = req_lists[out_port]
                    arbiter = arbiters[out_port]
                    if len(bucket) == 1:
                        # Lone requester: the rotated-priority minimum is
                        # the requester itself whatever the head priority.
                        best = bucket[0]
                        if granted_inputs and (granted_inputs >> best.in_port) & 1:
                            best = None
                        del bucket[:]
                        if best is None:
                            continue
                    else:
                        head_priority = arbiter._next
                        size = arbiter.size
                        best = None
                        best_key = size
                        for vcstate in bucket:
                            if granted_inputs and (granted_inputs >> vcstate.in_port) & 1:
                                continue
                            key = (vcstate.rid - head_priority) % size
                            if key < best_key:
                                best_key = key
                                best = vcstate
                        del bucket[:]
                        if best is None:
                            continue
                    # RoundRobinArbiter.advance_past, inlined: the winner
                    # becomes the lowest-priority requester next round.
                    arbiter._next = (best.rid + 1) % arbiter.size
                    granted_inputs |= 1 << best.in_port
                    grants.append(best)
                del req_ports[:]

        if grants:
            pool = self.event_pool
            ring = self._fast_ring
            mask = self._fast_mask
            counters = self._fast_counters
            for best in grants:
                out_port = best.out_port
                # -- switch traversal (keep in sync with step_legacy) --
                flit = best.flits.popleft()
                self.total_buffered -= 1
                tracker = best.tracker
                if tracker is not None:
                    # OccupancyTracker.on_dequeue, inlined. Time cannot run
                    # backwards here (now advances monotonically) and the
                    # dequeue follows an enqueue, so the checked raises of
                    # the reference method are unreachable.
                    last = tracker._last_cycle
                    if now != last:
                        tracker._integral += tracker.occupied * (now - last)
                        tracker._last_cycle = now
                    tracker.occupied -= 1
                if age_hooks:
                    hooks = age_hooks.get(best.in_port)
                    if hooks:
                        age = now - flit.buffer_arrival_cycle
                        for hook in hooks:
                            hook(age)
                is_tail = flit.is_tail
                target = best.credit_target
                if target is not None:
                    record = pool.pop() if pool else self._event_record()
                    record[0] = EVENT_CREDIT
                    record[1] = target[0]
                    record[2] = target[1]
                    record[3] = best.in_vc
                    record[4] = is_tail
                    if ring is not None:
                        # credit_delay <= near horizon <= mask by the
                        # kernel's ring sizing, so the slot is exact.
                        ring[(now + credit_delay) & mask].append(record)
                        counters[0] += 1
                        counters[2] += 1
                    else:
                        schedule(now + credit_delay, record)
                out_vc = best.out_vc
                credit_state = credit_states[out_port]
                # Credit underflow is structurally impossible: the request
                # was filed with credits[out_vc] > 0 this same cycle, and
                # only this grant consumes that VC's credit.
                credit_state.credits[out_vc] -= 1
                dst = port_dst[out_port]
                # DVSChannel.send_flit, inlined. Its locked/busy raises are
                # unreachable here: the request was only filed after the
                # scan's ``locked or busy_until >= horizon`` check, the lock
                # cannot change mid-step, and this is the port's only grant
                # this cycle.
                dvs = port_dvs[out_port]
                busy = dvs.busy_until
                start = busy if busy > now else now
                occupancy = dvs._serialization_cycles
                busy = start + occupancy
                dvs.busy_until = busy
                dvs.busy_cycles_total += occupancy
                dvs.busy_window += occupancy
                dvs.flits_sent += 1
                arrival = ceil(busy + port_pipeline[out_port])
                record = pool.pop() if pool else self._event_record()
                record[0] = EVENT_ARRIVAL
                record[1] = dst[0]
                record[2] = dst[1]
                record[3] = out_vc
                record[4] = flit
                if ring is not None and arrival - now <= mask:
                    ring[arrival & mask].append(record)
                    counters[0] += 1
                    counters[1] += 1
                    counters[2] += 1
                else:
                    schedule(arrival, record)
                self.flits_launched += 1
                if flit.is_head:
                    packet = flit.packet
                    dim = out_port >> 1
                    vc_class = packet.vc_class if packet.last_dim == dim else 0
                    # Dateline-class transition from the attach-time table
                    # (see attach_channel); None falls back to the method.
                    row = self._next_class[out_port]
                    if row is not None:
                        packet.vc_class = row[vc_class]
                    else:
                        packet.vc_class = self.routing.next_vc_class(
                            self.node, out_port, vc_class
                        )
                    packet.last_dim = dim
                if is_tail:
                    # Claimed once at VC allocation, released exactly once
                    # here; InputVC.reset_route, inlined.
                    credit_state.vc_free[out_vc] = True
                    best.out_port = UNROUTED
                    best.out_vc = UNROUTED
                    best.route_options = None
            del grants[:]

        # Injection stage — Router._inject's former body, inlined at its
        # only call site: move up to one flit from the source queue into
        # the local port.
        inj_flits = self.inj_flits
        if inj_flits or self.inj_queue:
            if not inj_flits:
                packet = self.inj_queue[0]
                best_vc = -1
                best_free = 0
                for v, vcstate in enumerate(self._local_vcs):
                    free = vcstate.capacity - len(vcstate.flits)
                    if free > best_free:
                        best_vc = v
                        best_free = free
                if best_vc < 0:
                    # No room anywhere: still not idle (inj_queue waits).
                    return self.total_buffered or self.inj_queue
                self.inj_queue.popleft()
                # Materialize the packet's flits (head first, tail last)
                # into the persistent staging list, reusing pooled flits
                # when available — field-for-field identical to
                # Packet.make_flits.
                pool = self.flit_pool
                last = packet.size_flits - 1
                for index in range(last + 1):
                    if pool:
                        flit = pool.pop()
                        flit.packet = packet
                        flit.index = index
                        flit.is_head = index == 0
                        flit.is_tail = index == last
                        flit.buffer_arrival_cycle = 0
                    else:
                        flit = Flit(packet, index, index == 0, index == last)
                    inj_flits.append(flit)
                self.inj_pos = 0
                self.inj_vc = best_vc
            vcstate = self._local_vcs[self.inj_vc]
            flits = vcstate.flits
            if len(flits) < vcstate.capacity:
                flit = inj_flits[self.inj_pos]
                flit.buffer_arrival_cycle = now
                flits.append(flit)
                if not vcstate.in_occ:
                    vcstate.in_occ = True
                    insort(occ, vcstate.rid)
                self.total_buffered += 1
                self.inj_pos += 1
                if self.inj_pos >= len(inj_flits):
                    del inj_flits[:]
                    self.inj_pos = 0
                    self.injected_sink()
        # Not-idle indicator (the inverse of is_idle), so the kernel's
        # stepping loop needs no attribute probes of its own.
        return self.total_buffered or self.inj_flits or self.inj_queue

    # ------------------------------------------------------------------
    # Stage helpers
    # ------------------------------------------------------------------

    def _route_and_allocate(self, vcstate: InputVC, packet: Packet) -> int:
        """Route computation + VC allocation for the packet at *vcstate*'s head.

        Route computation runs once per packet per hop, memoized across
        packets by (dst, vc_class, last_dim) — the routing interface is a
        pure function of those inputs — and cached on the VC; VC allocation
        retries each cycle against the cached options. Returns the chosen
        output port, or UNROUTED if every candidate port's permitted
        downstream VCs are currently held.
        """
        options = vcstate.route_options
        if options is None:
            memo = self._route_memo
            key = (packet.dst, packet.vc_class, packet.last_dim)
            options = memo.get(key)
            if options is None:
                routing = self.routing
                node = self.node
                options = []
                for out_port in routing.candidates(node, packet.dst):
                    if self.credit_states[out_port] is None:
                        raise SimulationError(
                            f"route to unattached port {out_port} at node {node}"
                        )
                    vc_class = (
                        packet.vc_class if packet.last_dim == out_port >> 1 else 0
                    )
                    options.append(
                        (
                            out_port,
                            routing.allowed_vcs(node, out_port, packet.dst, vc_class),
                        )
                    )
                memo[key] = options
            vcstate.route_options = options
        for out_port, allowed in options:
            credit_state = self.credit_states[out_port]
            free = credit_state.vc_free
            for downstream_vc in allowed:
                if free[downstream_vc]:
                    # CreditState.allocate_vc, inlined: the guard just
                    # above makes its in-use check unreachable.
                    free[downstream_vc] = False
                    vcstate.out_port = out_port
                    vcstate.out_vc = downstream_vc
                    return out_port
        return UNROUTED

    def _eject(self, vcstate: InputVC, now: int) -> None:  # repro-hot
        """Immediate ejection: one flit per VC per cycle at the destination."""
        flit = vcstate.flits.popleft()
        self.total_buffered -= 1
        tracker = vcstate.tracker
        if tracker is not None:
            # OccupancyTracker.on_dequeue, inlined (see the traversal loop
            # in step for why the reference method's raises are
            # unreachable here).
            last = tracker._last_cycle
            if now != last:
                tracker._integral += tracker.occupied * (now - last)
                tracker._last_cycle = now
            tracker.occupied -= 1
        if self.age_hooks:
            hooks = self.age_hooks.get(vcstate.in_port)
            if hooks:
                age = now - flit.buffer_arrival_cycle
                for hook in hooks:
                    hook(age)
        is_tail = flit.is_tail
        target = vcstate.credit_target
        if target is not None:
            pool = self.event_pool
            record = pool.pop() if pool else self._event_record()
            record[0] = EVENT_CREDIT
            record[1] = target[0]
            record[2] = target[1]
            record[3] = vcstate.in_vc
            record[4] = is_tail
            ring = self._fast_ring
            if ring is not None:
                ring[(now + self.credit_delay) & self._fast_mask].append(record)
                counters = self._fast_counters
                counters[0] += 1
                counters[2] += 1
            else:
                self.schedule(now + self.credit_delay, record)
        self.flits_ejected += 1
        flit_pool = self.flit_pool
        if is_tail:
            vcstate.reset_route()
            packet = flit.packet
            packet.ejected_cycle = now
            self.packets_ejected += 1
            if flit_pool is not None:
                flit_pool.append(flit)
            self.packet_sink(packet, now)
        elif flit_pool is not None:
            # An ejected flit is referenced by nothing: its arrival event
            # already dispatched and observers only see the packet.
            flit_pool.append(flit)

    # ------------------------------------------------------------------
    # Legacy (PR-3) per-cycle pipeline — the in-process A/B baseline
    # ------------------------------------------------------------------
    #
    # step_legacy and its helpers reproduce the pre-calendar-queue router
    # verbatim: per-cycle request dicts, checked CreditState/VCBuffer
    # method calls, tuple event records, fresh Flit lists from
    # Packet.make_flits. The kernel runs them when ``legacy_scan`` is set,
    # so ``benchmarks/bench_step_throughput.py`` measures the rewrite
    # against the real PR-3 cost model in the same process, and
    # ``tests/test_fast_forward.py`` golden-compares the two pipelines as
    # a differential oracle. Do not optimize this code.

    def step_legacy(self, now: int) -> None:
        """One router cycle, exactly as the PR-3 kernel executed it."""
        vcs_per_port = self.vcs_per_port
        requests: dict[int, list[int]] | None = None

        for vcstate in self._vc_scan:
            buf = vcstate.buffer.flits
            if not buf:
                continue
            p = vcstate.in_port
            v = vcstate.in_vc
            out_port = vcstate.out_port
            if out_port == UNROUTED:
                head = buf[0]
                if not head.is_head:
                    raise SimulationError(
                        f"body flit at head of unrouted VC at node {self.node}"
                    )
                packet = head.packet
                if packet.dst == self.node:
                    vcstate.out_port = self.local_port
                    vcstate.out_vc = 0
                    out_port = self.local_port
                else:
                    out_port = self._route_and_allocate(vcstate, packet)
                    if out_port == UNROUTED:
                        continue  # retry next cycle
            if out_port == self.local_port:
                self._eject_legacy(p, v, vcstate, now)
                continue
            # Switch-allocation request: needs a credit and a willing wire.
            credit_state = self.credit_states[out_port]
            if credit_state.credits[vcstate.out_vc] <= 0:
                continue
            dvs = self.channels[out_port].dvs
            if dvs.locked or dvs.busy_until >= now + 1:
                if dvs.sleeping:
                    dvs.sleep_demand = True
                continue
            if requests is None:
                requests = {}
            rid = p * vcs_per_port + v
            bucket = requests.get(out_port)
            if bucket is None:
                requests[out_port] = [rid]
            else:
                bucket.append(rid)

        if requests:
            granted_inputs = 0
            for out_port, rids in requests.items():
                winner = self._arbitrate(out_port, rids, granted_inputs, vcs_per_port)
                if winner < 0:
                    continue
                granted_inputs |= 1 << (winner // vcs_per_port)
                self._launch_legacy(
                    out_port, winner // vcs_per_port, winner % vcs_per_port, now
                )

        if self.inj_flits or self.inj_queue:
            self._inject_legacy(now)

    def _arbitrate(
        self, out_port: int, rids: list[int], granted_inputs: int, vcs_per_port: int
    ) -> int:
        """Rotating-priority grant among *rids*, skipping granted inputs."""
        arbiter = self.sa_arbiters[out_port]
        head = arbiter.priority_head
        size = arbiter.size
        best = -1
        best_key = size
        for rid in rids:
            if granted_inputs and (granted_inputs >> (rid // vcs_per_port)) & 1:
                continue
            key = (rid - head) % size
            if key < best_key:
                best_key = key
                best = rid
        if best >= 0:
            arbiter.advance_past(best)
        return best

    def _launch_legacy(self, out_port: int, p: int, v: int, now: int) -> None:
        """Winner of switch allocation: move the flit onto the channel."""
        vcstate = self.in_vcs[p][v]
        flit = vcstate.buffer.dequeue()
        self.total_buffered -= 1
        tracker = self.occupancy[p]
        if tracker is not None:
            tracker.on_dequeue(now)
        if self.age_hooks:
            hooks = self.age_hooks.get(p)
            if hooks:
                age = now - flit.buffer_arrival_cycle
                for hook in hooks:
                    hook(age)
        target = self.credit_targets[p]
        if target is not None:
            self.schedule(
                now + self.credit_delay,
                (EVENT_CREDIT, target[0], target[1], v, flit.is_tail),
            )
        credit_state = self.credit_states[out_port]
        credit_state.consume(vcstate.out_vc)
        channel = self.channels[out_port]
        arrival = channel.send(now)
        spec = channel.spec
        self.schedule(
            arrival, (EVENT_ARRIVAL, spec.dst_node, spec.dst_port, vcstate.out_vc, flit)
        )
        self.flits_launched += 1
        if flit.is_head:
            packet = flit.packet
            dim = out_port >> 1
            vc_class = packet.vc_class if packet.last_dim == dim else 0
            packet.vc_class = self.routing.next_vc_class(self.node, out_port, vc_class)
            packet.last_dim = dim
        if flit.is_tail:
            credit_state.release_vc(vcstate.out_vc)
            vcstate.reset_route()

    def _eject_legacy(self, p: int, v: int, vcstate: InputVC, now: int) -> None:
        """Immediate ejection: one flit per VC per cycle at the destination."""
        flit = vcstate.buffer.dequeue()
        self.total_buffered -= 1
        tracker = self.occupancy[p]
        if tracker is not None:
            tracker.on_dequeue(now)
        if self.age_hooks:
            hooks = self.age_hooks.get(p)
            if hooks:
                age = now - flit.buffer_arrival_cycle
                for hook in hooks:
                    hook(age)
        target = self.credit_targets[p]
        if target is not None:
            self.schedule(
                now + self.credit_delay,
                (EVENT_CREDIT, target[0], target[1], v, flit.is_tail),
            )
        self.flits_ejected += 1
        if flit.is_tail:
            vcstate.reset_route()
            packet = flit.packet
            packet.ejected_cycle = now
            self.packets_ejected += 1
            self.packet_sink(packet, now)

    def _inject_legacy(self, now: int) -> None:
        """Move up to one flit from the source queue into the local port."""
        if not self.inj_flits:
            packet = self.inj_queue[0]
            best = -1
            best_free = 0
            for v, vcstate in enumerate(self.in_vcs[self.local_port]):
                free = vcstate.buffer.free_slots
                if free > best_free:
                    best = v
                    best_free = free
            if best < 0:
                return
            self.inj_queue.popleft()
            self.inj_flits = packet.make_flits()
            self.inj_pos = 0
            self.inj_vc = best
        vcstate = self.in_vcs[self.local_port][self.inj_vc]
        if not vcstate.buffer.is_full:
            vcstate.buffer.enqueue(self.inj_flits[self.inj_pos], now)
            self.total_buffered += 1
            self.inj_pos += 1
            if self.inj_pos >= len(self.inj_flits):
                self.inj_flits = []
                self.inj_pos = 0
                self.injected_sink()
