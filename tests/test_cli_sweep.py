"""CLI sweep and figure commands at smoke scale (slowish, end-to-end)."""

import pytest

from repro.cli import main
from repro.harness import cache as cache_mod


@pytest.fixture
def cli_cache(tmp_path, monkeypatch):
    """A fresh on-disk cache for CLI resume tests."""
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    cache_mod.reset_cache()
    yield tmp_path
    cache_mod.reset_cache()


class TestSweepCommand:
    def test_sweep_smoke(self, capsys):
        code = main(["sweep", "--rates", "0.2,0.6", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lat_none" in out and "lat_history" in out
        assert "power savings" in out

    def test_sweep_bad_rates(self, capsys):
        assert main(["sweep", "--rates", "fast", "--scale", "smoke"]) == 2
        assert "bad --rates" in capsys.readouterr().err

    def test_sweep_empty_rates(self, capsys):
        assert main(["sweep", "--rates", "", "--scale", "smoke"]) == 2
        assert "at least one rate" in capsys.readouterr().err


class TestResilienceFlags:
    def test_resume_without_cache_errors(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        code = main(["sweep", "--rates", "0.2", "--scale", "smoke", "--resume"])
        assert code == 2
        assert "resume requires" in capsys.readouterr().err

    def test_no_cache_conflicts_with_resume(self, cli_cache, capsys):
        code = main(
            ["sweep", "--rates", "0.2", "--scale", "smoke",
             "--no-cache", "--resume"]
        )
        assert code == 2
        assert "resume requires" in capsys.readouterr().err

    def test_resume_round_trip_replays_checkpoints(self, cli_cache, capsys):
        """Satellite acceptance: --resume on a completed campaign replays
        every point from the cache and recomputes nothing."""
        assert main(["sweep", "--rates", "0.2,0.4", "--scale", "smoke"]) == 0
        first = capsys.readouterr().out
        code = main(
            ["sweep", "--rates", "0.2,0.4", "--scale", "smoke", "--resume"]
        )
        assert code == 0
        captured = capsys.readouterr()
        # 2 policies x 2 rates, all checkpointed by the first run.
        assert "resume: 4/4 points already checkpointed" in captured.err
        assert "recomputing 0" in captured.err
        # Bit-identical table either way (only the cache-stats line may
        # differ: the resumed run reports hits instead of misses).
        def table(text):
            return [
                line for line in text.splitlines()
                if not line.startswith("sweep cache:")
            ]

        assert table(captured.out) == table(first)

    def test_retry_and_timeout_flags_accepted(self, capsys):
        code = main(
            ["sweep", "--rates", "0.2", "--scale", "smoke", "--no-cache",
             "--retries", "1", "--timeout", "300", "--keep-going"]
        )
        assert code == 0
        assert "lat_none" in capsys.readouterr().out

    def test_invalid_retries_flag_is_a_clean_error(self, capsys):
        code = main(
            ["sweep", "--rates", "0.2", "--scale", "smoke", "--retries", "0"]
        )
        assert code == 2
        assert "max_attempts" in capsys.readouterr().err


class TestFigureCommand:
    def test_fig8_smoke(self, capsys):
        assert main(["figure", "fig8", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out

    def test_ablation_weight_smoke(self, capsys):
        assert main(["figure", "ablation-weight", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "EWMA" in out or "Ablation" in out

    def test_figure_resume_reports_replayed_points(self, cli_cache, capsys):
        assert main(["figure", "fig8", "--scale", "smoke"]) == 0
        capsys.readouterr()
        assert main(["figure", "fig8", "--scale", "smoke", "--resume"]) == 0
        err = capsys.readouterr().err
        assert "resume:" in err
        assert " 0 recomputed" in err

    def test_figure_resume_without_cache_errors(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        code = main(["figure", "fig8", "--scale", "smoke", "--resume"])
        assert code == 2
        assert "resume requires" in capsys.readouterr().err
