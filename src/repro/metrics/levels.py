"""Per-channel DVS level occupancy statistics.

Answers "where do the power savings come from?": how much time each
channel spent at each voltage/frequency level, aggregated across the
network. The collector integrates level residency event-wise (it samples
on change, not per cycle) by reading each channel's current level at
window boundaries — exact enough at the history-window granularity the
policy operates on.
"""

from __future__ import annotations

from ..core.dvs_link import DVSChannel
from ..errors import ConfigError


class LevelOccupancyCollector:
    """Windowed sampling of channel levels into a residency matrix."""

    def __init__(self, channels: list[DVSChannel]):
        if not channels:
            raise ConfigError("need at least one channel")
        self.channels = channels
        self.level_count = len(channels[0].table)
        #: samples[level] = channel-windows observed at that level.
        self.samples = [0] * self.level_count
        self.windows = 0

    def sample(self) -> None:
        """Record the current level of every channel."""
        for channel in self.channels:
            self.samples[channel.level] += 1
        self.windows += 1

    def residency(self) -> list[float]:
        """Fraction of channel-windows spent at each level (sums to 1)."""
        total = sum(self.samples)
        if total == 0:
            return [0.0] * self.level_count
        return [count / total for count in self.samples]

    def mean_level(self) -> float:
        """Residency-weighted mean level."""
        total = sum(self.samples)
        if total == 0:
            raise ConfigError("no samples collected")
        return sum(level * count for level, count in enumerate(self.samples)) / total

    def describe(self) -> str:
        """Text histogram of level residency."""
        fractions = self.residency()
        peak = max(fractions) if any(fractions) else 1.0
        lines = ["level residency (fraction of channel-windows)"]
        for level, fraction in enumerate(fractions):
            bar = "#" * int(round(30 * fraction / peak)) if peak else ""
            lines.append(f"  L{level}: {fraction:6.3f}  {bar}")
        return "\n".join(lines)


def channel_level_map(simulator) -> dict[tuple[int, int], int]:
    """Snapshot of (src_node, src_port) -> current level for a simulator."""
    return {
        (ch.spec.src_node, ch.spec.src_port): ch.dvs.level
        for ch in simulator.channels
    }
