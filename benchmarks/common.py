"""Shared plumbing for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures at the scale
selected by ``REPRO_SCALE`` (smoke / default / paper; see
:mod:`repro.harness.scales`), times it once via pytest-benchmark's pedantic
mode (these are experiments, not microbenchmarks — re-running them for
statistics would multiply the suite's cost for no insight), prints the
rendered rows, and archives them under ``benchmarks/results/``.

Expensive sweeps that feed several figures (the Figure 10 comparison feeds
the headline summary; the Table 2 threshold sweeps feed Figures 13 and 14)
are computed once per process and cached here.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from functools import lru_cache
from pathlib import Path

from repro.harness.scales import ExperimentScale, get_scale
from repro.harness.serialization import write_json

RESULTS_DIR = Path(__file__).parent / "results"


def add_profile_argument(parser) -> None:
    """Attach the suite's shared ``--profile`` flag to an argparse parser."""
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 20 functions by "
             "cumulative time when the benchmark finishes",
    )


@contextmanager
def maybe_profile(enabled: bool | None = None, *, limit: int = 20):
    """Profile the enclosed block when *enabled* (or ``REPRO_PROFILE=1``).

    Standalone scripts pass their ``--profile`` flag; the pytest-benchmark
    figure benchmarks can leave *enabled* as None and opt in through the
    ``REPRO_PROFILE`` environment variable instead. Prints cProfile's top
    *limit* entries sorted by cumulative time.
    """
    if enabled is None:
        enabled = os.environ.get("REPRO_PROFILE", "") not in ("", "0")
    if not enabled:
        yield
        return
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        print()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(limit)


def scale() -> ExperimentScale:
    """The suite's active scale preset (env-selectable)."""
    return get_scale()


def emit(name: str, figure) -> None:
    """Print a figure's table and archive it (text + JSON rows)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = figure.render()
    print()
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    write_json(
        {"figure": figure.figure, "columns": figure.columns, "rows": figure.rows},
        RESULTS_DIR / f"{name}.json",
    )


def run_once(benchmark, func):
    """Time *func* exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


@lru_cache(maxsize=4)
def cached_fig10(scale_name: str):
    from repro.harness.experiments import fig10_dvs_vs_nodvs

    return fig10_dvs_vs_nodvs(get_scale(scale_name))


@lru_cache(maxsize=4)
def cached_threshold_sweeps(scale_name: str, rates: tuple):
    from repro.harness.experiments import threshold_sweeps

    return threshold_sweeps(get_scale(scale_name), rates=rates)


@lru_cache(maxsize=4)
def cached_profiles(scale_name: str, loads: tuple):
    from repro.harness.experiments import utilization_profiles

    return utilization_profiles(get_scale(scale_name), loads=loads)
