"""Content-addressed on-disk memoization of sweep simulation results.

A simulation is fully described by its (frozen, picklable)
:class:`~repro.config.SimulationConfig` — the workload seed included — so
its :class:`~repro.network.simulator.SimulationResult` can be cached on
disk and reused across processes and sessions. Every execution backend
(:mod:`repro.harness.backends`) consults the cache transparently: a sweep
re-run only simulates points it has never seen.

Key construction
    ``sha256(code_epoch + "\\n" + config.fingerprint())`` where the
    fingerprint is the config's canonical JSON (sorted keys, fixed
    separators — see :func:`~repro.harness.serialization.canonical_json`)
    and :data:`CODE_EPOCH` names the current simulated semantics. Bump
    the epoch whenever a change alters simulation output for the same
    config; old entries are simply never looked up again.

Safety
    Entries verify their stored fingerprint on load (hash collisions and
    stale schema both degrade to a miss), and writes go through a temp
    file + ``os.replace`` so concurrent sweep processes never observe a
    torn entry. Store failures are swallowed: a read-only cache directory
    slows a sweep down, it never breaks one. A corrupt or unreadable
    entry is *quarantined* — renamed to ``<key>.corrupt`` and counted in
    :attr:`SweepCache.corrupted` — so it is recomputed exactly once
    instead of being silently re-parsed (and re-missed) forever.

Checkpointing
    :meth:`SweepCache.map_cached` consumes the backend's results as a
    stream and stores each one the moment it is produced, so an interrupt
    or crash at point 99/100 keeps the 99 computed results. The process
    pool backend goes further and stores each chunk as it completes (out
    of completion order); either way, re-running an interrupted campaign
    — e.g. via the CLI's ``--resume`` — replays finished points from disk
    and recomputes only the missing ones.

Shared result store
    Point ``REPRO_RESULT_STORE`` at a ``repro cache-server`` URL
    (:mod:`repro.harness.distributed.store`) and the local directory
    becomes a *read-through* layer over a shared, content-addressed
    result service: a local miss consults the store (GET by sha256 key),
    a validated remote entry is written through to the local directory,
    and every fresh local store is pushed (PUT) so any previously
    computed ``(epoch, config)`` point is a hit for every host. Remote
    traffic is strictly best-effort — an unreachable or corrupt store
    degrades to local-only behavior and is counted, never raised.

Escape hatches
    ``REPRO_CACHE=off`` (also ``0``/``no``/``none``/``disabled``)
    disables caching; any other non-empty value is used as the cache
    directory; unset picks ``$XDG_CACHE_HOME/repro/sweeps`` (falling back
    to ``~/.cache``). The CLI's ``--no-cache`` flag and tests use
    :func:`set_cache` to override programmatically.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import urllib.error
import urllib.request
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

from ..config import SimulationConfig
from ..errors import ExperimentError
from .chaos import inject_store_fault

#: Environment variable controlling the cache location (or disabling it).
CACHE_ENV = "REPRO_CACHE"

#: Environment variable naming a shared result store URL (empty = none).
RESULT_STORE_ENV = "REPRO_RESULT_STORE"

#: Name of the current simulated semantics. Bump on any change that
#: alters simulation output for an unchanged config.
CODE_EPOCH = "pr9-integer-femtojoule-energy"

_DISABLE_VALUES = frozenset({"0", "off", "no", "none", "disabled", "false"})


class RemoteResultStore:
    """Best-effort HTTP client for a shared result store.

    Talks the tiny GET/PUT-by-key protocol served by ``repro
    cache-server`` (:mod:`repro.harness.distributed.store`). Every
    failure mode — connection refused, timeout, non-404 errors, torn
    payloads — degrades to "not available" and bumps :attr:`errors`;
    the shared store may speed a sweep up, it must never break one.
    """

    def __init__(self, base_url: str, *, timeout_s: float = 5.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.errors = 0

    def _url(self, key: str) -> str:
        return f"{self.base_url}/entry/{key}"

    def get(self, key: str) -> Optional[bytes]:
        """The raw entry payload for *key*, or ``None`` when unavailable."""
        try:
            with urllib.request.urlopen(
                self._url(key), timeout=self.timeout_s
            ) as response:
                return bytes(response.read())
        except urllib.error.HTTPError as exc:
            if exc.code != 404:
                self.errors += 1
            return None
        except (OSError, ValueError):
            self.errors += 1
            return None

    def put(self, key: str, payload: bytes) -> bool:
        """Push an entry payload; ``True`` when the store accepted it."""
        request = urllib.request.Request(
            self._url(key), data=payload, method="PUT"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s):
                return True
        except (OSError, ValueError):
            self.errors += 1
            return False

    def __repr__(self) -> str:
        return f"RemoteResultStore(base_url={self.base_url!r})"


class SweepCache:
    """One on-disk result store plus in-process hit/miss counters.

    With *remote* set, the directory is a read-through layer over a
    shared result store: local misses consult the store, validated
    remote entries are written through locally, fresh results are pushed
    back. See :class:`RemoteResultStore`.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        epoch: str = CODE_EPOCH,
        remote: Optional[RemoteResultStore] = None,
    ) -> None:
        self.root = Path(root).expanduser()
        self.epoch = epoch
        self.remote = remote
        self.hits = 0
        self.misses = 0
        self.corrupted = 0
        self.remote_hits = 0
        self.remote_stores = 0

    # -- keys ------------------------------------------------------------

    def _key(self, fingerprint: str) -> str:
        digest = hashlib.sha256()
        digest.update(self.epoch.encode("utf-8"))
        digest.update(b"\n")
        digest.update(fingerprint.encode("utf-8"))
        return digest.hexdigest()

    def _path(self, fingerprint: str) -> Path:
        key = self._key(fingerprint)
        return self.root / self.epoch / key[:2] / f"{key}.pkl"

    def entry_path(self, config: SimulationConfig) -> Path:
        """Where *config*'s result lives (whether or not it exists yet)."""
        return self._path(config.fingerprint())

    # -- single-entry operations ----------------------------------------

    def contains(self, config: SimulationConfig) -> bool:
        """Whether an entry file exists for *config*.

        A cheap existence probe (no integrity check, no counter bumps)
        for resume previews; the authoritative answer is :meth:`load`.
        """
        return self.entry_path(config).is_file()

    def load(self, config: SimulationConfig) -> object | None:
        """The cached result for *config*, or ``None`` on any miss.

        An entry that exists but cannot be read back (torn write, disk
        corruption, stale pickle schema, fingerprint mismatch) is
        quarantined via :meth:`_quarantine` rather than silently skipped,
        so the recompute-and-store that follows repairs the cache.
        """
        fingerprint = config.fingerprint()
        path = self._path(fingerprint)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            return self._load_remote(fingerprint, path)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            self._quarantine(path)
            return None
        if not isinstance(entry, dict) or entry.get("fingerprint") != fingerprint:
            self._quarantine(path)
            return None
        return entry.get("result")

    def _load_remote(self, fingerprint: str, path: Path) -> object | None:
        """Consult the shared result store for a local miss.

        A payload that unpickles to a valid entry for *fingerprint* is
        written through to the local directory (atomically — another
        process racing on the same key sees either nothing or the whole
        entry) and served; a torn or mismatched payload is *ignored*,
        never written locally, and counted as a remote error — a corrupt
        shared store degrades to recompute, exactly like a quarantined
        local entry.
        """
        if self.remote is None:
            return None
        payload = self.remote.get(self._key(fingerprint))
        if payload is None:
            return None
        try:
            entry = pickle.loads(payload)
        except (pickle.PickleError, EOFError, AttributeError, ImportError,
                IndexError, ValueError, TypeError, MemoryError):
            self.remote.errors += 1
            return None
        if not isinstance(entry, dict) or entry.get("fingerprint") != fingerprint:
            self.remote.errors += 1
            return None
        self.remote_hits += 1
        try:
            self._write_atomic(path, payload)
        except OSError:
            pass
        return entry.get("result")

    def _quarantine(self, path: Path) -> None:
        """Move a bad entry aside as ``<key>.corrupt`` and count it."""
        self.corrupted += 1
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            pass

    @staticmethod
    def _write_atomic(path: Path, payload: bytes) -> None:
        """Write *payload* to *path* via temp file + atomic ``os.replace``.

        Two processes storing the same key concurrently each write their
        own temp file and race on the final rename; a reader observes
        either no entry or one complete entry, never interleaved bytes.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def store(self, config: SimulationConfig, result: object) -> None:
        """Persist *result* for *config*; best-effort (never raises OSError).

        The entry also goes to the shared result store (when configured)
        so other hosts — and other campaigns — see the point as computed.
        """
        fingerprint = config.fingerprint()
        payload = pickle.dumps(
            {
                "epoch": self.epoch,
                "fingerprint": fingerprint,
                "result": result,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        path = self._path(fingerprint)
        try:
            self._write_atomic(path, payload)
            inject_store_fault(fingerprint, path)
        except OSError:
            pass
        if self.remote is not None and self.remote.put(
            self._key(fingerprint), payload
        ):
            self.remote_stores += 1

    # -- batch operation (the backend entry point) -----------------------

    def partition(
        self, configs: Sequence[SimulationConfig]
    ) -> tuple[list, list[int], list[SimulationConfig]]:
        """Split *configs* into cached results and misses.

        Returns ``(results, miss_indices, miss_configs)`` where *results*
        has the cached value at every hit index and ``None`` holes at the
        miss indices; hit/miss counters are updated. Backends fill the
        holes themselves when they need finer control (e.g. per-chunk
        checkpointing) than :meth:`map_cached` offers.
        """
        configs = list(configs)
        results: list = [None] * len(configs)
        miss_indices: list[int] = []
        miss_configs: list[SimulationConfig] = []
        for index, config in enumerate(configs):
            cached = self.load(config)
            if cached is None:
                self.misses += 1
                miss_indices.append(index)
                miss_configs.append(config)
            else:
                self.hits += 1
                results[index] = cached
        return results, miss_indices, miss_configs

    def map_cached(
        self,
        configs: Sequence[SimulationConfig],
        run_batch: Callable[[list[SimulationConfig]], Iterable],
    ) -> list:
        """Results for *configs* in order, computing only the misses.

        *run_batch* receives the missing configs (input order preserved)
        and must yield one result per config. The stream is consumed
        lazily and every freshly computed result is stored the moment it
        is produced — an interrupt or crash mid-batch keeps all completed
        work on disk. A ``None`` result (the backends' marker for a point
        that failed after retries) is passed through but never persisted.
        """
        results, miss_indices, miss_configs = self.partition(configs)
        if miss_configs:
            produced = 0
            for result in run_batch(miss_configs):
                if produced >= len(miss_configs):
                    raise ExperimentError(
                        f"backend produced more than {len(miss_configs)} "
                        "results for the missing configs"
                    )
                if result is not None:
                    self.store(miss_configs[produced], result)
                results[miss_indices[produced]] = result
                produced += 1
            if produced != len(miss_configs):
                raise ExperimentError(
                    f"backend returned {produced} results for "
                    f"{len(miss_configs)} configs"
                )
        return results

    def describe(self) -> str:
        """One-line human summary for sweep output."""
        quarantined = (
            f", {self.corrupted} corrupted entries quarantined"
            if self.corrupted
            else ""
        )
        remote = ""
        if self.remote is not None:
            remote = (
                f", shared store: {self.remote_hits} hits / "
                f"{self.remote_stores} stores"
            )
            if self.remote.errors:
                remote += f" / {self.remote.errors} errors"
        return (
            f"{self.hits} hits, {self.misses} misses{quarantined}{remote} "
            f"({self.root})"
        )

    def __repr__(self) -> str:
        remote = f", remote={self.remote!r}" if self.remote is not None else ""
        return f"SweepCache(root={str(self.root)!r}, epoch={self.epoch!r}{remote})"


# ---------------------------------------------------------------------------
# Process-wide selection
# ---------------------------------------------------------------------------

_UNSET = object()
#: Explicit override installed by set_cache(); _UNSET defers to the env.
_override = _UNSET
#: Root path -> instance, so hit/miss counters accumulate per process.
_instances: dict[str, SweepCache] = {}


def default_cache_root() -> Path:
    """``$XDG_CACHE_HOME/repro/sweeps``, falling back to ``~/.cache``."""
    base = os.environ.get("XDG_CACHE_HOME", "").strip()
    root = Path(base).expanduser() if base else Path("~/.cache").expanduser()
    return root / "repro" / "sweeps"


def cache_from_env() -> SweepCache | None:
    """The cache selected by ``REPRO_CACHE`` (``None`` when disabled).

    ``REPRO_RESULT_STORE`` (a ``repro cache-server`` URL) attaches the
    shared-result-store read-through layer; worker processes inherit
    both variables, so a whole distributed sweep shares one store.
    """
    raw = os.environ.get(CACHE_ENV, "").strip()
    if raw.lower() in _DISABLE_VALUES:
        return None
    root = Path(raw).expanduser() if raw else default_cache_root()
    store_url = os.environ.get(RESULT_STORE_ENV, "").strip()
    key = f"{root}\n{store_url}"
    cache = _instances.get(key)
    if cache is None:
        remote = RemoteResultStore(store_url) if store_url else None
        cache = _instances[key] = SweepCache(root, remote=remote)
    return cache


def get_cache() -> SweepCache | None:
    """The active sweep cache: the override if set, else the environment."""
    if _override is not _UNSET:
        return _override  # type: ignore[return-value]
    return cache_from_env()


def set_cache(cache: SweepCache | None) -> None:
    """Install an explicit cache (or ``None`` to disable caching)."""
    global _override
    _override = cache


def reset_cache() -> None:
    """Drop any explicit override; revert to environment selection."""
    global _override
    _override = _UNSET
