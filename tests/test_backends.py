"""Tests for the unified execution backends."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.harness.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    default_backend,
    make_backend,
)
from repro.harness.parallel import parallel_rate_sweep
from repro.harness.sweep import SweepPoint, rate_sweep

from .conftest import small_config


class TestMakeBackend:
    def test_serial_for_none_zero_one(self):
        assert isinstance(make_backend(None), SerialBackend)
        assert isinstance(make_backend(0), SerialBackend)
        assert isinstance(make_backend(1), SerialBackend)

    def test_pool_for_many(self):
        backend = make_backend(3, chunksize=2)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.processes == 3
        assert backend.chunksize == 2

    def test_negative_processes_rejected(self):
        with pytest.raises(ExperimentError):
            make_backend(-1)

    def test_bad_chunksize_rejected(self):
        with pytest.raises(ExperimentError):
            ProcessPoolBackend(2, chunksize=0)


class TestDefaultBackend:
    def test_unset_env_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROCESSES", raising=False)
        assert isinstance(default_backend(), SerialBackend)

    def test_env_selects_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "2")
        backend = default_backend()
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.processes == 2

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "many")
        with pytest.raises(ExperimentError):
            default_backend()


class TestBackendEquivalence:
    def test_serial_and_pool_return_identical_sweep_points(self):
        """Satellite acceptance: identical SweepPoint lists either way."""
        config = small_config(
            policy="history", rate=0.2, warmup=200, measure=800
        )
        rates = (0.2, 0.4, 0.6)
        serial = rate_sweep(config, rates, backend=SerialBackend())
        pooled = rate_sweep(
            config, rates, backend=ProcessPoolBackend(2, chunksize=2)
        )
        assert serial == pooled
        assert all(isinstance(p, SweepPoint) for p in serial)

    def test_explicit_chunksize_reaches_parallel_wrappers(self):
        config = small_config(rate=0.2, warmup=200, measure=600)
        points = parallel_rate_sweep(
            config, (0.2, 0.3), processes=2, chunksize=1
        )
        serial = rate_sweep(config, (0.2, 0.3), backend=SerialBackend())
        assert points == serial

    def test_repr_names_the_configuration(self):
        assert repr(SerialBackend()) == "SerialBackend()"
        assert "processes=3" in repr(ProcessPoolBackend(3, chunksize=5))

    def test_empty_batch_short_circuits(self):
        assert ProcessPoolBackend(4).map_configs([]) == []

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ExecutionBackend().map_configs([])
