"""The paper's two-level task workload (Section 4.3).

Level one: communication task sessions arrive as a Poisson process over
the whole network. Each session binds a random source node to a
destination chosen with a sphere of locality, and lives for a uniformly
jittered duration around the configured average (1 us to 1 ms in the
paper). The arrival rate is set by Little's law so the expected number of
concurrent sessions equals ``average_tasks`` (the paper's 50/100 knob).

Level two: within a session, packet injections are self-similar — a bank
of Pareto ON/OFF sources (:class:`~repro.traffic.onoff.OnOffSourceSet`).
Each session's average rate is drawn uniformly within +/-50% of the fair
share ``injection_rate / average_tasks``, per the paper's "average packet
injection rate across different communication task sessions is uniformly
distributed within a specified range".
"""

from __future__ import annotations

import heapq
import math

from ..config import WorkloadConfig
from ..errors import WorkloadError
from ..network.topology import Topology
from ..units import seconds_to_cycles
from .base import TrafficSource
from .locality import SphereOfLocality
from .onoff import OnOffSourceSet


class _TaskSession:
    """One live communication session."""

    __slots__ = ("src", "dst", "end", "sources")

    def __init__(self, src: int, dst: int, end: int, sources: OnOffSourceSet):
        self.src = src
        self.dst = dst
        self.end = end
        self.sources = sources


class TwoLevelWorkload(TrafficSource):
    """Poisson task sessions emitting self-similar packet traffic."""

    def __init__(
        self,
        topology: Topology,
        config: WorkloadConfig,
        *,
        router_clock_hz: float = 1.0e9,
    ):
        super().__init__(topology, config)
        if config.injection_rate <= 0.0:
            raise WorkloadError("two-level workload needs a positive rate")
        self.router_clock_hz = router_clock_hz
        self.duration_cycles = seconds_to_cycles(
            config.average_task_duration_s, router_clock_hz
        )
        if self.duration_cycles < 1:
            raise WorkloadError("task duration is under one router cycle")
        #: Little's law: arrivals per cycle for the target concurrency.
        self.task_arrival_rate = config.average_tasks / self.duration_cycles
        self.per_task_rate = config.injection_rate / config.average_tasks
        self.locality = SphereOfLocality(
            topology, config.locality_radius, config.locality_probability
        )

        self._sessions: list[_TaskSession] = []
        #: Min-heap of (next packet time, tie-break, session).
        self._queue: list[tuple[float, int, _TaskSession]] = []
        self._tie = 0
        self._next_task_time = 0.0
        self.tasks_started = 0
        self.tasks_finished = 0
        self._prime_initial_sessions()

    # ------------------------------------------------------------------

    def _prime_initial_sessions(self) -> None:
        """Start the system in steady state: ~average_tasks live sessions.

        Each primed session has already run for a random fraction of its
        duration, so the session population neither ramps from zero nor
        expires in lockstep.
        """
        for _ in range(self.config.average_tasks):
            elapsed = self.rng.random()
            self._start_session(now=0, elapsed_fraction=elapsed)
        self._next_task_time = self.rng.expovariate(self.task_arrival_rate)

    def _draw_duration(self) -> int:
        jitter = self.config.task_duration_jitter
        factor = 1.0 + jitter * (2.0 * self.rng.random() - 1.0)
        return max(1, int(round(self.duration_cycles * factor)))

    def _start_session(self, now: int, elapsed_fraction: float = 0.0) -> None:
        src = self.rng.randrange(self.topology.node_count)
        dst = self.locality.choose(src, self.rng)
        duration = self._draw_duration()
        remaining = max(1, int(round(duration * (1.0 - elapsed_fraction))))
        end = now + remaining
        rate = self.per_task_rate * (0.5 + self.rng.random())
        sources = OnOffSourceSet(
            self.rng,
            sources=self.config.onoff_sources_per_task,
            target_rate=rate,
            start=now,
            end=end,
            on_shape=self.config.on_shape,
            off_shape=self.config.off_shape,
            on_location=self.config.on_location_cycles,
            peak_interval=self.config.peak_interval_cycles,
        )
        session = _TaskSession(src, dst, end, sources)
        self._sessions.append(session)
        self.tasks_started += 1
        if not sources.exhausted:
            self._push(session)

    def _push(self, session: _TaskSession) -> None:
        self._tie += 1
        heapq.heappush(self._queue, (session.sources.next_time, self._tie, session))

    # ------------------------------------------------------------------

    @property
    def live_sessions(self) -> int:
        """Sessions currently inside their lifetime (approximate gauge)."""
        return sum(1 for s in self._sessions if not s.sources.exhausted)

    def injections(self, now: int) -> list[tuple[int, int]]:
        # Level one: new task sessions.
        while self._next_task_time <= now:
            self._start_session(now)
            self._next_task_time += self.rng.expovariate(self.task_arrival_rate)

        # Level two: packets due this cycle.
        if not self._queue or self._queue[0][0] > now:
            return []
        pairs: list[tuple[int, int]] = []
        queue = self._queue
        while queue and queue[0][0] <= now:
            _, _, session = heapq.heappop(queue)
            count = session.sources.advance(now)
            pairs.extend((session.src, session.dst) for _ in range(count))
            if not session.sources.exhausted:
                self._push(session)
            else:
                self.tasks_finished += 1
        return self._count(pairs)

    def next_injection_cycle(self, now: int) -> int | float:
        # Earliest of the next session arrival (level one) and the next
        # due packet across the live session heap (level two); before
        # that, injections() touches neither the RNG nor the heap.
        horizon = self._next_task_time
        if self._queue and self._queue[0][0] < horizon:
            horizon = self._queue[0][0]
        next_cycle = math.ceil(horizon)
        return next_cycle if next_cycle > now else now

    def spatial_snapshot(self, pairs: list[tuple[int, int]]) -> list[int]:
        """Per-node injection counts for a batch of pairs (Figure 8 aid)."""
        counts = [0] * self.topology.node_count
        for src, _ in pairs:
            counts[src] += 1
        return counts
