"""Flit-level interconnection-network simulator substrate.

Reimplements (in Python) the event-driven flit-level simulator the paper
built in C++ (Section 4.1): k-ary n-cube topologies of pipelined
virtual-channel routers with credit-based flow control, whose inter-router
channels are DVS links with the transition behaviour of
:mod:`repro.core.dvs_link`.
"""

from .packet import Flit, Packet
from .topology import Coordinates, Topology
from .routing import (
    DimensionOrderRouting,
    MinimalAdaptiveRouting,
    RoutingFunction,
    make_routing,
)
from .channel import NetworkChannel
from .engine import SimulationEngine
from .simulator import Simulator, SimulationResult
from .stats import NetworkSnapshot, snapshot

__all__ = [
    "NetworkSnapshot",
    "snapshot",
    "Flit",
    "Packet",
    "Coordinates",
    "Topology",
    "RoutingFunction",
    "DimensionOrderRouting",
    "MinimalAdaptiveRouting",
    "make_routing",
    "NetworkChannel",
    "SimulationEngine",
    "Simulator",
    "SimulationResult",
]
