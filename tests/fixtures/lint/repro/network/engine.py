"""Fixture: R1 (wall clock + global RNG) and R2 (unordered hot-path iteration).

The path mimics the real hot-path module so the path-scoped rules fire.
"""

import random
import time


def stamp_cycle() -> float:
    return time.time()  # one R1 violation: wall-clock read


def jittered_cycle(now: int) -> float:
    # Suppressed R1: must NOT be reported.
    return now + random.random()  # repro-lint: ignore[R1]


def step_active(active: set[int], routers: list) -> None:
    for node in active:  # one R2 violation: unsorted set iteration
        routers[node].step()


def step_active_sorted(active: set[int], routers: list) -> None:
    for node in sorted(active):  # clean: sorted() pins the order
        routers[node].step()
