"""The simulator state auditor, and the simulator audited under load.

Running :func:`repro.network.debug.audit` at random points of randomized
simulations turns the whole simulator into a property under test: credit
conservation, occupancy consistency, VC ownership and channel state must
hold at every cycle of every workload.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.debug import audit
from repro.network.simulator import Simulator

from .conftest import small_config


class TestAuditCatchesCorruption:
    def test_clean_simulator_passes(self, mesh3_config):
        simulator = Simulator(mesh3_config)
        simulator.run_cycles(500)
        assert audit(simulator) == []

    def test_detects_occupancy_drift(self, mesh3_config):
        simulator = Simulator(mesh3_config)
        simulator.run_cycles(300)
        tracker = simulator.routers[4].occupancy[0]
        tracker.occupied += 1  # corrupt
        violations = audit(simulator)
        assert any("occupancy tracker" in v for v in violations)

    def test_detects_credit_drift(self, mesh3_config):
        simulator = Simulator(mesh3_config)
        simulator.run_cycles(300)
        channel = simulator.channels[0]
        state = simulator.routers[channel.spec.src_node].credit_states[
            channel.spec.src_port
        ]
        state.credits[0] -= 1  # corrupt
        assert any("credits" in v for v in audit(simulator))

    def test_detects_buffer_count_drift(self, mesh3_config):
        simulator = Simulator(mesh3_config)
        simulator.run_cycles(300)
        simulator.routers[0].total_buffered += 2
        assert any("total_buffered" in v for v in audit(simulator))

    def test_detects_broken_lock_mirror(self, mesh3_config):
        simulator = Simulator(mesh3_config)
        simulator.channels[0].dvs.locked = True  # without entering the phase
        assert any("out of sync" in v for v in audit(simulator))


class TestInvariantsHoldUnderLoad:
    @pytest.mark.parametrize(
        "policy,rate,routing",
        [
            ("none", 0.6, "dor"),
            ("history", 0.6, "dor"),
            ("history", 1.2, "dor"),
            ("history", 0.6, "adaptive"),
        ],
    )
    def test_audit_clean_throughout(self, policy, rate, routing):
        config = small_config(
            policy=policy, rate=rate, routing=routing, warmup=0, measure=100
        )
        simulator = Simulator(config)
        for _ in range(8):
            simulator.run_cycles(250)
            assert audit(simulator) == []

    def test_audit_clean_on_torus(self):
        config = small_config(
            radix=4, wraparound=True, rate=0.8, warmup=0, measure=100
        )
        simulator = Simulator(config)
        for _ in range(6):
            simulator.run_cycles(250)
            assert audit(simulator) == []

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rate=st.floats(min_value=0.05, max_value=2.0),
        checkpoint=st.integers(min_value=50, max_value=1_500),
    )
    def test_audit_clean_randomized(self, seed, rate, checkpoint):
        config = small_config(
            policy="history",
            rate=rate,
            seed=seed,
            workload_kind="two_level",
            warmup=0,
            measure=100,
            average_tasks=6,
            average_task_duration_s=4.0e-6,
            onoff_sources_per_task=4,
        )
        simulator = Simulator(config)
        simulator.run_cycles(checkpoint)
        assert audit(simulator) == []
        simulator.run_cycles(checkpoint)
        assert audit(simulator) == []
