"""Utilization sampling and exponentially weighted average prediction.

Implements the measurement side of the paper's Section 3.1/3.2:

* :class:`WindowSampler` accumulates per-cycle observations over a history
  window of ``H`` router cycles and emits per-window averages — link
  utilization (Eq. (2)) and input-buffer utilization (Eq. (3)).
* :class:`EWMAPredictor` combines the current window with the running
  prediction (Eq. (5)):

      Par_predict = (W * Par_current + Par_past) / (W + 1)

  The paper fixes ``W = 3`` so hardware can evaluate this as a shift-and-add
  (multiply by 3 = shift+add, divide by 4 = shift right by two); the class
  checks for and exposes that property but accepts any positive weight.
"""

from __future__ import annotations

from ..errors import ConfigError


class EWMAPredictor:
    """Exponentially weighted moving average, paper Eq. (5)."""

    __slots__ = ("weight", "_predicted", "_primed")

    def __init__(self, weight: float = 3.0, initial: float = 0.0) -> None:
        if weight <= 0.0:
            raise ConfigError(f"EWMA weight must be positive, got {weight!r}")
        if not 0.0 <= initial <= 1.0:
            raise ConfigError("initial prediction must be a utilization in [0, 1]")
        self.weight = weight
        self._predicted = initial
        self._primed = False

    @property
    def predicted(self) -> float:
        """Most recent prediction (``Par_past`` for the next update)."""
        return self._predicted

    @property
    def primed(self) -> bool:
        """Whether at least one observation has been folded in."""
        return self._primed

    def update(self, current: float) -> float:
        """Fold one window's observation into the prediction and return it."""
        if current < 0.0:
            raise ConfigError(f"utilization cannot be negative, got {current!r}")
        self._predicted = (self.weight * current + self._predicted) / (
            self.weight + 1.0
        )
        self._primed = True
        return self._predicted

    def reset(self, value: float = 0.0) -> None:
        """Restart the predictor at *value*."""
        self._predicted = value
        self._primed = False

    @property
    def is_shift_add_friendly(self) -> bool:
        """True when ``weight + 1`` is a power of two, so the divide is a
        shift and the multiply a shift-and-add — the paper's W=3 case."""
        denom = self.weight + 1.0
        if denom != int(denom):
            return False
        denom_int = int(denom)
        return denom_int > 0 and (denom_int & (denom_int - 1)) == 0


class WindowSampler:
    """Accumulates link and buffer observations over one history window.

    The hardware analog (paper Figure 6): one counter of busy link cycles,
    one counter tracking the router/link clock ratio, and the credit state
    that already exists in any credit-flow-controlled router.

    Usage: the owning controller adds busy time via :meth:`add_busy_cycles`
    (in router cycles — the serialization time of each flit), samples buffer
    occupancy each router cycle via :meth:`add_buffer_sample`, then calls
    :meth:`close_window` every ``H`` cycles to obtain ``(LU, BU)`` for the
    window and reset the counters.
    """

    __slots__ = ("window_cycles", "_busy_cycles", "_occupancy_sum", "_buffer_capacity")

    def __init__(self, window_cycles: int, buffer_capacity: int) -> None:
        if window_cycles <= 0:
            raise ConfigError("history window must be positive")
        if buffer_capacity <= 0:
            raise ConfigError("buffer capacity must be positive")
        self.window_cycles = window_cycles
        self._buffer_capacity = buffer_capacity
        self._busy_cycles = 0.0
        self._occupancy_sum = 0

    def add_busy_cycles(self, cycles: float) -> None:
        """Record *cycles* of link busy time (router-cycle units)."""
        if cycles < 0.0:
            raise ConfigError("busy cycles cannot be negative")
        self._busy_cycles += cycles

    def add_buffer_sample(self, occupied_slots: int) -> None:
        """Record one per-cycle sample of downstream buffer occupancy."""
        self._occupancy_sum += occupied_slots

    def close_window(self) -> tuple[float, float]:
        """Return ``(link_utilization, buffer_utilization)`` and reset.

        LU is clamped to 1.0: a flit whose serialization straddles the
        window boundary can make raw busy time exceed the window by a
        fraction of a flit.
        """
        link_utilization = min(1.0, self._busy_cycles / self.window_cycles)
        buffer_utilization = self._occupancy_sum / (
            self.window_cycles * self._buffer_capacity
        )
        self._busy_cycles = 0.0
        self._occupancy_sum = 0
        return link_utilization, min(1.0, buffer_utilization)
