#!/usr/bin/env python3
"""Watch the DVS policy shape itself around a hotspot.

Drives an 8x8 mesh with hotspot traffic (40% of packets target the center
node) under the history-based DVS policy, then renders terminal heatmaps
of the per-channel voltage/frequency levels: the links feeding the
hotspot stay fast (9) while the periphery sinks toward the bottom level
(0) — the spatial structure behind the paper's power savings.

Run:  python examples/hotspot_heatmap.py
"""

from repro import (
    DVSControlConfig,
    LinkConfig,
    NetworkConfig,
    SimulationConfig,
    Simulator,
    WorkloadConfig,
)
from repro import viz
from repro.traffic.hotspot import HotspotTraffic


def main() -> None:
    config = SimulationConfig(
        network=NetworkConfig(radix=8, dimensions=2),
        link=LinkConfig(
            voltage_transition_s=0.5e-6, frequency_transition_link_cycles=5
        ),
        dvs=DVSControlConfig(policy="history"),
        workload=WorkloadConfig(kind="uniform", injection_rate=0.9, seed=21),
        warmup_cycles=0,
        measure_cycles=25_000,
    )
    simulator = Simulator(config)
    simulator.traffic = HotspotTraffic(
        simulator.topology, config.workload, hotspot_fraction=0.4
    )

    print("Running 25k cycles of hotspot traffic (40% to the center)...\n")
    simulator.begin_measurement()
    simulator.run_cycles(25_000)
    result = simulator.finish()

    print("Mean output-channel DVS level per router (9 = fastest):")
    print(viz.level_grid(simulator))
    print()
    print("Eastward (+x) channel levels ('.' = mesh edge):")
    print(viz.channel_level_heatmap(simulator, direction=0))
    print()
    print(viz.utilization_bars(simulator, top=8))
    print()
    print(
        f"Network: accepted {result.accepted_rate:.2f} pkt/cycle, "
        f"normalized power {result.power.normalized:.3f} "
        f"({result.power.savings_factor:.1f}X savings), "
        f"mean level {result.mean_level:.1f}"
    )
    print(
        "\nThe hotspot's feeder links hold high levels while the rest of the\n"
        "mesh scales down — distributed, per-port control needs no global\n"
        "coordination to find this shape (the paper's Section 3.3 argument)."
    )


if __name__ == "__main__":
    main()
