"""Tests for EWMA prediction and window sampling."""

import pytest
from hypothesis import given, strategies as st

from repro.core.history import EWMAPredictor, WindowSampler
from repro.errors import ConfigError


class TestEWMAPredictor:
    def test_paper_update_rule(self):
        # Par_predict = (W * current + past) / (W + 1) with W = 3.
        predictor = EWMAPredictor(weight=3.0, initial=0.2)
        assert predictor.update(0.6) == pytest.approx((3 * 0.6 + 0.2) / 4)

    def test_sequence(self):
        predictor = EWMAPredictor(weight=3.0)
        predictor.update(1.0)
        assert predictor.predicted == pytest.approx(0.75)
        predictor.update(1.0)
        assert predictor.predicted == pytest.approx(0.9375)

    def test_decay_on_idle(self):
        predictor = EWMAPredictor(weight=3.0, initial=1.0)
        predictor.update(0.0)
        assert predictor.predicted == pytest.approx(0.25)
        predictor.update(0.0)
        assert predictor.predicted == pytest.approx(0.0625)

    def test_primed_flag(self):
        predictor = EWMAPredictor()
        assert not predictor.primed
        predictor.update(0.5)
        assert predictor.primed

    def test_reset(self):
        predictor = EWMAPredictor()
        predictor.update(0.9)
        predictor.reset(0.1)
        assert predictor.predicted == 0.1
        assert not predictor.primed

    def test_shift_add_friendly(self):
        assert EWMAPredictor(weight=3.0).is_shift_add_friendly
        assert EWMAPredictor(weight=7.0).is_shift_add_friendly
        assert not EWMAPredictor(weight=4.0).is_shift_add_friendly
        assert not EWMAPredictor(weight=2.5).is_shift_add_friendly

    def test_validation(self):
        with pytest.raises(ConfigError):
            EWMAPredictor(weight=0.0)
        with pytest.raises(ConfigError):
            EWMAPredictor(initial=1.5)
        predictor = EWMAPredictor()
        with pytest.raises(ConfigError):
            predictor.update(-0.1)

    @given(
        observations=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50
        ),
        weight=st.sampled_from([1.0, 3.0, 7.0]),
    )
    def test_stays_in_unit_interval(self, observations, weight):
        predictor = EWMAPredictor(weight=weight)
        for value in observations:
            predicted = predictor.update(value)
            assert 0.0 <= predicted <= 1.0

    @given(value=st.floats(min_value=0.0, max_value=1.0))
    def test_converges_to_constant_input(self, value):
        predictor = EWMAPredictor(weight=3.0)
        for _ in range(40):
            predictor.update(value)
        assert predictor.predicted == pytest.approx(value, abs=1e-4)


class TestWindowSampler:
    def test_link_utilization(self):
        sampler = WindowSampler(window_cycles=200, buffer_capacity=128)
        sampler.add_busy_cycles(50.0)
        lu, bu = sampler.close_window()
        assert lu == pytest.approx(0.25)
        assert bu == 0.0

    def test_buffer_utilization(self):
        sampler = WindowSampler(window_cycles=4, buffer_capacity=10)
        for occupied in (2, 4, 6, 8):
            sampler.add_buffer_sample(occupied)
        _, bu = sampler.close_window()
        assert bu == pytest.approx(0.5)

    def test_window_resets(self):
        sampler = WindowSampler(window_cycles=100, buffer_capacity=16)
        sampler.add_busy_cycles(100.0)
        sampler.close_window()
        lu, bu = sampler.close_window()
        assert lu == 0.0 and bu == 0.0

    def test_lu_clamped(self):
        # A flit straddling the window boundary can push raw busy time
        # fractionally past the window.
        sampler = WindowSampler(window_cycles=10, buffer_capacity=4)
        sampler.add_busy_cycles(12.0)
        lu, _ = sampler.close_window()
        assert lu == 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            WindowSampler(0, 10)
        with pytest.raises(ConfigError):
            WindowSampler(10, 0)
        sampler = WindowSampler(10, 10)
        with pytest.raises(ConfigError):
            sampler.add_busy_cycles(-1.0)
