"""Network power accounting and the router power profile.

:mod:`repro.power.accounting` integrates per-channel energy over a
measurement phase and reports savings factors versus the always-max
baseline (the paper's normalized-power metric). The paper evaluates link
power only — it shows router-core power barely changes with DVS
(Section 4.2) — so the accountant covers channels; the router-core
distribution of Figure 7 is reproduced analytically in
:mod:`repro.power.router_power`.
"""

from .accounting import PowerAccountant, PowerReport
from .orion import OrionParameters, RouterEnergyCounters, RouterEnergyModel
from .report import (
    format_power_report,
    nominal_network_power_w,
    savings_by_component,
)
from .router_power import RouterPowerProfile

__all__ = [
    "PowerAccountant",
    "PowerReport",
    "RouterPowerProfile",
    "OrionParameters",
    "RouterEnergyModel",
    "RouterEnergyCounters",
    "format_power_report",
    "nominal_network_power_w",
    "savings_by_component",
]
