"""Beyond the paper's figures: quantifying its Section 4.2 claim that
router-core power barely changes with DVS links.

The paper measured (via Synopsys) that "router power consumption does not
vary much with and without DVS links" — a flit that lingers triggers more
arbitrations but no extra buffer or crossbar events — and therefore
evaluates link power only. We re-derive that with the Orion-style core
energy model over identical workloads.
"""

from repro.harness.experiments import FigureResult
from repro.harness.runner import build_simulator
from repro.power.orion import RouterEnergyModel, core_energy_comparison

from .common import emit, run_once, scale


def _run_pair():
    results = {}
    for policy in ("none", "history"):
        config = scale().simulation(
            1.0,
            policy=policy,
            workload_overrides={"average_tasks": 100},
        )
        simulator = build_simulator(config)
        simulator.run()
        results[policy] = simulator
    clock = scale().network().router_clock_hz
    base_w, dvs_w, change = core_energy_comparison(
        results["none"], results["history"], clock
    )
    return base_w, dvs_w, change


def test_router_core_energy_insensitive_to_dvs(benchmark):
    base_w, dvs_w, change = run_once(benchmark, _run_pair)
    model = RouterEnergyModel()
    figure = FigureResult(
        "Section 4.2",
        "router-core power with and without DVS links (Orion-style model)",
        ["quantity", "value"],
        [
            ("core power, non-DVS (W)", round(base_w, 4)),
            ("core power, history DVS (W)", round(dvs_w, 4)),
            ("relative change", round(change, 4)),
            ("per-flit hop energy (pJ)", round(model.flit_traversal_j() * 1e12, 2)),
        ],
    )
    emit("router_core_energy", figure)
    print(
        f"\nCore power: {base_w:.3f} W -> {dvs_w:.3f} W under DVS "
        f"({change:+.1%}) — the paper's justification for evaluating link "
        "power only."
    )
    # The claim itself: the change is small (the delivered-traffic
    # difference bounds it).
    assert abs(change) < 0.25
