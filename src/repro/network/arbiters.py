"""Arbiters used by the router's allocation stages.

The paper's router performs separable allocation with simple rotating
priority; :class:`RoundRobinArbiter` reproduces that: the requester just
granted becomes the lowest-priority requester for the next arbitration,
which is starvation-free for persistent requesters.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ConfigError


class RoundRobinArbiter:
    """Rotating-priority arbiter over a fixed id space ``0..size-1``."""

    __slots__ = ("size", "_next")

    def __init__(self, size: int):
        if size < 1:
            raise ConfigError("arbiter needs at least one requester")
        self.size = size
        self._next = 0

    @property
    def priority_head(self) -> int:
        """The id that currently has the highest priority."""
        return self._next

    def grant(self, requests: Sequence[bool]) -> int | None:
        """Grant among *requests* (indexed by id); None if no request.

        The winner becomes lowest priority next time.
        """
        if len(requests) != self.size:
            raise ConfigError(
                f"expected {self.size} request lines, got {len(requests)}"
            )
        for offset in range(self.size):
            candidate = (self._next + offset) % self.size
            if requests[candidate]:
                self._next = (candidate + 1) % self.size
                return candidate
        return None

    def advance_past(self, granted_id: int) -> None:
        """Record *granted_id* as this round's winner (it becomes lowest
        priority next time). For callers that pick the winner themselves."""
        if not 0 <= granted_id < self.size:
            raise ConfigError(f"id {granted_id} out of range")
        self._next = (granted_id + 1) % self.size

    def grant_from(self, request_ids: set[int]) -> int | None:
        """Grant among a sparse set of requesting ids."""
        if not request_ids:
            return None
        for offset in range(self.size):
            candidate = (self._next + offset) % self.size
            if candidate in request_ids:
                self._next = (candidate + 1) % self.size
                return candidate
        return None
