"""The cycle-driven network simulator.

Assembles topology, routers, DVS channels, per-port DVS controllers,
traffic and measurement into one simulation object (the Python counterpart
of the paper's C++ simulator, Section 4.1).

Time base: the router clock (1 cycle = 1 ns at the paper's 1 GHz). Each
cycle the simulator

1. dispatches scheduled events — flit arrivals into input buffers, credit
   returns, DVS channel phase boundaries;
2. polls the traffic source and enqueues new packets in source queues;
3. closes DVS history windows when due (every H cycles) and runs the
   per-port controllers; schedules any transition phase boundaries they
   start;
4. closes profiling-probe windows and time-series windows when due;
5. steps every non-idle router (ejection, routing/VC allocation, switch
   allocation, injection).

Events live in a bucket map keyed by cycle, which outperforms a heap when
almost every future cycle holds events. Inter-router flit traversal is
"emulated with message passing" exactly as in the paper: a launched flit
becomes an arrival event ``pipeline latency + serialization`` cycles
later, so slow links lengthen hops and throttle bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DVSControlConfig, SimulationConfig
from ..core.controller import PortDVSController
from ..core.dvs_link import DVSChannel
from ..core.policy import (
    AdaptiveThresholdPolicy,
    DVSPolicy,
    HistoryDVSPolicy,
    LinkUtilizationOnlyPolicy,
    StaticLevelPolicy,
)
from ..errors import ConfigError, SimulationError
from ..metrics.latency import LatencyCollector, LatencyStats
from ..metrics.timeseries import WindowedSeries
from ..metrics.utilization import UtilizationProbe
from ..power.accounting import PowerAccountant, PowerReport
from .channel import NetworkChannel
from .packet import Packet
from .router import EVENT_ARRIVAL, EVENT_CREDIT, EVENT_PHASE, Router
from .routing import make_routing
from .topology import Topology


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Everything a harness needs from one simulation run.

    Rates are network-wide packets per router cycle, measured over the
    measurement phase only.
    """

    config: SimulationConfig
    measure_cycles: int
    offered_packets: int
    ejected_packets: int
    offered_rate: float
    accepted_rate: float
    latency: LatencyStats
    power: PowerReport
    mean_level: float
    requests_dropped: int
    series: dict[str, WindowedSeries] = field(default_factory=dict)


def _build_policy(dvs: DVSControlConfig) -> DVSPolicy:
    if dvs.policy == "history":
        return HistoryDVSPolicy(dvs.thresholds, weight=dvs.ewma_weight)
    if dvs.policy == "static":
        return StaticLevelPolicy(dvs.static_level)
    if dvs.policy == "lu_only":
        return LinkUtilizationOnlyPolicy(dvs.thresholds, weight=dvs.ewma_weight)
    if dvs.policy == "adaptive_threshold":
        return AdaptiveThresholdPolicy(dvs.thresholds, weight=dvs.ewma_weight)
    raise ConfigError(f"no policy object for {dvs.policy!r}")


class Simulator:
    """One fully wired network simulation."""

    def __init__(self, config: SimulationConfig, *, traffic=None, series_window=0):
        self.config = config
        net = config.network
        link = config.link
        if series_window < 0:
            raise ConfigError("series window cannot be negative")
        self.series_window = series_window

        self.topology = Topology(net.radix, net.dimensions, wraparound=net.wraparound)
        self.routing = make_routing(net.routing, self.topology, net.vcs_per_port)

        table = link.build_table()
        power_model = link.build_power_model()
        regulator = link.build_regulator()
        timing = link.build_timing()

        self._events: dict[int, list[tuple]] = {}
        self.now = 0

        self.routers = [
            Router(
                node,
                self.topology,
                self.routing,
                vcs_per_port=net.vcs_per_port,
                buffers_per_vc=net.buffers_per_vc,
                credit_delay=net.credit_delay,
                schedule=self.schedule,
                packet_sink=self._on_packet_ejected,
            )
            for node in range(self.topology.node_count)
        ]

        if config.dvs.enabled and config.dvs.initial_level is not None:
            initial_level = config.dvs.initial_level
        else:
            initial_level = table.max_level

        self.channels: list[NetworkChannel] = []
        for spec in self.topology.channels:
            dvs_channel = DVSChannel(
                table,
                power_model,
                regulator,
                lanes=link.lanes,
                router_clock_hz=net.router_clock_hz,
                timing=timing,
                initial_level=initial_level,
            )
            channel = NetworkChannel(spec, dvs_channel, net.pipeline_latency)
            self.routers[spec.src_node].attach_channel(
                spec.src_port, channel, net.buffers_per_vc
            )
            self.channels.append(channel)

        self.controllers: list[PortDVSController] = []
        if config.dvs.enabled:
            for channel in self.channels:
                spec = channel.spec
                tracker = self.routers[spec.dst_node].occupancy[spec.dst_port]
                if tracker is None:
                    raise SimulationError("network input port lacks a tracker")
                self.controllers.append(
                    PortDVSController(
                        channel.dvs,
                        _build_policy(config.dvs),
                        tracker,
                        window_cycles=config.dvs.history_window,
                        buffer_capacity=net.buffers_per_port,
                    )
                )

        if traffic is None:
            from ..traffic.base import make_traffic

            traffic = make_traffic(self.topology, config.workload)
        self.traffic = traffic

        self.accountant = PowerAccountant(
            [channel.dvs for channel in self.channels], net.router_clock_hz
        )
        self.latency = LatencyCollector()
        self.probes: list[UtilizationProbe] = []

        self._measuring = False
        self._measure_start = 0
        self.total_ejected_packets = 0
        self.offered_measured = 0
        self.ejected_measured = 0

        self.series: dict[str, WindowedSeries] = {}
        self._series_offered = 0
        self._series_ejected = 0
        self._series_last_energy = 0.0
        if series_window:
            self.series = {
                name: WindowedSeries(series_window)
                for name in ("offered_rate", "accepted_rate", "power_w", "mean_level")
            }

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------

    def attach_probe(
        self, src_node: int, src_port: int, *, window_cycles: int = 50
    ) -> UtilizationProbe:
        """Attach a Figure-3/4/5 profiling probe to one channel.

        The probe watches the channel leaving ``src_node`` through
        ``src_port`` and the downstream input port it feeds, including a
        buffer-age tap.
        """
        channel = self.routers[src_node].channels[src_port]
        if channel is None:
            raise ConfigError(f"node {src_node} has no channel on port {src_port}")
        spec = channel.spec
        downstream = self.routers[spec.dst_node]
        tracker = downstream.occupancy[spec.dst_port]
        probe = UtilizationProbe(
            channel.dvs,
            tracker,
            window_cycles=window_cycles,
            buffer_capacity=self.config.network.buffers_per_port,
        )
        downstream.age_hooks.setdefault(spec.dst_port, []).append(probe.on_age)
        self.probes.append(probe)
        return probe

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def schedule(self, cycle: int, event: tuple) -> None:
        """Queue *event* for dispatch at *cycle* (must be in the future)."""
        bucket = self._events.get(cycle)
        if bucket is None:
            self._events[cycle] = [event]
        else:
            bucket.append(event)

    def _on_packet_ejected(self, packet: Packet, now: int) -> None:
        self.total_ejected_packets += 1
        if self._measuring:
            self.ejected_measured += 1
            self._series_ejected += 1
            if packet.created_cycle >= self._measure_start:
                self.latency.record(packet.latency)

    # ------------------------------------------------------------------
    # The cycle loop
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the simulation by one router cycle."""
        now = self.now
        routers = self.routers

        events = self._events.pop(now, None)
        if events:
            for event in events:
                kind = event[0]
                if kind == EVENT_ARRIVAL:
                    routers[event[1]].on_arrival(event[2], event[3], event[4], now)
                elif kind == EVENT_CREDIT:
                    routers[event[1]].on_credit(event[2], event[3], event[4])
                else:  # EVENT_PHASE
                    channel = event[1]
                    next_cycle = channel.on_phase_end(now)
                    if next_cycle is not None:
                        self.schedule(next_cycle, (EVENT_PHASE, channel))

        pairs = self.traffic.injections(now)
        if pairs:
            flits_per_packet = self.config.network.flits_per_packet
            for src, dst in pairs:
                routers[src].offer_packet(Packet(src, dst, flits_per_packet, now))
            if self._measuring:
                self.offered_measured += len(pairs)
                self._series_offered += len(pairs)

        if now:
            if self.controllers and now % self.config.dvs.history_window == 0:
                for controller in self.controllers:
                    channel = controller.channel
                    pending_before = channel.pending_event_cycle
                    controller.close_window(now)
                    pending_after = channel.pending_event_cycle
                    if pending_after is not None and pending_after != pending_before:
                        self.schedule(pending_after, (EVENT_PHASE, channel))
            if self.probes:
                for probe in self.probes:
                    if now % probe.window_cycles == 0:
                        probe.close_window(now)
            if self.series and now % self.series_window == 0:
                self._close_series_window(now)

        for router in routers:
            if router.total_buffered or router.inj_flits or router.inj_queue:
                router.step(now)

        self.now = now + 1

    def run_cycles(self, cycles: int) -> None:
        """Run *cycles* more cycles."""
        for _ in range(cycles):
            self.step()

    def begin_measurement(self) -> None:
        """End warmup: reset collectors and start the measured phase."""
        self._measuring = True
        self._measure_start = self.now
        self.latency.reset()
        self.offered_measured = 0
        self.ejected_measured = 0
        self.accountant.begin(self.now)
        self._series_offered = 0
        self._series_ejected = 0
        self._series_last_energy = self._total_energy(self.now)
        for probe in self.probes:
            probe.reset()

    def run(self) -> SimulationResult:
        """Warmup, measure, and summarize per the configuration."""
        self.run_cycles(self.config.warmup_cycles)
        self.begin_measurement()
        self.run_cycles(self.config.measure_cycles)
        return self.finish()

    def finish(self) -> SimulationResult:
        """Summarize the measurement phase ending now."""
        now = self.now
        if not self._measuring:
            raise SimulationError("finish() before begin_measurement()")
        measure_cycles = now - self._measure_start
        if measure_cycles <= 0:
            raise SimulationError("measurement phase is empty")
        power = self.accountant.report(now)
        return SimulationResult(
            config=self.config,
            measure_cycles=measure_cycles,
            offered_packets=self.offered_measured,
            ejected_packets=self.ejected_measured,
            offered_rate=self.offered_measured / measure_cycles,
            accepted_rate=self.ejected_measured / measure_cycles,
            latency=self.latency.stats(),
            power=power,
            mean_level=self.accountant.mean_level(),
            requests_dropped=sum(c.requests_dropped for c in self.controllers),
            series=dict(self.series),
        )

    # ------------------------------------------------------------------
    # Series and diagnostics
    # ------------------------------------------------------------------

    def _total_energy(self, now: int) -> float:
        total = 0.0
        for channel in self.channels:
            channel.dvs.finalize(now)
            total += channel.dvs.total_energy_j
        return total

    def _close_series_window(self, now: int) -> None:
        window = self.series_window
        self.series["offered_rate"].append(self._series_offered / window)
        self.series["accepted_rate"].append(self._series_ejected / window)
        energy = self._total_energy(now)
        window_s = window / self.config.network.router_clock_hz
        self.series["power_w"].append(
            (energy - self._series_last_energy) / window_s
        )
        self.series["mean_level"].append(self.accountant.mean_level())
        self._series_last_energy = energy
        self._series_offered = 0
        self._series_ejected = 0

    def flits_in_network(self) -> int:
        """Flits buffered in routers plus flits in flight on the wires."""
        buffered = sum(router.total_buffered for router in self.routers)
        in_flight = sum(
            1
            for bucket in self._events.values()
            for event in bucket
            if event[0] == EVENT_ARRIVAL
        )
        return buffered + in_flight

    def pending_source_packets(self) -> int:
        """Packets waiting in source queues (plus partially injected ones)."""
        queued = sum(len(router.inj_queue) for router in self.routers)
        partial = sum(1 for router in self.routers if router.inj_flits)
        return queued + partial

    def drain(self, max_cycles: int = 100_000) -> int:
        """Run with traffic as-is until the network empties; returns cycles.

        Intended for conservation tests: callers typically swap in an
        exhausted traffic source first. Raises if the network fails to
        drain within *max_cycles* (a deadlock or livelock).
        """
        for elapsed in range(max_cycles):
            transport_events = any(
                event[0] != EVENT_PHASE
                for bucket in self._events.values()
                for event in bucket
            )
            if (
                not transport_events
                and self.traffic.pending_injections() == 0
                and self.flits_in_network() == 0
                and self.pending_source_packets() == 0
            ):
                return elapsed
            self.step()
        raise SimulationError(f"network failed to drain within {max_cycles} cycles")
