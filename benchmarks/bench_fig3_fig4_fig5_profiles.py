"""Figures 3, 4 and 5: LU / BU / BA profiles of one tracked link.

Paper shape to reproduce: link utilization rises with load then *dips*
once the network congests (Figure 3(d)); buffer utilization and buffer age
stay near zero until congestion, then jump (Figures 4(c) and 5(c)) —
the indicator-function behaviour that motivates the congestion litmus.
"""

from repro.harness.experiments import _profile_figure

from .common import cached_profiles, emit, run_once, scale

#: Offered loads spanning light traffic to deep congestion. The top load
#: sits far beyond the full-speed baseline's saturation so the stalls
#: behind full buffers (Figures 3(d), 4(c), 5(c)) actually appear.
LOADS = (0.2, 1.0, 3.0, 8.0)


def test_fig3_link_utilization(benchmark):
    profiles = run_once(
        benchmark, lambda: cached_profiles(scale().name, LOADS)
    )
    figure = _profile_figure(
        "Figure 3", "link utilization profile", "lu_histogram", "mean_lu", profiles
    )
    emit("fig3_link_utilization", figure)
    means = [profiles[load]["mean_lu"] for load in LOADS]
    network_means = [profiles[load]["network_mean_lu"] for load in LOADS]
    print(f"\ntracked-link mean LU by load: {[round(m, 3) for m in means]}")
    print(f"network mean LU by load:      {[round(m, 3) for m in network_means]}")
    # LU must rise from light load to heavy load...
    assert means[1] > means[0]
    assert all(0.0 <= m <= 1.0 for m in means)
    # ...and the congested point must not keep rising proportionally (the
    # Figure 3(d) dip / flattening). Filling the 128-deep buffers to the
    # point of credit starvation needs more cycles than the smoke preset
    # runs, so the dip check applies to the larger scales only.
    if scale().name != "smoke":
        assert means[3] < means[2] * 1.5
        # Offered load grows 2.7x from the 3rd to the 4th point; stalls
        # keep the network-wide utilization growth well below that.
        assert network_means[3] < network_means[2] * 2.0


def test_fig4_buffer_utilization(benchmark):
    profiles = run_once(
        benchmark, lambda: cached_profiles(scale().name, LOADS)
    )
    figure = _profile_figure(
        "Figure 4",
        "input buffer utilization profile",
        "bu_histogram",
        "mean_bu",
        profiles,
    )
    emit("fig4_buffer_utilization", figure)
    means = [profiles[load]["mean_bu"] for load in LOADS]
    # Indicator behaviour: low pre-congestion, sharp rise at congestion.
    assert means[0] < 0.3
    assert means[3] > means[0]


def test_fig5_buffer_age(benchmark):
    profiles = run_once(
        benchmark, lambda: cached_profiles(scale().name, LOADS)
    )
    figure = _profile_figure(
        "Figure 5", "input buffer age profile", "age_histogram", "mean_age", profiles
    )
    emit("fig5_buffer_age", figure)
    means = [profiles[load]["mean_age"] for load in LOADS]
    assert means[3] > means[0]
