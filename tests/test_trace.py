"""Tests for trace record/replay."""

import pytest

from repro.config import WorkloadConfig
from repro.errors import WorkloadError
from repro.network.topology import Topology
from repro.traffic.trace import RecordingSource, TraceReplaySource
from repro.traffic.uniform import UniformRandomTraffic


def make_uniform(topology, seed=1):
    return UniformRandomTraffic(
        topology, WorkloadConfig(kind="uniform", injection_rate=0.5, seed=seed)
    )


class TestRecording:
    def test_record_passthrough(self):
        topology = Topology(3, 2)
        recorder = RecordingSource(make_uniform(topology))
        emitted = []
        for now in range(2_000):
            emitted.extend(recorder.injections(now))
        assert len(recorder.trace) == len(emitted)
        assert [(s, d) for _, s, d in recorder.trace] == emitted

    def test_replay_reproduces_recording(self):
        topology = Topology(3, 2)
        recorder = RecordingSource(make_uniform(topology))
        for now in range(1_000):
            recorder.injections(now)
        replay = TraceReplaySource(
            topology, WorkloadConfig(kind="uniform"), recorder.trace
        )
        replayed = []
        for now in range(1_000):
            replayed.extend(replay.injections(now))
        assert [(s, d) for _, s, d in recorder.trace] == replayed

    def test_save_load_round_trip(self, tmp_path):
        topology = Topology(3, 2)
        recorder = RecordingSource(make_uniform(topology))
        for now in range(500):
            recorder.injections(now)
        path = tmp_path / "trace.json"
        recorder.save(path)
        replay = TraceReplaySource.load(
            topology, WorkloadConfig(kind="uniform"), path
        )
        assert replay.trace == recorder.trace


class TestReplayValidation:
    def test_unsorted_rejected(self):
        topology = Topology(3, 2)
        with pytest.raises(WorkloadError):
            TraceReplaySource(
                topology, WorkloadConfig(kind="uniform"), [(5, 0, 1), (3, 0, 1)]
            )

    def test_bad_nodes_rejected(self):
        topology = Topology(3, 2)
        with pytest.raises(WorkloadError):
            TraceReplaySource(topology, WorkloadConfig(kind="uniform"), [(0, 99, 1)])
        with pytest.raises(WorkloadError):
            TraceReplaySource(topology, WorkloadConfig(kind="uniform"), [(0, 1, 1)])

    def test_pending_injections(self):
        topology = Topology(3, 2)
        replay = TraceReplaySource(
            topology, WorkloadConfig(kind="uniform"), [(0, 0, 1), (10, 1, 2)]
        )
        assert replay.pending_injections() == 2
        replay.injections(0)
        assert replay.pending_injections() == 1
        replay.injections(10)
        assert replay.pending_injections() == 0
