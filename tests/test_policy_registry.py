"""The policy plugin registry: listing, validation, labels, sweep grids."""

import pytest

from repro.config import DVSControlConfig, LinkConfig, SimulationConfig
from repro.core.levels import PAPER_TABLE
from repro.core.policy import HistoryDVSPolicy, StaticLevelPolicy
from repro.core.policy_zoo import ErrorCorrectionPolicy, OraclePolicy
from repro.core.registry import (
    PolicyBuildContext,
    PolicyKnob,
    build_policy,
    describe_registry,
    get_policy_spec,
    knob_values,
    policy_label,
    policy_sweep_grid,
    registered_policies,
)
from repro.errors import ConfigError


class TestListing:
    def test_all_builtin_policies_registered(self):
        names = registered_policies()
        for expected in (
            "none",
            "history",
            "static",
            "lu_only",
            "adaptive_threshold",
            "error_correction",
            "link_shutdown",
            "oracle",
        ):
            assert expected in names

    def test_listing_is_sorted(self):
        names = registered_policies()
        assert list(names) == sorted(names)

    def test_describe_registry_mentions_every_policy_and_knob(self):
        text = describe_registry()
        for name in registered_policies():
            assert name in text
        assert "static_level" in text
        assert "sleep_lu" in text
        assert "headroom" in text

    def test_spec_flags(self):
        assert get_policy_spec("history").uses_thresholds
        assert get_policy_spec("link_shutdown").controls_sleep
        assert not get_policy_spec("oracle").controls_sleep
        assert get_policy_spec("none").factory is None


class TestConfigValidation:
    def test_unknown_policy_rejected_with_registry_listing(self):
        with pytest.raises(ConfigError, match="registered policies"):
            DVSControlConfig(policy="does_not_exist")

    def test_unknown_param_rejected_listing_declared_knobs(self):
        with pytest.raises(ConfigError, match="declared knobs"):
            DVSControlConfig(policy="history", params={"gain": 2.0})

    def test_param_below_minimum_rejected(self):
        with pytest.raises(ConfigError, match="below"):
            DVSControlConfig(policy="oracle", params={"headroom": 0.0})

    def test_param_above_maximum_rejected(self):
        with pytest.raises(ConfigError, match="above"):
            DVSControlConfig(policy="error_correction", params={"error_rate": 1.5})

    def test_integer_knob_rejects_fractional_value(self):
        with pytest.raises(ConfigError, match="integer"):
            DVSControlConfig(policy="link_shutdown", params={"sleep_patience": 2.5})

    def test_non_numeric_param_rejected(self):
        with pytest.raises(ConfigError, match="number"):
            DVSControlConfig(policy="oracle", params={"headroom": "wide"})
        with pytest.raises(ConfigError, match="number"):
            DVSControlConfig(policy="oracle", params={"headroom": True})

    def test_valid_params_accepted(self):
        dvs = DVSControlConfig(policy="oracle", params={"headroom": 0.7})
        assert dvs.params["headroom"] == 0.7

    def test_static_level_outside_table_rejected_at_simulation_config(self):
        # DVSControlConfig alone cannot know the table size, so level 12
        # passes its bounds check; SimulationConfig re-validates against
        # the actual 10-level link table and rejects at config time.
        dvs = DVSControlConfig(policy="static", params={"static_level": 12})
        with pytest.raises(ConfigError, match="10-level"):
            SimulationConfig(dvs=dvs)

    def test_static_level_inside_table_accepted(self):
        dvs = DVSControlConfig(policy="static", params={"static_level": 9})
        config = SimulationConfig(dvs=dvs)
        assert config.dvs.params["static_level"] == 9

    def test_legacy_static_level_attr_still_validated(self):
        with pytest.raises(ConfigError, match="10-level"):
            SimulationConfig(dvs=DVSControlConfig(policy="static", static_level=10))


class TestKnobResolution:
    def test_params_override_legacy_attr(self):
        dvs = DVSControlConfig(
            policy="history", ewma_weight=5.0, params={"ewma_weight": 7.0}
        )
        assert knob_values(dvs)["ewma_weight"] == 7.0

    def test_legacy_attr_used_when_params_silent(self):
        dvs = DVSControlConfig(policy="history", ewma_weight=5.0)
        assert knob_values(dvs)["ewma_weight"] == 5.0

    def test_default_used_when_neither_given(self):
        dvs = DVSControlConfig(policy="oracle")
        assert knob_values(dvs)["headroom"] == 0.9

    def test_integer_knobs_resolve_to_ints(self):
        dvs = DVSControlConfig(policy="static", params={"static_level": 3.0})
        value = knob_values(dvs)["static_level"]
        assert value == 3 and isinstance(value, int)


class TestBuildPolicy:
    def test_history_factory_matches_config(self):
        dvs = DVSControlConfig(policy="history", ewma_weight=5.0)
        policy = build_policy(dvs, PolicyBuildContext())
        assert isinstance(policy, HistoryDVSPolicy)

    def test_static_factory_pins_level(self):
        dvs = DVSControlConfig(policy="static", params={"static_level": 4})
        policy = build_policy(dvs, PolicyBuildContext())
        assert isinstance(policy, StaticLevelPolicy)

    def test_oracle_factory_uses_context_table(self):
        policy = build_policy(
            DVSControlConfig(policy="oracle"),
            PolicyBuildContext(table=PAPER_TABLE),
        )
        assert isinstance(policy, OraclePolicy)
        assert policy.table is PAPER_TABLE

    def test_error_correction_seed_mixes_channel_index(self):
        dvs = DVSControlConfig(policy="error_correction")
        a = build_policy(dvs, PolicyBuildContext(channel_index=0))
        b = build_policy(dvs, PolicyBuildContext(channel_index=1))
        assert isinstance(a, ErrorCorrectionPolicy)
        assert a._seed != b._seed

    def test_none_builds_no_controller(self):
        with pytest.raises(ConfigError, match="builds no controller"):
            build_policy(DVSControlConfig(policy="none"))


class TestPolicyLabel:
    def test_defaults_render_as_bare_name(self):
        assert policy_label(DVSControlConfig(policy="history")) == "history"
        assert policy_label(DVSControlConfig(policy="none")) == "none"

    def test_non_default_knobs_rendered(self):
        dvs = DVSControlConfig(policy="static", params={"static_level": 3})
        assert policy_label(dvs) == "static(static_level=3)"

    def test_legacy_attr_shows_in_label(self):
        dvs = DVSControlConfig(policy="history", ewma_weight=7.0)
        assert policy_label(dvs) == "history(ewma_weight=7)"


class TestSweepGrid:
    def test_knob_free_policy_contributes_default_assignment(self):
        assert policy_sweep_grid("none") == [{}]

    def test_static_grid_covers_declared_sweep(self):
        grid = policy_sweep_grid("static")
        assert {g["static_level"] for g in grid} == {0, 3, 6, 9}

    def test_cartesian_product_over_multiple_swept_knobs(self):
        grid = policy_sweep_grid("link_shutdown")
        # sleep_lu x sleep_patience, 2 values each; unswept knobs pinned.
        assert len(grid) == 4
        assert all(set(g) == {"sleep_lu", "sleep_patience"} for g in grid)

    def test_every_grid_assignment_is_a_valid_config(self):
        for name in registered_policies():
            for assignment in policy_sweep_grid(name):
                DVSControlConfig(policy=name, params=dict(assignment))


class TestRegistration:
    def test_duplicate_name_rejected(self):
        from repro.core.registry import register_policy

        with pytest.raises(ConfigError, match="already registered"):

            @register_policy("history", description="imposter")
            def _imposter(dvs, context):  # pragma: no cover - never built
                raise AssertionError

    def test_duplicate_knob_name_rejected(self):
        from repro.core.registry import register_policy

        with pytest.raises(ConfigError, match="twice"):
            register_policy(
                "twice_knobbed",
                description="bad",
                knobs=(PolicyKnob("k"), PolicyKnob("k")),
            )
