"""Tests for threshold presets (paper Tables 1 and 2)."""

import pytest

from repro.core.thresholds import TABLE1_DEFAULT, TABLE2_SETTINGS, ThresholdSet
from repro.errors import ConfigError


class TestTable1:
    def test_paper_values(self):
        assert TABLE1_DEFAULT.low_uncongested == 0.3
        assert TABLE1_DEFAULT.high_uncongested == 0.4
        assert TABLE1_DEFAULT.low_congested == 0.6
        assert TABLE1_DEFAULT.high_congested == 0.7
        assert TABLE1_DEFAULT.congested_bu == 0.5

    def test_select_uncongested(self):
        assert TABLE1_DEFAULT.select(0.2) == (0.3, 0.4)

    def test_select_congested(self):
        assert TABLE1_DEFAULT.select(0.5) == (0.6, 0.7)
        assert TABLE1_DEFAULT.select(0.9) == (0.6, 0.7)

    def test_congested_pair_more_aggressive(self):
        # Higher thresholds step down at higher LU -> more power savings.
        assert TABLE1_DEFAULT.low_congested > TABLE1_DEFAULT.low_uncongested


class TestTable2:
    def test_six_settings(self):
        assert sorted(TABLE2_SETTINGS) == ["I", "II", "III", "IV", "V", "VI"]

    def test_paper_rows(self):
        expected = {
            "I": (0.2, 0.3),
            "II": (0.25, 0.35),
            "III": (0.3, 0.4),
            "IV": (0.35, 0.45),
            "V": (0.4, 0.5),
            "VI": (0.5, 0.6),
        }
        for name, (low, high) in expected.items():
            setting = TABLE2_SETTINGS[name]
            assert setting.low_uncongested == pytest.approx(low)
            assert setting.high_uncongested == pytest.approx(high)

    def test_setting_iii_is_table1(self):
        assert TABLE2_SETTINGS["III"] == TABLE1_DEFAULT

    def test_aggressiveness_increases(self):
        lows = [TABLE2_SETTINGS[k].low_uncongested for k in ("I", "II", "III", "IV", "V", "VI")]
        assert lows == sorted(lows)

    def test_congested_pair_shared(self):
        for setting in TABLE2_SETTINGS.values():
            assert setting.low_congested == 0.6
            assert setting.high_congested == 0.7


class TestValidation:
    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            ThresholdSet(low_uncongested=-0.1)
        with pytest.raises(ConfigError):
            ThresholdSet(congested_bu=1.5)

    def test_ordering(self):
        with pytest.raises(ConfigError):
            ThresholdSet(low_uncongested=0.5, high_uncongested=0.4)
        with pytest.raises(ConfigError):
            ThresholdSet(low_congested=0.7, high_congested=0.7)

    def test_with_light_load_pair(self):
        replaced = TABLE1_DEFAULT.with_light_load_pair(0.1, 0.2)
        assert replaced.low_uncongested == 0.1
        assert replaced.high_uncongested == 0.2
        assert replaced.low_congested == TABLE1_DEFAULT.low_congested
