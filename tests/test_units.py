"""Tests for repro.units."""

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.errors import ConfigError


class TestConversions:
    def test_mhz(self):
        assert units.mhz(125.0) == 125.0e6

    def test_ghz(self):
        assert units.ghz(1.0) == 1.0e9

    def test_microseconds(self):
        assert units.microseconds(10.0) == pytest.approx(10.0e-6)

    def test_milliseconds(self):
        assert units.milliseconds(1.0) == pytest.approx(1.0e-3)

    def test_milliwatts(self):
        assert units.milliwatts(23.6) == pytest.approx(0.0236)


class TestSecondsToCycles:
    def test_paper_voltage_transition(self):
        # 10 us at the 1 GHz router clock is 10,000 cycles.
        assert units.seconds_to_cycles(10.0e-6, 1.0e9) == 10_000

    def test_rounding(self):
        assert units.seconds_to_cycles(1.4e-9, 1.0e9) == 1
        assert units.seconds_to_cycles(1.6e-9, 1.0e9) == 2

    def test_zero_duration(self):
        assert units.seconds_to_cycles(0.0, 1.0e9) == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            units.seconds_to_cycles(-1.0e-6, 1.0e9)

    def test_bad_clock_rejected(self):
        with pytest.raises(ConfigError):
            units.seconds_to_cycles(1.0e-6, 0.0)

    @given(st.floats(min_value=1e-9, max_value=1e-2))
    def test_round_trip(self, duration):
        cycles = units.seconds_to_cycles(duration, 1.0e9)
        back = units.cycles_to_seconds(cycles, 1.0e9)
        assert back == pytest.approx(duration, abs=1e-9)


class TestCyclesToSeconds:
    def test_simple(self):
        assert units.cycles_to_seconds(1000, 1.0e9) == pytest.approx(1.0e-6)

    def test_bad_clock(self):
        with pytest.raises(ConfigError):
            units.cycles_to_seconds(10, -1.0)


class TestFemtojoules:
    """The integer energy unit of the batched sweep kernel's ledger."""

    def test_one_joule(self):
        assert units.joules_to_femtojoules(1.0) == 10**15

    def test_zero(self):
        assert units.joules_to_femtojoules(0.0) == 0
        assert units.femtojoules_to_joules(0) == 0.0

    def test_result_is_a_python_int(self):
        assert isinstance(units.joules_to_femtojoules(2.5), int)

    def test_link_cycle_scale(self):
        # One cycle at the paper's lowest-power point: 23.6 mW for 1 ns.
        assert units.joules_to_femtojoules(0.0236 * 1.0e-9) == 23_600

    def test_rounds_to_nearest(self):
        assert units.joules_to_femtojoules(1.4e-15) == 1
        assert units.joules_to_femtojoules(1.6e-15) == 2

    @given(st.integers(min_value=0, max_value=10**15))
    def test_integer_round_trip_is_exact(self, count):
        """fJ -> J -> fJ is lossless across the per-window energy scale."""
        back = units.joules_to_femtojoules(units.femtojoules_to_joules(count))
        assert back == count

    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_joules_round_trip_within_half_ulp(self, energy_j):
        """J -> fJ -> J round-trips to float precision over a full paper
        run's energy range (tens of joules)."""
        back = units.femtojoules_to_joules(units.joules_to_femtojoules(energy_j))
        assert back == pytest.approx(energy_j, rel=1e-12, abs=0.5e-15)

    def test_paper_run_energies_fit_the_int64_ledger(self):
        """The batched kernel stores fJ counts in int64: headroom to
        ~9223 J per link, three orders of magnitude above a real run."""
        assert units.joules_to_femtojoules(100.0) < 2**63 - 1
        assert units.joules_to_femtojoules(9_000.0) < 2**63 - 1

    def test_python_ints_do_not_overflow_beyond_the_ledger(self):
        huge = units.joules_to_femtojoules(1.0e6)
        assert isinstance(huge, int)
        assert huge == pytest.approx(10**21, rel=1e-12)
        assert units.femtojoules_to_joules(huge) == pytest.approx(1.0e6)


class TestBatchedEnergyLedger:
    def test_batched_ledger_equals_scalar_channel_energies(self):
        """Property: each member row of the batched kernel's integer
        ledger equals the scalar kernel's per-channel energies, converted
        channel by channel — so per-member sums are exact, not merely
        close."""
        import dataclasses

        from repro.network.batched import BatchedEngine
        from repro.network.simulator import Simulator

        from .conftest import small_config

        base = small_config(
            policy="history", rate=0.3, warmup=200, measure=600
        )
        configs = [
            dataclasses.replace(
                base, dvs=dataclasses.replace(base.dvs, ewma_weight=weight)
            )
            for weight in (1.0, 3.0, 7.0)
        ]
        engine = BatchedEngine(configs)
        engine.run()
        ledger = engine.member_energy_femtojoules()
        for member, config in enumerate(configs):
            scalar = Simulator(config)
            scalar.run()
            expected = []
            for channel in scalar.channels:
                channel.dvs.finalize(scalar.now)
                expected.append(
                    units.joules_to_femtojoules(channel.dvs.total_energy_j)
                )
            assert list(ledger[member]) == expected


class TestBandwidth:
    def test_paper_channel_max(self):
        # 8 serial links at 1 GHz with 4:1 mux = 32 Gb/s.
        assert units.bandwidth_bits_per_s(1.0e9, 8, 4) == pytest.approx(32.0e9)

    def test_paper_channel_min(self):
        assert units.bandwidth_bits_per_s(125.0e6, 8, 4) == pytest.approx(4.0e9)

    def test_bad_lanes(self):
        with pytest.raises(ConfigError):
            units.bandwidth_bits_per_s(1.0e9, 0, 4)
