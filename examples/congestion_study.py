#!/usr/bin/env python3
"""Network power under deepening congestion (Figure 12 in miniature).

Pushes offered load well past saturation with the history-based DVS policy
active and watches two curves: accepted throughput and normalized link
power. The paper's counterintuitive result: power keeps *rising* with
throughput past the first congestion signs — only when the whole network
congests and throughput collapses does power dip, because stalled links
show low utilization and the policy scales them down.

Run:  python examples/congestion_study.py
"""

from repro import (
    DVSControlConfig,
    LinkConfig,
    NetworkConfig,
    SimulationConfig,
    Simulator,
    WorkloadConfig,
)

RATES = (0.2, 0.5, 1.0, 2.0, 4.0, 8.0)


def run_at(rate: float):
    config = SimulationConfig(
        network=NetworkConfig(radix=4, dimensions=2),
        link=LinkConfig(
            voltage_transition_s=0.5e-6, frequency_transition_link_cycles=5
        ),
        dvs=DVSControlConfig(policy="history"),
        workload=WorkloadConfig(
            kind="two_level",
            injection_rate=rate,
            average_tasks=20,
            average_task_duration_s=20.0e-6,
            onoff_sources_per_task=16,
            seed=9,
        ),
        warmup_cycles=6_000,
        measure_cycles=20_000,
    )
    return Simulator(config).run()


def bar(value: float, peak: float, width: int = 28) -> str:
    return "#" * max(1, int(width * value / peak)) if peak else ""


def main() -> None:
    print("Driving a 4x4 mesh past saturation under history-based DVS...\n")
    results = [(rate, run_at(rate)) for rate in RATES]

    peak_throughput = max(r.accepted_rate for _, r in results)
    peak_power = max(r.power.normalized for _, r in results)

    print(f"{'offered':>8} {'accepted':>9} {'norm power':>11}   throughput / power")
    print("-" * 76)
    for _rate, result in results:
        print(
            f"{result.offered_rate:>8.3f} {result.accepted_rate:>9.3f} "
            f"{result.power.normalized:>11.3f}   "
            f"T|{bar(result.accepted_rate, peak_throughput):<28}| "
            f"P|{bar(result.power.normalized, peak_power):<28}|"
        )

    throughputs = [r.accepted_rate for _, r in results]
    powers = [r.power.normalized for _, r in results]
    knee = throughputs.index(max(throughputs))
    print(
        f"\nThroughput peaks at offered {results[knee][0]} packets/cycle; "
        f"power past the peak moves from {powers[knee]:.3f} to {powers[-1]:.3f}."
    )
    print(
        "Power tracks throughput, not offered load — congested links idle\n"
        "behind full buffers, look underutilized, and get scaled down."
    )


if __name__ == "__main__":
    main()
