"""Tests for the Orion-style router-core energy model."""

import pytest

from repro.errors import ConfigError
from repro.network.simulator import Simulator
from repro.power.orion import (
    OrionParameters,
    RouterEnergyCounters,
    RouterEnergyModel,
    core_energy_comparison,
)

from .conftest import small_config


class TestModel:
    def test_event_energies_positive_and_ordered(self):
        model = RouterEnergyModel()
        assert 0.0 < model.buffer_read_j < model.buffer_write_j
        assert model.crossbar_traversal_j > 0.0
        assert model.arbitration_j > 0.0
        # Arbitration is the cheap one — the paper's 81 mW observation.
        assert model.arbitration_j < model.buffer_write_j

    def test_peak_core_power_near_figure7_budget(self):
        """A fully loaded router's core should land near the Figure 7
        core budget (~1.37 W: 7.77 W total minus 6.4 W links)."""
        model = RouterEnergyModel()
        peak = model.peak_core_power_w(1.0e9)
        assert 0.3 <= peak <= 3.0

    def test_scaling_with_width(self):
        narrow = RouterEnergyModel(OrionParameters(flit_bits=16))
        wide = RouterEnergyModel(OrionParameters(flit_bits=64))
        assert wide.buffer_write_j > narrow.buffer_write_j
        assert wide.crossbar_traversal_j > narrow.crossbar_traversal_j

    def test_scaling_with_ports(self):
        small = RouterEnergyModel(OrionParameters(ports=3))
        large = RouterEnergyModel(OrionParameters(ports=9))
        assert large.crossbar_traversal_j > small.crossbar_traversal_j
        assert large.arbitration_j > small.arbitration_j

    def test_validation(self):
        with pytest.raises(ConfigError):
            OrionParameters(voltage_v=0.0)
        with pytest.raises(ConfigError):
            OrionParameters(ports=0)
        with pytest.raises(ConfigError):
            RouterEnergyModel().peak_core_power_w(0.0)

    def test_describe(self):
        assert "pJ" in RouterEnergyModel().describe()


class TestCounters:
    def test_from_simulator(self):
        simulator = Simulator(small_config(rate=0.3, measure=2_000))
        simulator.run_cycles(2_000)
        counters = RouterEnergyCounters.from_simulator(simulator)
        assert counters.flits_switched > 0
        assert counters.flits_ejected > 0

    def test_energy_monotone_in_activity(self):
        model = RouterEnergyModel()
        quiet = RouterEnergyCounters(flits_switched=10, flits_ejected=10)
        busy = RouterEnergyCounters(flits_switched=100, flits_ejected=100)
        assert busy.energy_j(model) > quiet.energy_j(model)

    def test_ejection_cheaper_than_switching(self):
        model = RouterEnergyModel()
        switched = RouterEnergyCounters(flits_switched=100).energy_j(model)
        ejected = RouterEnergyCounters(flits_ejected=100).energy_j(model)
        assert ejected < switched


class TestPaperClaim:
    def test_core_power_insensitive_to_dvs(self):
        """Paper Section 4.2: 'router power consumption does not vary much
        with and without DVS links' — same traffic delivered means the
        same buffer/crossbar event counts."""
        config = small_config(rate=0.3, warmup=500, measure=4_000)
        baseline = Simulator(config)
        baseline.run()
        from repro.config import DVSControlConfig

        dvs = Simulator(config.with_dvs(DVSControlConfig(policy="history")))
        dvs.run()
        base_w, dvs_w, change = core_energy_comparison(baseline, dvs, 1.0e9)
        assert base_w > 0.0
        assert abs(change) < 0.25

    def test_comparison_requires_run(self):
        config = small_config()
        fresh = Simulator(config)
        with pytest.raises(ConfigError):
            core_energy_comparison(fresh, fresh, 1.0e9)
