"""Fixture: R3 (traffic contract), R4 (observer skip-safety), R5 (config),
R6 (hot-path allocation)."""

from dataclasses import dataclass
from typing import Callable

from repro.instrument.bus import Observer
from repro.traffic.base import TrafficSource


class UnpredictableTraffic(TrafficSource):  # one R3 violation
    def injections(self, now):
        return []


class PredictableTraffic(TrafficSource):  # clean: overrides the predictor
    def injections(self, now):
        return []

    def next_injection_cycle(self, now):
        return now + 1


class GreedyObserver(Observer):  # one R4 violation
    def on_cycle(self, now):
        pass


class DeclaredObserver(Observer):  # clean: documents the intent
    unskippable = True

    def on_cycle(self, now):
        pass


@dataclass(frozen=True)
class CallbackConfig:  # one R5 violation: a callable cannot be a cache key
    rate: float = 1.0
    on_drop: Callable[[int], None] = print


def collect_ready(queues) -> int:  # repro-hot
    ready = []  # one R6 violation: list literal in a hot function
    for queue in queues:
        if queue:
            ready.append(queue[0])
    return len(ready)


def snapshot_counts(pairs):  # repro-hot
    # Suppressed R6: must NOT be reported.
    table = dict(pairs)  # repro-lint: ignore[R6]
    if not table:
        raise ValueError(f"no pairs in {list(pairs)!r}")  # clean: raise path
    return table
