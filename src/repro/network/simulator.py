"""The measurement-phase facade over the cycle kernel.

:class:`Simulator` is the Python counterpart of the paper's C++ simulator
(Section 4.1): warm up, measure, summarize. Since the kernel split it is a
thin facade — the simulated hardware (topology, routers, DVS channels,
controllers, traffic, the event loop) lives in
:class:`~repro.network.engine.SimulationEngine`, and every measured
quantity is an observer on the engine's
:class:`~repro.instrument.bus.InstrumentBus`:

* a :class:`~repro.instrument.observers.MeasurementMeter` for offered /
  ejected counts and packet latencies,
* a :class:`~repro.instrument.observers.PowerObserver` wrapping the
  :class:`~repro.power.accounting.PowerAccountant`,
* an optional :class:`~repro.instrument.observers.SeriesObserver` when a
  ``series_window`` is requested,
* one :class:`~repro.instrument.observers.ProbeObserver` per profiling
  probe added through :meth:`Simulator.attach_probe`.

Extra observers (e.g. a
:class:`~repro.instrument.trace.TraceRecorder`) attach through
``simulator.bus`` without touching either layer. The facade preserves the
pre-split public surface — ``simulator.latency``, ``.accountant``,
``.series``, ``.total_ejected_packets`` and friends keep working — and its
results are bit-identical to the monolithic simulator for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SimulationConfig
from ..errors import ConfigError, SimulationError
from ..instrument.bus import InstrumentBus
from ..instrument.observers import (
    MeasurementMeter,
    PowerObserver,
    ProbeObserver,
    SeriesObserver,
)
from ..metrics.latency import LatencyCollector, LatencyStats
from ..metrics.timeseries import WindowedSeries
from ..metrics.utilization import UtilizationProbe
from ..power.accounting import PowerAccountant, PowerReport
from .engine import SimulationEngine


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Everything a harness needs from one simulation run.

    Rates are network-wide packets per router cycle, measured over the
    measurement phase only.
    """

    config: SimulationConfig
    measure_cycles: int
    offered_packets: int
    ejected_packets: int
    offered_rate: float
    accepted_rate: float
    latency: LatencyStats
    power: PowerReport
    mean_level: float
    requests_dropped: int
    series: dict[str, WindowedSeries] = field(default_factory=dict)


class Simulator(SimulationEngine):
    """One fully wired network simulation with the standard measurement stack."""

    def __init__(
        self,
        config: SimulationConfig,
        *,
        traffic=None,
        series_window: int = 0,
        bus: InstrumentBus | None = None,
        fast_forward: bool = True,
        sanitize: bool = False,
    ):
        if series_window < 0:
            raise ConfigError("series window cannot be negative")
        super().__init__(
            config,
            traffic=traffic,
            bus=bus,
            fast_forward=fast_forward,
            sanitize=sanitize,
        )
        self.series_window = series_window

        self.accountant = PowerAccountant(
            [channel.dvs for channel in self.channels],
            config.network.router_clock_hz,
        )
        self.probes: list[UtilizationProbe] = []

        self._meter = MeasurementMeter()
        self.bus.attach(self._meter)
        self._power_observer = PowerObserver(self.accountant)
        self.bus.attach(self._power_observer)
        self._series_observer: SeriesObserver | None = None
        if series_window:
            self._series_observer = SeriesObserver(
                series_window,
                self.channels,
                self.accountant,
                config.network.router_clock_hz,
                self._meter,
            )
            self.bus.attach(self._series_observer)

    # ------------------------------------------------------------------
    # Legacy measurement surface (pre-split attribute names)
    # ------------------------------------------------------------------

    @property
    def latency(self) -> LatencyCollector:
        return self._meter.latency

    @property
    def total_ejected_packets(self) -> int:
        return self._meter.total_ejected

    @property
    def offered_measured(self) -> int:
        return self._meter.offered

    @property
    def ejected_measured(self) -> int:
        return self._meter.ejected

    @property
    def _measuring(self) -> bool:
        return self._meter.measuring

    @property
    def _measure_start(self) -> int:
        return self._meter.measure_start

    @property
    def series(self) -> dict[str, WindowedSeries]:
        if self._series_observer is None:
            return {}
        return self._series_observer.series

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------

    def attach_probe(
        self, src_node: int, src_port: int, *, window_cycles: int = 50
    ) -> UtilizationProbe:
        """Attach a Figure-3/4/5 profiling probe to one channel.

        The probe watches the channel leaving ``src_node`` through
        ``src_port`` and the downstream input port it feeds, including a
        buffer-age tap.
        """
        channel = self.routers[src_node].channels[src_port]
        if channel is None:
            raise ConfigError(f"node {src_node} has no channel on port {src_port}")
        spec = channel.spec
        downstream = self.routers[spec.dst_node]
        tracker = downstream.occupancy[spec.dst_port]
        probe = UtilizationProbe(
            channel.dvs,
            tracker,
            window_cycles=window_cycles,
            buffer_capacity=self.config.network.buffers_per_port,
        )
        downstream.age_hooks.setdefault(spec.dst_port, []).append(probe.on_age)
        self.probes.append(probe)
        self.bus.attach(ProbeObserver(probe))
        # Probe windows have always closed before the series window on
        # shared boundary cycles; keep the series observer last.
        window_hooks = self.bus.window_hooks
        if self._series_observer is not None and self._series_observer in window_hooks:
            window_hooks.remove(self._series_observer)
            window_hooks.append(self._series_observer)
        return probe

    # ------------------------------------------------------------------
    # Measurement lifecycle
    # ------------------------------------------------------------------

    def begin_measurement(self) -> None:
        """End warmup: reset collectors and start the measured phase."""
        now = self.now
        self._meter.begin(now)
        self._power_observer.begin(now)
        if self._series_observer is not None:
            self._series_observer.begin(now)
        for probe in self.probes:
            probe.reset()
        self.bus.mark("measurement_begin", now)

    def run(self) -> SimulationResult:
        """Warmup, measure, and summarize per the configuration."""
        self.run_cycles(self.config.warmup_cycles)
        self.begin_measurement()
        self.run_cycles(self.config.measure_cycles)
        return self.finish()

    def finish(self) -> SimulationResult:
        """Summarize the measurement phase ending now."""
        now = self.now
        meter = self._meter
        if not meter.measuring:
            raise SimulationError("finish() before begin_measurement()")
        measure_cycles = now - meter.measure_start
        if measure_cycles <= 0:
            raise SimulationError("measurement phase is empty")
        power = self.accountant.report(now)
        self.bus.mark("measurement_end", now)
        return SimulationResult(
            config=self.config,
            measure_cycles=measure_cycles,
            offered_packets=meter.offered,
            ejected_packets=meter.ejected,
            offered_rate=meter.offered / measure_cycles,
            accepted_rate=meter.ejected / measure_cycles,
            latency=meter.latency.stats(),
            power=power,
            mean_level=self.accountant.mean_level(),
            requests_dropped=sum(c.requests_dropped for c in self.controllers),
            series=dict(self.series),
        )
