"""Unit conversion helpers.

The simulator's native time base is *router clock cycles*. The paper's
router runs at 1 GHz, so one cycle is one nanosecond, but nothing in the
codebase hardwires that: conversions always go through an explicit router
frequency.

Frequencies are stored in hertz, voltages in volts, power in watts and
energy in joules throughout the package; these helpers exist so call sites
can speak the paper's units (MHz, us, mW) without sprinkling powers of ten.
"""

from __future__ import annotations

from typing import NewType

from .errors import ConfigError

# -- Quantity NewTypes -------------------------------------------------------
# One NewType per dimension the model cares about. They are erased at
# runtime (``Hertz(x)`` is ``x``) and each is a subtype of its base, so
# annotating *return* positions is free for existing callers while giving
# mypy — and the repo's own R10 dimension pass (repro.analysis.dimensions)
# — a declared dimension to propagate. Parameter positions deliberately
# stay ``float``/``int``: forcing every call site to wrap literals would
# add noise without catching more bugs than R10's suffix conventions do.

#: Router/link clock cycles (the simulator's native time base).
Cycles = NewType("Cycles", int)
#: Link supply voltage.
Volts = NewType("Volts", float)
#: Clock frequency.
Hertz = NewType("Hertz", float)
#: Power in milliwatts (the paper's Table 1 unit).
Milliwatts = NewType("Milliwatts", float)
#: Integer femtojoules — the batched kernel's exact energy ledger unit.
Femtojoules = NewType("Femtojoules", int)
#: Energy in joules.
Joules = NewType("Joules", float)

#: Hertz in one megahertz.
MHZ = 1.0e6
#: Hertz in one gigahertz.
GHZ = 1.0e9
#: Seconds in one nanosecond.
NS = 1.0e-9
#: Seconds in one microsecond.
US = 1.0e-6
#: Seconds in one millisecond.
MS = 1.0e-3
#: Watts in one milliwatt.
MW = 1.0e-3
#: Joules in one microjoule.
UJ = 1.0e-6
#: Joules in one femtojoule — the integer energy unit of the batched
#: sweep kernel's per-link ledger (see :mod:`repro.network.batched`).
FJ = 1.0e-15


def mhz(value: float) -> Hertz:
    """Return *value* megahertz expressed in hertz."""
    return Hertz(value * MHZ)


def ghz(value: float) -> Hertz:
    """Return *value* gigahertz expressed in hertz."""
    return Hertz(value * GHZ)


def microseconds(value: float) -> float:
    """Return *value* microseconds expressed in seconds."""
    return value * US


def milliseconds(value: float) -> float:
    """Return *value* milliseconds expressed in seconds."""
    return value * MS


def milliwatts(value: float) -> float:
    """Return *value* milliwatts expressed in watts."""
    return value * MW


def seconds_to_cycles(duration_s: float, clock_hz: float) -> Cycles:
    """Convert a duration in seconds to whole clock cycles (rounded).

    Raises :class:`ConfigError` for a non-positive clock, which would
    otherwise silently produce nonsense cycle counts.
    """
    if clock_hz <= 0.0:
        raise ConfigError(f"clock frequency must be positive, got {clock_hz!r}")
    if duration_s < 0.0:
        raise ConfigError(f"duration must be non-negative, got {duration_s!r}")
    return Cycles(int(round(duration_s * clock_hz)))


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Convert a cycle count at *clock_hz* to seconds."""
    if clock_hz <= 0.0:
        raise ConfigError(f"clock frequency must be positive, got {clock_hz!r}")
    return cycles / clock_hz


def joules_to_femtojoules(energy_j: float) -> Femtojoules:
    """Convert *energy_j* joules to integer femtojoules (nearest).

    The batched sweep kernel keeps per-link energy in integer femtojoule
    ledgers so per-config sums are exact (integer addition commutes;
    float summation does not). One femtojoule resolves the smallest
    energies in the model by a wide margin — a single link cycle at the
    lowest power point is ~23,600 fJ — and Python integers cannot
    overflow. The conversion is faithful for any magnitude this simulator
    produces: below 2**53 fJ (~9 J) every integer femtojoule count is
    representable, so the conversion is exact to the half-ulp of the
    input float, and the kernel's per-link ``int64`` ledger has headroom
    to ~9223 J per link — three orders of magnitude above a full paper
    run's total.
    """
    return Femtojoules(round(energy_j / FJ))


def femtojoules_to_joules(energy_fj: int) -> Joules:
    """Convert integer femtojoules back to joules (floating point)."""
    return Joules(energy_fj * FJ)


def bandwidth_bits_per_s(link_hz: float, lanes: int, mux_ratio: int) -> float:
    """Raw channel bandwidth for *lanes* serial links at *link_hz*.

    Each serial link carries ``mux_ratio`` bits per link clock (the paper's
    links use 4:1 multiplexing, i.e. 4 Gb/s at 1 GHz).
    """
    if lanes <= 0 or mux_ratio <= 0:
        raise ConfigError("lanes and mux_ratio must be positive")
    return link_hz * lanes * mux_ratio
