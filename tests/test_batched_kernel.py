"""Tests for the batched lockstep sweep kernel (repro.network.batched).

The load-bearing suite is :class:`TestGoldenEquivalence`: for **every**
policy in the registry, a knob-divergent batch on the 8x8 reference mesh
must produce results *strictly equal* (``==``, not approximately equal)
to running the scalar kernel once per config. Equality here covers every
SimulationResult field — counters, latencies, power, energy — so any
drift between the two kernels fails loudly.
"""

from __future__ import annotations

import dataclasses
import types

import pytest

from repro.core.registry import get_policy_spec, policy_sweep_grid, registered_policies
from repro.core.thresholds import TABLE2_SETTINGS
from repro.errors import ConfigError, SimulationError
from repro.network import batched
from repro.network.batched import (
    BatchedEngine,
    compatibility_key,
    plan_batches,
    require_numpy,
    run_batch,
)
from repro.network.simulator import Simulator

from .conftest import small_config


def reference_config(policy: str, **kwargs):
    """The 8x8 golden-equivalence scenario: two_level traffic, fast link."""
    defaults = dict(
        radix=8,
        policy=policy,
        rate=0.6,
        warmup=200,
        measure=400,
        workload_kind="two_level",
        seed=7,
        average_tasks=5,
        average_task_duration_s=3.0e-6,
    )
    defaults.update(kwargs)
    return small_config(**defaults)


def knob_variants(policy: str, base):
    """Batch members for *policy*: registry sweep-grid knob assignments,
    plus Table 2 threshold settings for threshold-reading policies. All
    share *base*'s compatibility key by construction."""
    spec = get_policy_spec(policy)
    configs = [
        dataclasses.replace(
            base, dvs=dataclasses.replace(base.dvs, params=params)
        )
        for params in policy_sweep_grid(policy)[:3]
    ]
    if spec.uses_thresholds:
        configs.extend(
            dataclasses.replace(
                base, dvs=dataclasses.replace(base.dvs, thresholds=setting)
            )
            for setting in (TABLE2_SETTINGS["I"], TABLE2_SETTINGS["VI"])
        )
    return configs


class TestGoldenEquivalence:
    @pytest.mark.parametrize("policy", registered_policies())
    def test_every_registered_policy_is_bit_identical(self, policy):
        configs = knob_variants(policy, reference_config(policy))
        engine = BatchedEngine(configs)
        batched_results = engine.run()
        for config, result in zip(configs, batched_results, strict=False):
            assert Simulator(config).run() == result

    def test_divergent_history_sweep_splits_and_stays_identical(self):
        base = reference_config("history", radix=4, measure=600)
        configs = [
            dataclasses.replace(
                base,
                dvs=dataclasses.replace(
                    base.dvs, thresholds=thresholds, ewma_weight=weight
                ),
            )
            for weight in (1.0, 3.0)
            for thresholds in (TABLE2_SETTINGS["I"], TABLE2_SETTINGS["IV"])
        ]
        engine = BatchedEngine(configs)
        results = engine.run()
        assert engine.splits > 0
        assert engine.class_count > 1
        for config, result in zip(configs, results, strict=False):
            assert Simulator(config).run() == result

    def test_convergent_batch_stays_one_class(self):
        base = reference_config("static", radix=4)
        configs = [base] * 4
        engine = BatchedEngine(configs)
        results = engine.run()
        assert engine.class_count == 1
        assert engine.splits == 0
        scalar = Simulator(base).run()
        assert all(result == scalar for result in results)

    def test_run_batch_convenience_matches_engine(self):
        base = reference_config("none", radix=4)
        assert run_batch([base]) == [Simulator(base).run()]


class TestCompatibilityKey:
    def test_knob_variants_share_a_key(self):
        base = reference_config("history", radix=4)
        for variant in knob_variants("history", base):
            assert compatibility_key(variant) == compatibility_key(base)

    @pytest.mark.parametrize(
        "change",
        [
            dict(rate=0.3),
            dict(seed=8),
            dict(radix=3),
            dict(measure=500),
            dict(policy="static"),
        ],
    )
    def test_everything_else_changes_the_key(self, change):
        base = reference_config("history", radix=4)
        merged = {"policy": "history", "radix": 4, **change}
        other = reference_config(merged.pop("policy"), **merged)
        assert compatibility_key(other) != compatibility_key(base)


class TestPlanBatches:
    def test_groups_by_key_preserving_order(self):
        a = reference_config("history", radix=4)
        b = reference_config("history", radix=4, seed=9)
        a2 = dataclasses.replace(
            a, dvs=dataclasses.replace(a.dvs, ewma_weight=5.0)
        )
        batches = plan_batches([a, b, a2, b])
        assert batches == [[0, 2], [1, 3]]

    def test_max_batch_chunks_a_group(self):
        base = reference_config("history", radix=4)
        batches = plan_batches([base] * 5, max_batch=2)
        assert batches == [[0, 1], [2, 3], [4]]

    def test_bad_max_batch_rejected(self):
        with pytest.raises(ConfigError):
            plan_batches([], max_batch=0)


class TestEngineSurface:
    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigError, match="at least one config"):
            BatchedEngine([])

    def test_mixed_compatibility_keys_rejected(self):
        a = reference_config("history", radix=4)
        b = reference_config("history", radix=4, seed=9)
        with pytest.raises(ConfigError, match="compatibility key"):
            BatchedEngine([a, b])

    def test_run_is_single_shot(self):
        engine = BatchedEngine([reference_config("none", radix=3)])
        engine.run()
        with pytest.raises(SimulationError, match="only be called once"):
            engine.run()

    def test_energy_ledger_shape_and_integrality(self):
        np = require_numpy()
        base = reference_config("history", radix=3)
        engine = BatchedEngine(knob_variants("history", base))
        engine.run()
        ledger = engine.member_energy_femtojoules()
        assert ledger.shape[0] == engine.n_members
        assert ledger.shape[1] > 0
        assert ledger.dtype == np.int64
        assert (ledger > 0).all()


class TestNumpyGate:
    def test_missing_numpy_is_a_config_error(self, monkeypatch):
        monkeypatch.setattr(batched, "_np", None)
        with pytest.raises(ConfigError, match="--kernel scalar"):
            require_numpy()

    def test_old_numpy_is_a_config_error(self, monkeypatch):
        monkeypatch.setattr(
            batched, "_np", types.SimpleNamespace(__version__="1.8.0")
        )
        with pytest.raises(ConfigError, match="1.8.0"):
            require_numpy()

    def test_engine_construction_checks_numpy(self, monkeypatch):
        monkeypatch.setattr(batched, "_np", None)
        with pytest.raises(ConfigError, match="numpy"):
            BatchedEngine([reference_config("none", radix=3)])

    def test_backend_construction_checks_numpy(self, monkeypatch):
        from repro.harness.backends import BatchedBackend

        monkeypatch.setattr(batched, "_np", None)
        with pytest.raises(ConfigError, match="numpy"):
            BatchedBackend()

    @pytest.mark.parametrize(
        "text,expected",
        [("1.22.4", (1, 22)), ("2.4.6", (2, 4)), ("1.22rc1", (1, 22)), ("", (0, 0))],
    )
    def test_version_parsing(self, text, expected):
        assert batched._version_tuple(text) == expected
