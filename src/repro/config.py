"""Configuration objects for the whole system.

Four frozen dataclasses describe a simulation — :class:`NetworkConfig` (the
router/topology substrate), :class:`LinkConfig` (the DVS links),
:class:`DVSControlConfig` (the policy layer) and :class:`WorkloadConfig`
(traffic) — bundled into a :class:`SimulationConfig` with run-control
parameters. Defaults reproduce the paper's Section 4.2 setup: an 8x8 mesh
of 1 GHz routers with two VCs and 128 flit buffers per input port, 5-flit
packets, 13-stage pipelines, 8-lane DVS channels spanning 125 MHz/0.9 V to
1 GHz/2.5 V in ten levels, and the Table 1 policy parameters.

All configs validate in ``__post_init__`` and raise
:class:`~repro.errors.ConfigError` on inconsistency, so a bad experiment
fails at construction rather than mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .core.dvs_link import TransitionTiming
from .core.levels import VFTable
from .core.power_model import LinkPowerModel, RegulatorModel
from .core.registry import validate_dvs_config
from .core.thresholds import TABLE1_DEFAULT, ThresholdSet
from .errors import ConfigError

# Policy names live in the policy registry (:mod:`repro.core.registry`);
# use ``registered_policies()`` instead of the removed POLICY_NAMES tuple.
#: Workload names accepted by :class:`WorkloadConfig`.
WORKLOAD_NAMES = ("two_level", "uniform", "permutation")
#: Routing names accepted by :class:`NetworkConfig`.
ROUTING_NAMES = ("dor", "adaptive")


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Topology and router microarchitecture (paper Section 4.2)."""

    radix: int = 8
    dimensions: int = 2
    wraparound: bool = False
    vcs_per_port: int = 2
    buffers_per_port: int = 128
    flits_per_packet: int = 5
    router_clock_hz: float = 1.0e9
    pipeline_depth: int = 13
    credit_delay: int = 4
    routing: str = "dor"

    def __post_init__(self) -> None:
        if self.radix < 2 or self.dimensions < 1:
            raise ConfigError("radix must be >= 2 and dimensions >= 1")
        if self.vcs_per_port < 1:
            raise ConfigError("need at least one VC per port")
        if self.buffers_per_port < self.vcs_per_port:
            raise ConfigError("need at least one buffer slot per VC")
        if self.flits_per_packet < 1:
            raise ConfigError("packets need at least one flit")
        if self.router_clock_hz <= 0.0:
            raise ConfigError("router clock must be positive")
        if self.pipeline_depth < 1:
            raise ConfigError("pipeline depth must be >= 1")
        if self.credit_delay < 1:
            raise ConfigError("credit delay must be >= 1 cycle")
        if self.routing not in ROUTING_NAMES:
            raise ConfigError(
                f"unknown routing {self.routing!r}; choose from {ROUTING_NAMES}"
            )
        if self.routing == "adaptive" and self.wraparound:
            raise ConfigError("adaptive routing is supported on meshes only")
        if self.wraparound and self.vcs_per_port < 2:
            raise ConfigError("torus routing needs >= 2 VCs (dateline)")

    @property
    def node_count(self) -> int:
        return self.radix**self.dimensions

    @property
    def buffers_per_vc(self) -> int:
        """Flit slots per VC (the per-port pool split evenly)."""
        return self.buffers_per_port // self.vcs_per_port

    @property
    def pipeline_latency(self) -> int:
        """Cycles a flit spends in flight between SA win upstream and
        arrival downstream (the pipeline minus the cycle SA itself takes)."""
        return self.pipeline_depth - 1


@dataclass(frozen=True, slots=True)
class LinkConfig:
    """DVS link electrical model (paper Sections 2 and 4.2)."""

    levels: int = 10
    min_frequency_hz: float = 125.0e6
    max_frequency_hz: float = 1.0e9
    min_voltage_v: float = 0.9
    max_voltage_v: float = 2.5
    lanes: int = 8
    mux_ratio: int = 4
    low_power_w: float = 23.6e-3
    high_power_w: float = 200.0e-3
    filter_capacitance_f: float = 5.0e-6
    regulator_efficiency: float = 0.9
    voltage_transition_s: float = 10.0e-6
    frequency_transition_link_cycles: int = 100
    #: Retention rail applied when a shutdown-capable policy sleeps the
    #: channel below level 0; only the bias (leakage) term draws power.
    sleep_retention_voltage_v: float = 0.3
    #: Cycles after a wake completes during which re-sleep is refused,
    #: bounding worst-case sleep/wake thrash (2 default history windows).
    sleep_wake_lockout_cycles: int = 400

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ConfigError("need at least two DVS levels")
        if self.min_frequency_hz >= self.max_frequency_hz:
            raise ConfigError("min link frequency must be below max")
        if self.lanes < 1 or self.mux_ratio < 1:
            raise ConfigError("lanes and mux ratio must be positive")
        if not 0.0 < self.sleep_retention_voltage_v < self.min_voltage_v:
            raise ConfigError(
                "sleep retention voltage must lie in (0, min_voltage_v)"
            )
        if self.sleep_wake_lockout_cycles < 0:
            raise ConfigError("sleep wake lockout must be non-negative")
        # Remaining electrical parameters are validated by the model
        # builders below; build them once here to fail fast.
        self.build_table()
        self.build_power_model()
        self.build_regulator()
        self.build_timing()

    def build_table(self) -> VFTable:
        """The channel's voltage/frequency table."""
        return VFTable.from_endpoints(
            levels=self.levels,
            min_frequency_hz=self.min_frequency_hz,
            max_frequency_hz=self.max_frequency_hz,
            min_voltage_v=self.min_voltage_v,
            max_voltage_v=self.max_voltage_v,
        )

    def build_power_model(self) -> LinkPowerModel:
        """Per-link power model fitted through the endpoint anchors."""
        from .core.levels import VFOperatingPoint

        return LinkPowerModel(
            low_anchor=VFOperatingPoint(self.min_frequency_hz, self.min_voltage_v),
            low_power_w=self.low_power_w,
            high_anchor=VFOperatingPoint(self.max_frequency_hz, self.max_voltage_v),
            high_power_w=self.high_power_w,
        )

    def build_regulator(self) -> RegulatorModel:
        return RegulatorModel(
            filter_capacitance_f=self.filter_capacitance_f,
            efficiency=self.regulator_efficiency,
        )

    def build_timing(self) -> TransitionTiming:
        return TransitionTiming(
            voltage_transition_s=self.voltage_transition_s,
            frequency_transition_link_cycles=self.frequency_transition_link_cycles,
        )


@dataclass(frozen=True, slots=True)
class DVSControlConfig:
    """Which DVS policy runs at each output port, and its parameters.

    ``policy`` names an entry of the policy registry
    (:mod:`repro.core.registry`); ``params`` carries that policy's knob
    values as a JSON-serializable mapping, validated against the
    registered schema here (bounds, integrality, unknown keys) and again
    by :class:`SimulationConfig` against the actual V/F table size for
    level-indexed knobs. The legacy attributes ``ewma_weight`` and
    ``static_level`` remain as aliases for the knobs of the same name;
    an explicit ``params`` entry takes precedence.
    """

    policy: str = "history"
    thresholds: ThresholdSet = TABLE1_DEFAULT
    ewma_weight: float = 3.0
    history_window: int = 200
    static_level: int = 0
    initial_level: int | None = None
    params: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ewma_weight <= 0.0:
            raise ConfigError("EWMA weight must be positive")
        if self.history_window <= 0:
            raise ConfigError("history window must be positive")
        if self.static_level < 0:
            raise ConfigError("static level must be non-negative")
        # Registry schema validation: unknown policy names (the error
        # lists every registered policy and its knobs), unknown param
        # keys, out-of-range and non-integral knob values.
        validate_dvs_config(self)

    @property
    def enabled(self) -> bool:
        """Whether any per-window control runs at all."""
        return self.policy != "none"


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """Traffic model (paper Section 4.3).

    ``injection_rate`` is the offered load in packets per router cycle
    summed over the whole network (the paper's x-axis unit).
    """

    kind: str = "two_level"
    injection_rate: float = 1.0
    seed: int = 1
    # two-level model parameters
    average_tasks: int = 100
    average_task_duration_s: float = 1.0e-3
    task_duration_jitter: float = 0.5
    onoff_sources_per_task: int = 128
    on_shape: float = 1.4
    off_shape: float = 1.2
    #: Location parameter of the Pareto ON-period distribution, in router
    #: cycles — sets the typical burst length (unpublished in the paper;
    #: see DESIGN.md substitution notes).
    on_location_cycles: float = 800.0
    #: Packet spacing within a burst, in router cycles — sets the burst
    #: line rate (also unpublished). The default of 40 cycles puts a
    #: source's peak line rate (5 flits / 40 cycles) at the minimum-level
    #: channel bandwidth, so single bursts do not swamp a fully
    #: down-scaled link.
    peak_interval_cycles: float = 40.0
    locality_radius: int = 2
    locality_probability: float = 0.8
    # permutation parameter
    permutation: str = "transpose"

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_NAMES:
            raise ConfigError(
                f"unknown workload {self.kind!r}; choose from {WORKLOAD_NAMES}"
            )
        if self.injection_rate < 0.0:
            raise ConfigError("injection rate cannot be negative")
        if self.average_tasks < 1:
            raise ConfigError("need at least one task session")
        if self.average_task_duration_s <= 0.0:
            raise ConfigError("task duration must be positive")
        if not 0.0 <= self.task_duration_jitter < 1.0:
            raise ConfigError("task duration jitter must be in [0, 1)")
        if self.onoff_sources_per_task < 1:
            raise ConfigError("need at least one ON/OFF source per task")
        if not 1.0 < self.on_shape < 2.0 or not 1.0 < self.off_shape < 2.0:
            raise ConfigError(
                "Pareto shapes must lie in (1, 2) for finite-mean, "
                "infinite-variance (self-similar) behaviour"
            )
        if self.on_location_cycles <= 0.0 or self.peak_interval_cycles <= 0.0:
            raise ConfigError("burst location and spacing must be positive")
        if self.locality_radius < 1:
            raise ConfigError("locality radius must be >= 1")
        if not 0.0 <= self.locality_probability <= 1.0:
            raise ConfigError("locality probability must be in [0, 1]")

    def with_rate(self, injection_rate: float) -> "WorkloadConfig":
        """Copy with a different offered load (sweep helper)."""
        return replace(self, injection_rate=injection_rate)


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """A complete, runnable experiment description."""

    network: NetworkConfig = field(default_factory=NetworkConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    dvs: DVSControlConfig = field(default_factory=DVSControlConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    warmup_cycles: int = 2_000
    measure_cycles: int = 10_000

    def __post_init__(self) -> None:
        if self.warmup_cycles < 0:
            raise ConfigError("warmup cycles cannot be negative")
        if self.measure_cycles <= 0:
            raise ConfigError("measurement phase must be positive")
        # Re-validate the policy knobs against the actual table size so a
        # level-indexed knob (e.g. ``static_level``) outside this link's
        # V/F table fails at construction rather than mid-run.
        validate_dvs_config(self.dvs, levels=self.link.levels)

    @property
    def total_cycles(self) -> int:
        return self.warmup_cycles + self.measure_cycles

    def with_workload(self, workload: WorkloadConfig) -> "SimulationConfig":
        return replace(self, workload=workload)

    def with_rate(self, injection_rate: float) -> "SimulationConfig":
        """Copy with a different offered load."""
        return replace(self, workload=self.workload.with_rate(injection_rate))

    def with_dvs(self, dvs: DVSControlConfig) -> "SimulationConfig":
        return replace(self, dvs=dvs)

    def fingerprint(self) -> str:
        """Canonical JSON describing this experiment, for content addressing.

        Two configs with equal fingerprints describe bit-identical
        simulations (the workload seed is part of the workload config, so
        it is part of the fingerprint). The sweep result cache keys on
        this plus a code epoch; see :mod:`repro.harness.cache`.
        """
        # Imported lazily: the harness imports this module at load time.
        from .harness.serialization import canonical_json

        return canonical_json(self)


def paper_baseline_config(**overrides) -> SimulationConfig:
    """The paper's Section 4.2 configuration (possibly overridden).

    Keyword overrides address the four sub-configs by name, e.g.
    ``paper_baseline_config(dvs=DVSControlConfig(policy="none"))``.
    """
    config = SimulationConfig()
    if overrides:
        config = replace(config, **overrides)
    return config
