"""repro-lint: repository-specific AST lint rules.

The cycle kernel's performance work (active-router dirty set, event-horizon
fast-forward, content-addressed sweep cache, allocation-free stepping) made
correctness and performance depend on contracts that ordinary linters cannot
see. This pass encodes them as eight rules over the stdlib :mod:`ast` (no
third-party dependencies):

``R1`` unseeded-randomness-or-wall-clock
    Simulation-semantics code (``repro/network/``, ``repro/traffic/``,
    ``repro/core/`` — the DVS state machines live under ``core``) must not
    call module-level :mod:`random` functions, ``numpy.random`` functions,
    or wall-clock sources (``time.time``, ``datetime.now``, ...). All
    randomness flows through a seeded ``random.Random`` instance so runs
    are bit-reproducible; all time is the simulated router clock.

``R2`` unordered-hot-path-iteration
    The engine/router hot path (``repro/network/engine.py`` and
    ``repro/network/router.py``) must not iterate a ``set`` (or
    ``dict.values()``) directly — iteration order would then depend on
    hash seeding and insertion history. Wrap the iterable in ``sorted()``.

``R3`` traffic-source-contract
    Every :class:`~repro.traffic.base.TrafficSource` subclass must
    override ``next_injection_cycle``: a source relying on the
    conservative ``None`` default silently disables the quiescence
    fast-forward for every workload it appears in.

``R4`` observer-skip-safety
    An observer overriding ``on_cycle`` must either also define
    ``on_idle_span`` (making it safe to skip quiescent spans) or declare
    ``unskippable = True`` — an explicit statement that disabling the
    fast-forward is intended, not an accident.

``R5`` config-not-json-serializable
    Fields of ``*Config`` dataclasses must be JSON-serializable types
    (primitives, containers of primitives, other dataclasses). The sweep
    cache keys on the config's canonical JSON; a field that falls back to
    ``repr()`` would make the cache key lossy or unstable.

``R6`` hot-path-allocation
    A function marked ``# repro-hot`` (comment on its ``def`` line or the
    line directly above) must not allocate containers: no list/dict/set/
    tuple literals, no comprehensions or generator expressions, no calls
    to container constructors (``list``, ``dict``, ``set``, ``frozenset``,
    ``tuple``, ``bytearray``, ``deque``, ``defaultdict``, ``Counter``).
    Hot functions run millions of times per sweep; per-call allocation is
    the regression this PR's pooling work removed. The rule is also
    numpy-aware for the batched sweep kernel's vectorized hot lane
    (``repro/network/batched.py``): calls through a ``numpy``/``np``
    alias that always materialize an array (``np.zeros``, ``np.where``,
    ``np.asarray``, ...) are flagged, and ufunc-style calls (``np.add``,
    ``np.take``, ``np.less``, ...) are flagged unless they write into a
    preallocated buffer via ``out=``. Exempt: anything under a ``raise``
    statement (error paths may format messages freely) and parallel
    assignments like ``a, b = x, y`` (CPython compiles small unpackings
    to stack rotations, no tuple is materialized). The marker is opt-in,
    so the rule applies in every linted file.

``R8`` policy-purity
    ``decide()`` on a :class:`~repro.core.policy.DVSPolicy` subclass must
    be a pure function of its inputs and ``self``: no unseeded
    randomness (module-level :mod:`random` / global numpy generators —
    a policy's own seeded ``random.Random`` held on ``self`` is fine),
    no wall-clock reads, no ``global``/``nonlocal`` statements, and no
    stores to or mutation of module-level state. Policies run once per
    window per channel; hidden global state would break Serial vs
    ProcessPool bit-identity and the sweep cache's claim that a config
    fingerprint determines the result.

``R7`` harness-interrupt-safety
    Harness code (``repro/harness/`` — the retry/checkpoint/resume layer)
    must never let a broad handler absorb an interrupt: a handler
    catching ``Exception``/``BaseException`` (or a bare ``except:``) must
    either re-raise unconditionally (a top-level bare ``raise`` in its
    body, the cleanup-then-reraise idiom) or be preceded in the same
    ``try`` by handlers that re-raise ``KeyboardInterrupt`` and
    ``SystemExit``. The explicit guard is required even for ``except
    Exception`` so the contract survives refactors that broaden the
    handler, and so Ctrl-C during a retry loop always aborts the sweep
    instead of being retried.

Suppressions
    Append ``# repro-lint: ignore[R2]`` (or ``ignore[R1,R4]``) to the
    flagged line. A file whose first ten lines contain
    ``# repro-lint: skip-file`` is not checked at all. Directories named
    ``fixtures`` or ``__pycache__`` are skipped unless
    ``--include-fixtures`` is given (the bundled violation fixtures under
    ``tests/fixtures/lint/`` rely on this).

Usage::

    python -m repro.analysis.lint src tests              # human output
    python -m repro.analysis.lint --format json src      # machine output

Exit status is 0 when clean, 1 when violations were found, 2 on usage or
parse errors.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import re
import sys
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Rule id -> short name (kept in sync with docs/static_analysis.md).
RULES = {
    "R1": "unseeded-randomness-or-wall-clock",
    "R2": "unordered-hot-path-iteration",
    "R3": "traffic-source-contract",
    "R4": "observer-skip-safety",
    "R5": "config-not-json-serializable",
    "R6": "hot-path-allocation",
    "R7": "harness-interrupt-safety",
    "R8": "policy-purity",
}

#: Path fragments selecting the files R1 applies to.
R1_SCOPE = ("repro/network/", "repro/traffic/", "repro/core/")
#: File names (under repro/network/) forming the R2 hot path.
R2_FILES = ("engine.py", "router.py")
#: Path fragments selecting the files R7 applies to.
R7_SCOPE = ("repro/harness/",)

#: Wall-clock call chains banned by R1.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)
#: random.* attributes that are fine: seeded generator constructors and
#: state plumbing, not draws from the shared global generator.
_RANDOM_OK = frozenset({"Random", "SystemRandom", "getstate", "setstate"})
#: numpy.random constructors that are fine when given an explicit seed.
_NP_RANDOM_SEEDED_OK = frozenset({"default_rng", "RandomState", "Generator", "SeedSequence"})

#: Annotation names R5 accepts as JSON-serializable leaves.
_JSON_LEAVES = frozenset({"int", "float", "str", "bool", "None"})
#: Generic containers R5 accepts (their parameters are checked recursively).
_JSON_CONTAINERS = frozenset(
    {"tuple", "list", "dict", "Optional", "Union", "Tuple", "List", "Dict",
     "Sequence", "Mapping", "FrozenSet", "frozenset"}
)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9,\s]+)\]")
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")
#: Marker opting a function into R6 (on the def line or the line above).
_HOT_RE = re.compile(r"#\s*repro-hot\b")

#: Bare or dotted constructor names R6 treats as container allocations.
_R6_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "frozenset", "tuple", "bytearray", "deque",
     "defaultdict", "Counter", "OrderedDict"}
)
#: Module aliases whose attribute calls R6 inspects as numpy (the batched
#: sweep kernel's hot lane is numpy-vectorized; a hidden temporary array
#: per boundary is the same regression as a per-call list).
_R6_NUMPY_MODULES = frozenset({"np", "numpy"})
#: numpy calls that always materialize a fresh array.
_R6_NUMPY_ALLOCATORS = frozenset(
    {"zeros", "ones", "empty", "full", "zeros_like", "ones_like",
     "empty_like", "full_like", "arange", "linspace", "array", "asarray",
     "ascontiguousarray", "concatenate", "stack", "vstack", "hstack",
     "column_stack", "tile", "repeat", "where", "copy", "unique", "sort",
     "argsort", "cumsum", "cumprod", "outer", "einsum", "dot", "matmul"}
)
#: numpy functions/ufuncs that allocate their result *unless* directed
#: into a preallocated buffer via the ``out=`` keyword.
_R6_NUMPY_OUT_AWARE = frozenset(
    {"add", "subtract", "multiply", "divide", "true_divide",
     "floor_divide", "mod", "remainder", "power", "sqrt", "exp", "log",
     "abs", "absolute", "negative", "sign", "minimum", "maximum", "clip",
     "round", "floor", "ceil", "less", "less_equal", "greater",
     "greater_equal", "equal", "not_equal", "logical_and", "logical_or",
     "logical_not", "logical_xor", "bitwise_and", "bitwise_or",
     "bitwise_xor", "left_shift", "right_shift", "take", "sum", "prod",
     "mean"}
)
#: Method names R8 treats as in-place mutation of the receiver.
_R8_MUTATORS = frozenset(
    {"append", "add", "update", "pop", "extend", "remove", "clear",
     "setdefault", "popitem", "insert", "discard", "appendleft",
     "extendleft", "sort", "reverse"}
)
#: Exception names R7 treats as dangerously broad when caught.
_R7_BROAD = frozenset({"Exception", "BaseException"})
#: The interrupts a broad handler must provably let through.
_R7_INTERRUPTS = frozenset({"KeyboardInterrupt", "SystemExit"})

#: Literal/comprehension node types R6 flags, with human-readable labels.
_R6_LITERALS: tuple[tuple[type, str], ...] = (
    (ast.ListComp, "list comprehension"),
    (ast.SetComp, "set comprehension"),
    (ast.DictComp, "dict comprehension"),
    (ast.GeneratorExp, "generator expression"),
    (ast.Dict, "dict literal"),
    (ast.Set, "set literal"),
)


@dataclasses.dataclass(frozen=True, slots=True)
class Violation:
    """One lint finding, sortable into stable report order."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "name": RULES.get(self.rule, self.rule),
            "message": self.message,
        }


@dataclasses.dataclass
class _ClassInfo:
    """What the rules need to know about one class definition."""

    name: str
    bases: tuple[str, ...]
    methods: frozenset[str]
    assigns: dict[str, ast.expr]
    is_dataclass: bool
    node: ast.ClassDef


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _decorator_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call):
        node = node.func
    return _dotted(node)


class _FileContext:
    """One parsed source file plus its suppression table."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.display_path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.suppressions: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = frozenset(
                    part.strip().upper() for part in match.group(1).split(",")
                )
                self.suppressions[lineno] = rules
        self.skip_file = any(
            _SKIP_FILE_RE.search(line) for line in self.lines[:10]
        )
        self.classes = self._collect_classes()

    def _collect_classes(self) -> dict[str, _ClassInfo]:
        classes: dict[str, _ClassInfo] = {}
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                name for name in (_dotted(base) for base in node.bases) if name
            )
            methods = frozenset(
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            )
            assigns: dict[str, ast.expr] = {}
            for item in node.body:
                if isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            assigns[target.id] = item.value
                elif isinstance(item, ast.AnnAssign) and item.value is not None:
                    if isinstance(item.target, ast.Name):
                        assigns[item.target.id] = item.value
            is_dataclass = any(
                (_decorator_name(dec) or "").split(".")[-1] == "dataclass"
                for dec in node.decorator_list
            )
            classes[node.name] = _ClassInfo(
                node.name, bases, methods, assigns, is_dataclass, node
            )
        return classes

    def suppressed(self, lineno: int, rule: str) -> bool:
        rules = self.suppressions.get(lineno)
        return rules is not None and (rule in rules or "ALL" in rules)

    # -- class-hierarchy helpers (per-file; cross-file bases match by name)

    def inherits_from(self, info: _ClassInfo, root: str) -> bool:
        seen: set[str] = set()
        stack = list(info.bases)
        while stack:
            base = stack.pop()
            last = base.split(".")[-1]
            if last == root:
                return True
            if last in seen:
                continue
            seen.add(last)
            parent = self.classes.get(last)
            if parent is not None:
                stack.extend(parent.bases)
        return False

    def hierarchy_defines(self, info: _ClassInfo, member: str) -> bool:
        """Whether *info* or any in-file ancestor defines *member*."""
        seen: set[str] = set()
        stack: list[_ClassInfo] = [info]
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            if member in current.methods or member in current.assigns:
                return True
            for base in current.bases:
                parent = self.classes.get(base.split(".")[-1])
                if parent is not None:
                    stack.append(parent)
        return False

    def hierarchy_assigns_true(self, info: _ClassInfo, attr: str) -> bool:
        seen: set[str] = set()
        stack: list[_ClassInfo] = [info]
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            value = current.assigns.get(attr)
            if isinstance(value, ast.Constant) and value.value is True:
                return True
            for base in current.bases:
                parent = self.classes.get(base.split(".")[-1])
                if parent is not None:
                    stack.append(parent)
        return False


class Linter:
    """Parses a file set once, then applies every rule to each file."""

    def __init__(self, *, include_fixtures: bool = False):
        self.include_fixtures = include_fixtures
        self._files: list[_FileContext] = []
        self._errors: list[str] = []
        #: Names of dataclasses seen anywhere in the file set; fields of a
        #: ``*Config`` dataclass may reference them (R5) because
        #: ``to_json`` serializes nested dataclasses recursively.
        self._dataclass_names: set[str] = set()

    # -- file collection -------------------------------------------------

    def add_paths(self, paths: Iterable[str | Path]) -> None:
        for path in paths:
            path = Path(path)
            if path.is_dir():
                for file in sorted(path.rglob("*.py")):
                    if self._excluded(file):
                        continue
                    self.add_file(file)
            elif path.suffix == ".py":
                self.add_file(path)
            else:
                self._errors.append(f"{path}: not a Python file or directory")

    def _excluded(self, path: Path) -> bool:
        parts = set(path.parts)
        if "__pycache__" in parts or any(p.startswith(".") for p in path.parts):
            return True
        return "fixtures" in parts and not self.include_fixtures

    def add_file(self, path: str | Path) -> None:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            self._errors.append(f"{path}: unreadable ({exc})")
            return
        self.add_source(source, path.as_posix())

    def add_source(self, source: str, path: str) -> None:
        """Register in-memory *source* under *path* (tests use this)."""
        try:
            context = _FileContext(path, source)
        except SyntaxError as exc:
            self._errors.append(f"{path}: syntax error: {exc}")
            return
        self._files.append(context)
        self._dataclass_names.update(
            name for name, info in context.classes.items() if info.is_dataclass
        )

    @property
    def errors(self) -> list[str]:
        """Parse/IO problems (reported separately from rule violations)."""
        return self._errors

    # -- rule driver -----------------------------------------------------

    def run(self) -> list[Violation]:
        violations: list[Violation] = []
        for context in self._files:
            if context.skip_file:
                continue
            for violation in self._check_file(context):
                if not context.suppressed(violation.line, violation.rule):
                    violations.append(violation)
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return violations

    def _check_file(self, context: _FileContext) -> Iterator[Violation]:
        path = context.path
        if any(fragment in path for fragment in R1_SCOPE):
            yield from self._rule_r1(context)
        if "repro/network/" in path and path.rsplit("/", 1)[-1] in R2_FILES:
            yield from self._rule_r2(context)
        if any(fragment in path for fragment in R7_SCOPE):
            yield from self._rule_r7(context)
        yield from self._rule_r3(context)
        yield from self._rule_r4(context)
        yield from self._rule_r5(context)
        yield from self._rule_r6(context)
        yield from self._rule_r8(context)

    # -- R1: unseeded randomness / wall clock ----------------------------

    def _rule_r1(self, context: _FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            message: str | None = None
            if name.startswith("random.") and name.split(".", 1)[1] not in _RANDOM_OK:
                message = (
                    f"call to the shared global generator ({name}); draw from a "
                    "seeded random.Random instance instead"
                )
            elif name in _WALL_CLOCK:
                message = (
                    f"wall-clock read ({name}) in simulation code; use the "
                    "simulated router clock"
                )
            else:
                for prefix in ("numpy.random.", "np.random."):
                    if name.startswith(prefix):
                        tail = name[len(prefix):]
                        seeded = (
                            tail in _NP_RANDOM_SEEDED_OK
                            and bool(node.args or node.keywords)
                        )
                        if not seeded:
                            message = (
                                f"call to the global numpy generator ({name}); "
                                "use a seeded Generator"
                            )
                        break
            if message is not None:
                yield Violation(context.display_path, node.lineno,
                                node.col_offset, "R1", message)

    # -- R2: unordered iteration on the hot path -------------------------

    def _rule_r2(self, context: _FileContext) -> Iterator[Violation]:
        setlike = self._collect_setlike_names(context.tree)
        for node in ast.walk(context.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_expr in iters:
                message = self._unordered_iter_message(iter_expr, setlike)
                if message is not None:
                    yield Violation(context.display_path, iter_expr.lineno,
                                    iter_expr.col_offset, "R2", message)

    @staticmethod
    def _collect_setlike_names(tree: ast.AST) -> set[str]:
        """Names/attribute chains annotated or assigned as sets."""
        setlike: set[str] = set()

        def annotation_is_set(annotation: ast.expr) -> bool:
            if isinstance(annotation, ast.Subscript):
                annotation = annotation.value
            name = _dotted(annotation)
            return name is not None and name.split(".")[-1] in ("set", "frozenset", "Set", "FrozenSet")

        def value_is_set(value: ast.expr | None) -> bool:
            if isinstance(value, (ast.Set, ast.SetComp)):
                return True
            if isinstance(value, ast.Call):
                name = _dotted(value.func)
                return name in ("set", "frozenset")
            return False

        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                arguments = node.args
                for arg in (
                    *arguments.posonlyargs,
                    *arguments.args,
                    *arguments.kwonlyargs,
                ):
                    if arg.annotation is not None and annotation_is_set(arg.annotation):
                        setlike.add(arg.arg)
            elif isinstance(node, ast.AnnAssign):
                target = _dotted(node.target)
                if target and annotation_is_set(node.annotation):
                    setlike.add(target)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    name = _dotted(target)
                    if name is None:
                        continue
                    if value_is_set(node.value):
                        setlike.add(name)
                    else:
                        source = _dotted(node.value) if node.value is not None else None
                        if source in setlike:
                            setlike.add(name)
        return setlike

    @staticmethod
    def _unordered_iter_message(
        iter_expr: ast.expr, setlike: set[str]
    ) -> str | None:
        if isinstance(iter_expr, ast.Call):
            func = _dotted(iter_expr.func)
            if func == "sorted":
                return None
            if isinstance(iter_expr.func, ast.Attribute) and iter_expr.func.attr == "values":
                return (
                    "iteration over dict.values() in the hot path; iterate "
                    "sorted(...) or a deterministic view"
                )
            if func in ("set", "frozenset"):
                return "iteration over a set constructor; wrap in sorted(...)"
            return None
        if isinstance(iter_expr, (ast.Set, ast.SetComp)):
            return "iteration over a set literal; wrap in sorted(...)"
        name = _dotted(iter_expr)
        if name is not None and name in setlike:
            return (
                f"direct iteration over set {name!r} in the hot path; wrap in "
                "sorted(...) to pin the order"
            )
        return None

    # -- R7: harness interrupt safety ------------------------------------

    @staticmethod
    def _handler_catches(handler: ast.ExceptHandler) -> frozenset[str]:
        """Last-component exception names *handler* catches.

        A bare ``except:`` catches everything, so it reports as
        ``BaseException``.
        """
        if handler.type is None:
            return frozenset({"BaseException"})
        nodes = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        names = set()
        for node in nodes:
            name = _dotted(node)
            if name is not None:
                names.add(name.split(".")[-1])
        return frozenset(names)

    @staticmethod
    def _handler_reraises(handler: ast.ExceptHandler) -> bool:
        """Whether the handler body unconditionally re-raises.

        Only a bare ``raise`` directly in the handler body counts — a
        re-raise nested under an ``if`` is conditional and proves
        nothing.
        """
        return any(
            isinstance(stmt, ast.Raise) and stmt.exc is None
            for stmt in handler.body
        )

    def _rule_r7(self, context: _FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Try):
                continue
            reraised: set[str] = set()
            for handler in node.handlers:
                caught = self._handler_catches(handler)
                reraises = self._handler_reraises(handler)
                if caught & _R7_BROAD and not reraises:
                    guarded = (
                        "BaseException" in reraised
                        or _R7_INTERRUPTS <= reraised
                    )
                    if not guarded:
                        label = (
                            "bare except:"
                            if handler.type is None
                            else f"except {ast.unparse(handler.type)}"
                        )
                        yield Violation(
                            context.display_path, handler.lineno,
                            handler.col_offset, "R7",
                            f"broad handler ({label}) in harness code can "
                            "absorb an interrupt; add 'except "
                            "(KeyboardInterrupt, SystemExit): raise' before "
                            "it or re-raise unconditionally in the handler",
                        )
                if reraises:
                    reraised |= caught

    # -- R3: TrafficSource contract --------------------------------------

    def _rule_r3(self, context: _FileContext) -> Iterator[Violation]:
        for info in context.classes.values():
            if info.name == "TrafficSource":
                continue
            if not context.inherits_from(info, "TrafficSource"):
                continue
            if self._is_abstract(info):
                continue
            if context.hierarchy_defines(info, "next_injection_cycle"):
                continue
            yield Violation(
                context.display_path, info.node.lineno, info.node.col_offset, "R3",
                f"TrafficSource subclass {info.name!r} does not override "
                "next_injection_cycle; the conservative default disables "
                "quiescence fast-forward",
            )

    @staticmethod
    def _is_abstract(info: _ClassInfo) -> bool:
        for item in info.node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for dec in item.decorator_list:
                    name = _decorator_name(dec) or ""
                    if name.split(".")[-1] in ("abstractmethod", "abstractproperty"):
                        return True
        return False

    # -- R4: observer skip-safety ----------------------------------------

    def _rule_r4(self, context: _FileContext) -> Iterator[Violation]:
        for info in context.classes.values():
            if info.name == "Observer":
                continue
            if "on_cycle" not in info.methods:
                continue
            if not context.inherits_from(info, "Observer"):
                continue
            if context.hierarchy_defines(info, "on_idle_span"):
                continue
            if context.hierarchy_assigns_true(info, "unskippable"):
                continue
            yield Violation(
                context.display_path, info.node.lineno, info.node.col_offset, "R4",
                f"observer {info.name!r} overrides on_cycle without "
                "on_idle_span; define on_idle_span or declare "
                "'unskippable = True' to document that fast-forward must stop",
            )

    # -- R5: config dataclass fields must serialize ----------------------

    def _rule_r5(self, context: _FileContext) -> Iterator[Violation]:
        for info in context.classes.values():
            if not info.is_dataclass or not info.name.endswith("Config"):
                continue
            for item in info.node.body:
                if not isinstance(item, ast.AnnAssign):
                    continue
                if isinstance(item.target, ast.Name) and item.target.id.startswith("_"):
                    continue
                if item.annotation is not None and _dotted(item.annotation) == "ClassVar":
                    continue
                if not self._annotation_serializable(item.annotation):
                    field = item.target.id if isinstance(item.target, ast.Name) else "?"
                    yield Violation(
                        context.display_path, item.lineno, item.col_offset, "R5",
                        f"field {info.name}.{field} has non-JSON-serializable "
                        f"annotation {ast.unparse(item.annotation)!r}; the sweep "
                        "cache key would fall back to repr()",
                    )

    # -- R6: no container allocation in # repro-hot functions ------------

    def _rule_r6(self, context: _FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._is_hot_function(context, node):
                continue
            yield from self._r6_scan(context, node.name, node.body)

    @staticmethod
    def _is_hot_function(
        context: _FileContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        """The ``# repro-hot`` marker sits on the def line or just above."""
        lines = context.lines
        def_line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        above = lines[node.lineno - 2] if node.lineno >= 2 else ""
        return bool(_HOT_RE.search(def_line) or _HOT_RE.search(above))

    def _r6_scan(
        self, context: _FileContext, func_name: str, body: Sequence[ast.stmt]
    ) -> Iterator[Violation]:
        """Walk *body* flagging allocations, skipping ``raise`` subtrees."""
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Raise):
                # Error paths may allocate freely: they run at most once.
                continue
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Tuple)
                and isinstance(node.value, ast.Tuple)
            ):
                # Parallel assignment (``a, b = x, y``): CPython unpacks
                # on the stack, no tuple is built. Scan the element
                # expressions but not the value tuple itself.
                stack.extend(node.targets[0].elts)
                stack.extend(node.value.elts)
                continue
            message = self._r6_allocation_message(node)
            if message is not None:
                yield Violation(
                    context.display_path, node.lineno, node.col_offset, "R6",
                    f"{message} allocates in # repro-hot function "
                    f"{func_name!r}; hoist it to setup code or reuse a "
                    "pooled/preallocated container",
                )
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _r6_allocation_message(node: ast.AST) -> str | None:
        for node_type, label in _R6_LITERALS:
            if isinstance(node, node_type):
                return label
        if isinstance(node, (ast.List, ast.Tuple)):
            if isinstance(node.ctx, ast.Load):
                return (
                    "list literal" if isinstance(node, ast.List)
                    else "tuple literal"
                )
            return None
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name is None:
                return None
            if name.split(".")[-1] in _R6_CONSTRUCTORS:
                return f"{name}() constructor call"
            parts = name.split(".")
            if len(parts) == 2 and parts[0] in _R6_NUMPY_MODULES:
                func = parts[1]
                if func in _R6_NUMPY_ALLOCATORS:
                    return f"numpy array allocation ({name}())"
                if func in _R6_NUMPY_OUT_AWARE and not any(
                    keyword.arg == "out" for keyword in node.keywords
                ):
                    return f"numpy temporary ({name}() without out=)"
        return None

    # -- R8: DVS policy purity -------------------------------------------

    @staticmethod
    def _module_level_names(tree: ast.Module) -> frozenset[str]:
        """Names bound by module top-level assignments."""
        names: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            names.add(node.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    names.add(stmt.target.id)
        return frozenset(names)

    def _rule_r8(self, context: _FileContext) -> Iterator[Violation]:
        module_names = self._module_level_names(context.tree)
        for info in context.classes.values():
            if info.name == "DVSPolicy":
                continue
            if not context.inherits_from(info, "DVSPolicy"):
                continue
            for item in info.node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "decide"
                ):
                    yield from self._r8_scan(context, info.name, item, module_names)

    def _r8_scan(
        self,
        context: _FileContext,
        class_name: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        module_names: frozenset[str],
    ) -> Iterator[Violation]:
        where = f"{class_name}.decide()"
        suffix = (
            "; decide() must be a pure function of its inputs and self "
            "(Serial vs ProcessPool bit-identity, sweep-cache soundness)"
        )
        # Plain-name stores inside decide() create locals, never globals
        # (R8 flags the `global` statement that would change that), so a
        # local shadowing a module name is not a purity breach.
        local = {
            arg.arg
            for arg in (
                *func.args.posonlyargs,
                *func.args.args,
                *func.args.kwonlyargs,
            )
        }
        for vararg in (func.args.vararg, func.args.kwarg):
            if vararg is not None:
                local.add(vararg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                local.add(node.id)

        def global_root(expr: ast.expr) -> str | None:
            while isinstance(expr, (ast.Attribute, ast.Subscript)):
                expr = expr.value
            if (
                isinstance(expr, ast.Name)
                and expr.id in module_names
                and expr.id not in local
            ):
                return expr.id
            return None

        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                keyword = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield Violation(
                    context.display_path, node.lineno, node.col_offset, "R8",
                    f"{keyword} statement in {where}{suffix}",
                )
            elif isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                root = global_root(node)
                if root is not None:
                    yield Violation(
                        context.display_path, node.lineno, node.col_offset, "R8",
                        f"store to module-level state {root!r} in {where}{suffix}",
                    )
            elif isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name is None:
                    continue
                if (
                    name.startswith("random.")
                    and name.split(".", 1)[1] not in _RANDOM_OK
                ):
                    yield Violation(
                        context.display_path, node.lineno, node.col_offset, "R8",
                        f"unseeded randomness ({name}) in {where}; draw from a "
                        f"seeded random.Random held on self{suffix}",
                    )
                elif name in _WALL_CLOCK:
                    yield Violation(
                        context.display_path, node.lineno, node.col_offset, "R8",
                        f"wall-clock read ({name}) in {where}{suffix}",
                    )
                elif any(
                    name.startswith(prefix)
                    for prefix in ("numpy.random.", "np.random.")
                ):
                    yield Violation(
                        context.display_path, node.lineno, node.col_offset, "R8",
                        f"global numpy generator ({name}) in {where}{suffix}",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _R8_MUTATORS
                ):
                    root = global_root(node.func.value)
                    if root is not None:
                        yield Violation(
                            context.display_path, node.lineno,
                            node.col_offset, "R8",
                            f"mutation of module-level state {root!r} "
                            f"(.{node.func.attr}()) in {where}{suffix}",
                        )

    def _annotation_serializable(self, annotation: ast.expr) -> bool:
        if isinstance(annotation, ast.Constant):
            if annotation.value is None:
                return True
            if isinstance(annotation.value, str):
                try:
                    parsed = ast.parse(annotation.value, mode="eval").body
                except SyntaxError:
                    return False
                return self._annotation_serializable(parsed)
            return False
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            return self._annotation_serializable(
                annotation.left
            ) and self._annotation_serializable(annotation.right)
        if isinstance(annotation, ast.Subscript):
            container = _dotted(annotation.value)
            if container is None:
                return False
            if container == "ClassVar" or container.split(".")[-1] == "ClassVar":
                return True
            if container.split(".")[-1] not in _JSON_CONTAINERS:
                return False
            slice_node = annotation.slice
            elements = (
                list(slice_node.elts)
                if isinstance(slice_node, ast.Tuple)
                else [slice_node]
            )
            return all(
                isinstance(element, ast.Constant) and element.value is Ellipsis
                or self._annotation_serializable(element)
                for element in elements
            )
        name = _dotted(annotation)
        if name is None:
            return False
        last = name.split(".")[-1]
        if last in _JSON_LEAVES:
            return True
        return last in self._dataclass_names


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lint_paths(
    paths: Sequence[str | Path], *, include_fixtures: bool = False
) -> tuple[list[Violation], list[str]]:
    """Lint *paths*; returns ``(violations, parse_errors)``."""
    linter = Linter(include_fixtures=include_fixtures)
    linter.add_paths(paths)
    return linter.run(), linter.errors


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="repo-specific AST lint rules (see docs/static_analysis.md)",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--include-fixtures", action="store_true",
        help="also lint directories named 'fixtures' (skipped by default)",
    )
    args = parser.parse_args(argv)

    violations, errors = lint_paths(
        args.paths, include_fixtures=args.include_fixtures
    )
    if args.format == "json":
        print(
            json.dumps(
                {
                    "violations": [v.as_dict() for v in violations],
                    "errors": errors,
                    "rules": RULES,
                },
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.render())
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        if not violations and not errors:
            print("repro-lint: clean")
        elif violations:
            counts: dict[str, int] = {}
            for violation in violations:
                counts[violation.rule] = counts.get(violation.rule, 0) + 1
            summary = ", ".join(
                f"{rule} x{count}" for rule, count in sorted(counts.items())
            )
            print(f"repro-lint: {len(violations)} violation(s) ({summary})")
    if errors:
        return 2
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
