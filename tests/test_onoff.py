"""Tests for the multiplexed Pareto ON/OFF source bank."""

import math
import random

import pytest

from repro.errors import WorkloadError
from repro.traffic.onoff import OnOffSourceSet


def collect_rate(source_set, horizon):
    total = 0
    for now in range(horizon):
        if source_set.next_time <= now:
            total += source_set.advance(now)
    return total / horizon


class TestConstruction:
    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(WorkloadError):
            OnOffSourceSet(rng, sources=0, target_rate=0.1, start=0, end=100)
        with pytest.raises(WorkloadError):
            OnOffSourceSet(rng, sources=4, target_rate=0.0, start=0, end=100)
        with pytest.raises(WorkloadError):
            OnOffSourceSet(rng, sources=4, target_rate=0.1, start=100, end=100)

    def test_high_rate_tightens_spacing(self):
        rng = random.Random(1)
        source_set = OnOffSourceSet(
            rng, sources=1, target_rate=0.5, start=0, end=50_000, peak_interval=40.0
        )
        # duty = 0.5 * 40 = 20 >= 0.9 -> spacing tightened to 0.9 / rate.
        assert source_set.peak_interval == pytest.approx(0.9 / 0.5)

    def test_modes(self):
        rng = random.Random(2)
        dense = OnOffSourceSet(
            rng, sources=2, target_rate=0.05, start=0, end=200_000
        )
        assert dense.mode == "renewal"
        sparse = OnOffSourceSet(
            rng, sources=64, target_rate=0.001, start=0, end=20_000
        )
        assert sparse.mode == "poisson_burst"


class TestRateCalibration:
    @pytest.mark.parametrize("target", [0.02, 0.1])
    def test_renewal_mode_rate(self, target):
        rates = []
        for seed in range(8):
            rng = random.Random(seed)
            source_set = OnOffSourceSet(
                rng, sources=16, target_rate=target, start=0, end=150_000
            )
            rates.append(collect_rate(source_set, 150_000))
        mean = sum(rates) / len(rates)
        assert mean == pytest.approx(target, rel=0.35)

    def test_poisson_burst_mode_rate(self):
        rates = []
        for seed in range(12):
            rng = random.Random(seed)
            source_set = OnOffSourceSet(
                rng, sources=32, target_rate=0.005, start=0, end=30_000
            )
            rates.append(collect_rate(source_set, 30_000))
        mean = sum(rates) / len(rates)
        assert mean == pytest.approx(0.005, rel=0.4)


class TestLifetime:
    def test_no_packets_after_end(self):
        rng = random.Random(3)
        source_set = OnOffSourceSet(
            rng, sources=8, target_rate=0.05, start=100, end=5_000
        )
        last = -1.0
        while not source_set.exhausted:
            t = source_set.next_time
            source_set.advance(int(math.ceil(t)))
            last = t
        assert last < 5_000

    def test_no_packets_before_start(self):
        rng = random.Random(4)
        source_set = OnOffSourceSet(
            rng, sources=8, target_rate=0.05, start=1_000, end=50_000
        )
        assert source_set.next_time >= 1_000

    def test_exhaustion(self):
        rng = random.Random(5)
        source_set = OnOffSourceSet(
            rng, sources=2, target_rate=0.01, start=0, end=2_000
        )
        source_set.advance(2_000)
        assert source_set.exhausted
        assert source_set.next_time == math.inf


class TestBurstiness:
    def test_traffic_is_overdispersed(self):
        """ON/OFF traffic is far burstier than Poisson: the per-window
        index of dispersion (variance/mean) is well above 1."""
        rng = random.Random(6)
        horizon = 100_000
        source_set = OnOffSourceSet(
            rng, sources=4, target_rate=0.05, start=0, end=horizon
        )
        window = 100
        counts = [0] * (horizon // window)
        for now in range(horizon):
            if source_set.next_time <= now:
                counts[now // window] += source_set.advance(now)
        mean = sum(counts) / len(counts)
        variance = sum((c - mean) ** 2 for c in counts) / (len(counts) - 1)
        assert mean > 0
        assert variance / mean > 2.0
