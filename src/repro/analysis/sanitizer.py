"""Runtime invariant checking for the cycle kernel (the network sanitizer).

An opt-in family of :class:`~repro.instrument.bus.Observer` subclasses
that re-derive the kernel's conservation laws from first principles on a
bounded cadence — every ``check_every`` *stepped* cycles, which is sound
because the state they check is persistent until a check sees it and can
only change on cycles the kernel actually steps; the DVS checker
additionally validates locked channels every single cycle, discovering
them through transition events and window-close scans — and raise a
structured :class:`SanitizerViolation` when one breaks. They attach
through the instrumentation bus like any other observer, so the kernel
pays **nothing** when they are not enabled, and they are skip-safe
(``on_idle_span`` is defined): a fast-forwarded span is by construction
a no-op, so it neither triggers a check nor advances the cadence, and
the harness's lifecycle marks force a final check before any result is
read.

The family (one checker per invariant group):

* :class:`ConservationSanitizer` — per (channel, VC):
  ``credits held + flits in flight + downstream buffer occupancy +
  credits in flight == buffer depth``; network-wide: ``flits offered ==
  source-side + buffered + in flight + ejected`` (nothing is ever
  dropped).
* :class:`VCAllocationSanitizer` — VC allocation state-machine legality:
  every non-free downstream VC is claimed by exactly one upstream input
  VC, claims are mutually exclusive, credit counters stay within
  ``[0, depth]``, and a body flit at a VC head implies a held route.
* :class:`DVSTransitionSanitizer` — DVS levels stay inside the V/F
  table, move at most one step per cycle (the paper's adjacent-level
  transition sequencing), voltage and frequency levels never diverge by
  more than one step, the ``locked`` fast-path mirror agrees with the
  state machine phase, and a link in frequency transition transmits
  nothing.
* :class:`TrafficContractSanitizer` — ``next_injection_cycle`` is
  side-effect-free and deterministic (the fast-forward contract): calling
  it twice returns the same horizon, never in the past, and periodically
  verifies the source's :meth:`~repro.traffic.base.TrafficSource.checkpoint`
  token is unchanged across the call.

:class:`NetworkSanitizer` bundles the family: construct it over an engine
and call :meth:`~NetworkSanitizer.attach`. Enable from the outside with
``Simulator(config, sanitize=True)``, the CLI's ``--sanitize`` flag, or
``REPRO_SANITIZE=1`` (picked up by :func:`repro.harness.runner.run_simulation`,
so sweep worker processes inherit it).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator

from ..core.dvs_link import ChannelPhase
from ..errors import SimulationError
from ..instrument.bus import Observer
from ..network.router import EVENT_ARRIVAL, EVENT_CREDIT
from ..network.vc import UNROUTED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.dvs_link import DVSChannel
    from ..instrument.bus import TransitionEvent
    from ..network.engine import SimulationEngine

#: Phases during which the link is dead and ``locked`` must mirror True.
_LOCKED_PHASES = frozenset(
    {ChannelPhase.FREQUENCY_LOCK, ChannelPhase.SLEEP, ChannelPhase.WAKE}
)
#: Shutdown-side phases, legal only at the bottom of the V/F table.
_SHUTDOWN_PHASES = frozenset({ChannelPhase.SLEEP, ChannelPhase.WAKE})


class SanitizerViolation(SimulationError):
    """A conservation invariant failed, with full kernel context.

    Attributes:
        rule: Short invariant name (e.g. ``"credit-conservation"``).
        cycle: Router cycle the check ran at.
        node: Router node id, when the invariant is router-local.
        port: Port index on that router, when applicable.
        vc: Virtual-channel index, when applicable.
        channel: Topology channel id, when the invariant is link-local.
    """

    def __init__(
        self,
        rule: str,
        message: str,
        *,
        cycle: int,
        node: int | None = None,
        port: int | None = None,
        vc: int | None = None,
        channel: int | None = None,
    ) -> None:
        self.rule = rule
        self.cycle = cycle
        self.node = node
        self.port = port
        self.vc = vc
        self.channel = channel
        context = ", ".join(
            f"{label}={value}"
            for label, value in (
                ("cycle", cycle),
                ("node", node),
                ("port", port),
                ("vc", vc),
                ("channel", channel),
            )
            if value is not None
        )
        super().__init__(f"[{rule}] {message} ({context})")


class SanitizerObserver(Observer):
    """Base checker: cadence counted in *stepped* cycles, plus marks.

    Kernel state can only change on cycles the kernel actually steps — a
    fast-forwarded span is, by construction, a proven no-op — so the
    ``check_every`` cadence counts stepped cycles and idle spans advance
    nothing (the no-op ``on_idle_span`` override is what keeps the
    kernel's quiescence skipping enabled while a checker is attached).
    Lifecycle marks (``measurement_begin`` / ``measurement_end``) force
    a check regardless of cadence, so a run whose state is corrupted and
    then drains to silence is still caught before its result is read.

    With ``raise_on_violation`` (the default) the first broken invariant
    raises immediately, freezing the simulation at the faulty cycle.
    With it off, violations accumulate in :attr:`violations` — the mode
    the CLI uses to report totals.
    """

    #: Default rule tag for violations from this checker.
    rule = "sanitizer"

    def __init__(
        self,
        engine: "SimulationEngine",
        *,
        raise_on_violation: bool = True,
        check_every: int = 1,
    ) -> None:
        if check_every < 1:
            raise SimulationError("check_every must be >= 1")
        self.engine = engine
        self.raise_on_violation = raise_on_violation
        self.check_every = check_every
        self.violations: list[SanitizerViolation] = []
        self.checks = 0
        #: Stepped cycles observed since the last check.
        self._since_check = 0

    def on_cycle(self, now: int) -> None:
        self._since_check += 1
        if self._since_check >= self.check_every:
            self._fire(now)

    def on_idle_span(self, start: int, end: int) -> None:
        # A skipped span is a proven no-op: nothing these checkers read
        # can have changed, so the span neither triggers a check nor
        # advances the cadence.
        pass

    def on_mark(self, label: str, cycle: int) -> None:
        self._fire(cycle)

    def _fire(self, now: int) -> None:
        """Run :meth:`check` immediately and reset the cadence."""
        self._since_check = 0
        self.checks += 1
        self.check(now)

    def check(self, now: int) -> None:
        raise NotImplementedError

    def _violation(
        self,
        message: str,
        *,
        cycle: int,
        rule: str | None = None,
        node: int | None = None,
        port: int | None = None,
        vc: int | None = None,
        channel: int | None = None,
    ) -> None:
        violation = SanitizerViolation(
            rule if rule is not None else self.rule,
            message,
            cycle=cycle,
            node=node,
            port=port,
            vc=vc,
            channel=channel,
        )
        self.violations.append(violation)
        if self.raise_on_violation:
            raise violation


class ConservationSanitizer(SanitizerObserver):
    """Credit-loop and flit conservation, re-derived from scratch each check.

    Both invariants share one walk over the kernel's pending-event
    buckets, so they live in a single checker.
    """

    rule = "conservation"

    def __init__(self, engine: "SimulationEngine", **kwargs: object) -> None:
        super().__init__(engine, **kwargs)  # type: ignore[arg-type]
        #: Per-channel (credits list, full-credit template, downstream
        #: buffer lists, spec) resolved once: the kernel mutates these
        #: containers in place, so holding them skips the per-check
        #: attribute chases. An idle channel (all credits home, buffers
        #: empty, no events) short-circuits on two list compares.
        self._channel_cache: list[tuple] | None = None

    def _channels(self) -> list[tuple]:
        engine = self.engine
        cache: list[tuple] = []
        vcs_per_port = engine.config.network.vcs_per_port
        for topo_channel in engine.channels:
            spec = topo_channel.spec
            upstream = engine.routers[spec.src_node].credit_states[spec.src_port]
            if upstream is None:  # pragma: no cover - wiring guard
                continue
            downstream_vcs = engine.routers[spec.dst_node].in_vcs[spec.dst_port]
            cache.append((
                upstream.credits,
                [upstream.capacity_per_vc] * vcs_per_port,
                tuple(
                    downstream_vcs[vc].buffer.flits
                    for vc in range(vcs_per_port)
                ),
                spec,
                upstream,
                (spec.dst_node, spec.dst_port),
                (spec.src_node, spec.src_port),
            ))
        self._channel_cache = cache
        return cache

    def check(self, now: int) -> None:
        engine = self.engine
        arrivals: dict[tuple[int, int, int], int] = {}
        credits_in_flight: dict[tuple[int, int, int], int] = {}
        arrival_total = 0
        for _cycle, event in engine.iter_scheduled_events():
            kind = event[0]
            if kind == EVENT_ARRIVAL:
                key = (event[1], event[2], event[3])
                arrivals[key] = arrivals.get(key, 0) + 1
                arrival_total += 1
            elif kind == EVENT_CREDIT:
                key = (event[1], event[2], event[3])
                credits_in_flight[key] = credits_in_flight.get(key, 0) + 1

        vcs_per_port = engine.config.network.vcs_per_port
        vc_range = range(vcs_per_port)
        # (node, port) pairs with at least one event in flight: channels
        # outside this set with all credits home and empty buffers are
        # provably balanced and skip the per-VC arithmetic.
        touched: set[tuple[int, int]] = set()
        for dst_node, dst_port, _vc in arrivals:
            touched.add((dst_node, dst_port))
        for src_node, src_port, _vc in credits_in_flight:
            touched.add((src_node, src_port))
        cache = self._channel_cache
        if cache is None:
            cache = self._channels()
        for credits, full, buffers, spec, upstream, dst_key, src_key in cache:
            if (
                credits == full
                and not any(buffers)
                and dst_key not in touched
                and src_key not in touched
            ):
                continue
            for vc in vc_range:
                outstanding = upstream.capacity_per_vc - credits[vc]
                in_flight = arrivals.get((spec.dst_node, spec.dst_port, vc), 0)
                buffered = len(buffers[vc])
                returning = credits_in_flight.get(
                    (spec.src_node, spec.src_port, vc), 0
                )
                accounted = in_flight + buffered + returning
                if outstanding != accounted:
                    self._violation(
                        f"credit conservation broken: {outstanding} credits "
                        f"outstanding != {in_flight} flits in flight + "
                        f"{buffered} buffered + {returning} credits "
                        f"returning (= {accounted}; buffer depth "
                        f"{upstream.capacity_per_vc})",
                        rule="credit-conservation",
                        cycle=now,
                        node=spec.src_node,
                        port=spec.src_port,
                        vc=vc,
                        channel=spec.channel_id,
                    )

        offered_flits = 0
        source_side = 0
        buffered_total = 0
        ejected = 0
        for router in engine.routers:
            source_side += router.unsent_source_flits()
            buffered_total += router.total_buffered
            ejected += router.flits_ejected
        flits_per_packet = engine.config.network.flits_per_packet
        offered_flits = engine.traffic.packets_offered * flits_per_packet
        accounted = source_side + buffered_total + arrival_total + ejected
        if offered_flits != accounted:
            self._violation(
                f"flit conservation broken: {offered_flits} flits offered != "
                f"{source_side} at sources + {buffered_total} buffered + "
                f"{arrival_total} in flight + {ejected} ejected "
                f"(= {accounted}; nothing may be dropped or duplicated)",
                rule="flit-conservation",
                cycle=now,
            )


class VCAllocationSanitizer(SanitizerObserver):
    """Virtual-channel allocation state-machine legality.

    Cadence checks sweep only the scheduler's *active* routers: a parked
    router performed no work since the last sweep saw it, so its
    allocation state cannot have changed legally. Out-of-band tampering
    on a parked router is caught when it re-activates or at the next
    deep sweep — the first check and every lifecycle mark sweep the
    whole network.
    """

    rule = "vc-allocation"

    def __init__(self, engine: "SimulationEngine", **kwargs: object) -> None:
        super().__init__(engine, **kwargs)  # type: ignore[arg-type]
        #: Per-out-port all-free / full-credit templates, for the idle
        #: short-circuit in the leaked-allocation sweep.
        self._free_template: list[bool] | None = None
        self._full_template: list[int] | None = None
        self._deep_pending = True

    def on_mark(self, label: str, cycle: int) -> None:
        self._deep_pending = True
        self._fire(cycle)

    def check(self, now: int) -> None:
        engine = self.engine
        if self._deep_pending:
            self._deep_pending = False
            routers = engine.routers
        else:
            routers = engine.iter_active_routers()
        for router in routers:
            local_port = router.local_port
            claims: dict[tuple[int, int], tuple[int, int]] = {}
            for in_port, in_vc, vcstate in router.iter_vc_states():
                out_port = vcstate.out_port
                flits = vcstate.buffer.flits
                if out_port == UNROUTED:
                    # Unclaimed and (usually) empty: the idle fast path.
                    if flits and not flits[0].is_head:
                        self._violation(
                            "body flit at the head of a VC with no held "
                            "route (mid-packet state lost)",
                            cycle=now,
                            node=router.node,
                            port=in_port,
                            vc=in_vc,
                        )
                    continue
                out_vc = vcstate.out_vc
                if out_port == local_port:
                    continue  # ejection claims no downstream VC
                if out_vc == UNROUTED:
                    self._violation(
                        "route computed but no downstream VC allocated on a "
                        "non-local output",
                        cycle=now,
                        node=router.node,
                        port=in_port,
                        vc=in_vc,
                    )
                    continue
                key = (out_port, out_vc)
                if key in claims:
                    other = claims[key]
                    self._violation(
                        f"downstream VC claimed twice: input {other} and "
                        f"input {(in_port, in_vc)} both hold output "
                        f"port {out_port} VC {out_vc}",
                        cycle=now,
                        node=router.node,
                        port=out_port,
                        vc=out_vc,
                    )
                claims[key] = (in_port, in_vc)
                credit_state = router.credit_states[out_port]
                if credit_state is None:
                    self._violation(
                        "claim against an unattached output port",
                        cycle=now,
                        node=router.node,
                        port=out_port,
                        vc=out_vc,
                    )
                elif credit_state.vc_free[out_vc]:
                    self._violation(
                        "input VC holds a downstream VC that is marked free",
                        cycle=now,
                        node=router.node,
                        port=out_port,
                        vc=out_vc,
                    )
            free_template = self._free_template
            if free_template is None:
                free_template = self._free_template = (
                    [True] * engine.config.network.vcs_per_port
                )
            for out_port in router.connected_out:
                credit_state = router.credit_states[out_port]
                if credit_state is None:  # pragma: no cover - wiring guard
                    continue
                credits_list = credit_state.credits
                full = self._full_template
                if full is None or full[0] != credit_state.capacity_per_vc:
                    full = self._full_template = (
                        [credit_state.capacity_per_vc] * len(credits_list)
                    )
                if credits_list == full and credit_state.vc_free == free_template:
                    continue  # all credits home, every VC free: legal
                for vc, credits in enumerate(credits_list):
                    if not 0 <= credits <= credit_state.capacity_per_vc:
                        self._violation(
                            f"credit counter out of range: {credits} not in "
                            f"[0, {credit_state.capacity_per_vc}]",
                            cycle=now,
                            node=router.node,
                            port=out_port,
                            vc=vc,
                        )
                    if (
                        not credit_state.vc_free[vc]
                        and (out_port, vc) not in claims
                    ):
                        self._violation(
                            "downstream VC marked in use but no input VC "
                            "claims it (leaked allocation)",
                            cycle=now,
                            node=router.node,
                            port=out_port,
                            vc=vc,
                        )


class DVSTransitionSanitizer(SanitizerObserver):
    """DVS state-machine legality: one step at a time, dead links stay dead.

    Channels in **frequency lock** (and only those) are validated every
    cycle: the checker learns about them the moment the lock begins —
    from ``on_transition`` bus events, and from a same-cycle scan at
    every controller window close, the only cycles the kernel itself can
    begin a transition on — so the lockout rule (no flits while the
    receiver re-locks) is exact for every kernel-initiated lock. All
    other channels, including mid-voltage-ramp ones (whose level can
    only change at a scheduled phase boundary, which raises an event),
    are re-scanned on the ``check_every`` cadence, which is where
    out-of-band tampering (e.g. a ``force_level`` jump) gets caught;
    ``check_every`` is clamped to the shortest legal interval between
    level changes (one full transition: ramp + lock), below which a
    multi-step delta between two scans is provably a jump. With
    ``check_every == 1`` every cycle is a full scan and even tampering
    mid-lock at arbitrary cycles is caught exactly.

    Snapshots are raw-attribute tuples; a channel whose snapshot is
    unchanged since a check it passed cannot have become illegal, so
    unchanged channels skip validation.
    """

    rule = "dvs-transition"

    def __init__(self, engine: "SimulationEngine", **kwargs: object) -> None:
        super().__init__(engine, **kwargs)  # type: ignore[arg-type]
        #: Per-channel (level, voltage_level, locked, phase, flits_sent)
        #: at that channel's previous observation, lazily populated.
        self._previous: list[tuple | None] = []
        #: Cycle of each channel's previous observation (-1 = never).
        self._seen_at: list[int] = []
        #: Indices of channels currently in transition — validated every
        #: cycle until they return to steady state.
        self._watched: set[int] = set()
        self._index_of: dict[int, int] = {}
        self._max_level = 0
        self._links: list["DVSChannel"] | None = None
        #: Controller window period: transitions can only legitimately
        #: begin on these cycles, so they force a full scan.
        self._window = (
            engine.config.dvs.history_window if engine.controllers else 0
        )
        for topo_channel in engine.channels:
            dvs = topo_channel.dvs
            timing = dvs.timing
            step = timing.voltage_cycles(dvs.router_clock_hz) + max(
                1,
                timing.frequency_cycles(
                    dvs.table.frequency(dvs.table.max_level),
                    dvs.router_clock_hz,
                ),
            )
            self.check_every = max(1, min(self.check_every, step))

    def _setup(self) -> list["DVSChannel"]:
        channels = self.engine.channels
        links = self._links = [channel.dvs for channel in channels]
        self._previous = [None] * len(links)
        self._seen_at = [-1] * len(links)
        self._index_of = {
            channel.spec.channel_id: index
            for index, channel in enumerate(channels)
        }
        if channels:
            self._max_level = channels[0].dvs.table.max_level
        return links

    def on_cycle(self, now: int) -> None:
        self._since_check += 1
        if self._since_check >= self.check_every or (
            self._window and now % self._window == 0
        ):
            self._fire(now)
        elif self._watched:
            self._observe_watched(now)

    def _observe_watched(self, now: int) -> None:
        """Validate only the channels under per-cycle watch."""
        links = self._links
        if links is None:
            links = self._setup()
        for index in sorted(self._watched):
            self._observe(index, links[index], now)

    def on_transition(self, event: "TransitionEvent") -> None:
        # A channel crossed a state-machine boundary: put it under
        # per-cycle watch starting this very cycle (events dispatch
        # before cycle hooks, so the first locked cycle is observed
        # before any router could step).
        if self._links is None:
            self._setup()
        index = self._index_of.get(event.channel)
        if index is not None:
            self._watched.add(index)

    def check(self, now: int) -> None:
        links = self._links
        if links is None:
            links = self._setup()
        for index, dvs in enumerate(links):
            self._observe(index, dvs, now)

    def _observe(self, index: int, dvs: "DVSChannel", now: int) -> None:
        snapshot = (
            dvs._level,
            dvs._voltage_level,
            dvs.locked,
            dvs._phase,
            dvs.flits_sent,
            dvs.sleeping,
        )
        previous = self._previous[index]
        if snapshot == previous:
            self._seen_at[index] = now
            if index in self._watched and not snapshot[2] and (
                snapshot[3] not in _LOCKED_PHASES
            ):
                self._watched.discard(index)
            return
        level, voltage, locked, phase, sent, sleeping = snapshot
        target = dvs.target_level
        in_lock = phase in _LOCKED_PHASES
        channel_id = self.engine.channels[index].spec.channel_id
        if sleeping != (phase is ChannelPhase.SLEEP):
            self._violation(
                f"sleeping mirror ({sleeping}) disagrees with phase "
                f"({phase.value}); wake demand would be "
                f"{'recorded for a live link' if sleeping else 'lost'}",
                cycle=now,
                channel=channel_id,
            )
        if phase in _SHUTDOWN_PHASES and (level != 0 or voltage != 0 or target != 0):
            self._violation(
                f"shutdown state entered away from level 0 (level={level}, "
                f"voltage={voltage}, target={target}); the sleep state sits "
                "below the bottom of the V/F table only",
                cycle=now,
                channel=channel_id,
            )
        max_level = self._max_level
        for label, value in (
            ("frequency", level),
            ("voltage", voltage),
            ("target", target),
        ):
            if not 0 <= value <= max_level:
                self._violation(
                    f"{label} level {value} outside the V/F table "
                    f"[0, {max_level}]",
                    cycle=now,
                    channel=channel_id,
                )
        if abs(level - voltage) > 1:
            self._violation(
                f"voltage level {voltage} and frequency level {level} "
                "diverged by more than one step",
                cycle=now,
                channel=channel_id,
            )
        if locked != in_lock:
            self._violation(
                f"locked mirror ({locked}) disagrees with phase "
                f"({phase.value}); the hot path would "
                f"{'stall a live link' if locked else 'transmit on a dead link'}",
                cycle=now,
                channel=channel_id,
            )
        if previous is not None:
            prev_level, prev_voltage = previous[0], previous[1]
            prev_locked = previous[2] or previous[3] in _LOCKED_PHASES
            prev_sent = previous[4]
            if abs(level - prev_level) > 1 or abs(voltage - prev_voltage) > 1:
                self._violation(
                    f"multi-step DVS jump: level {prev_level}->{level}, "
                    f"voltage {prev_voltage}->{voltage} within one check "
                    "interval (transitions must chain adjacent steps)",
                    cycle=now,
                    channel=channel_id,
                )
            if prev_locked and sent != prev_sent and (
                now - self._seen_at[index] == 1 or (locked and in_lock)
            ):
                # Gap of one cycle: the delta happened under the locked
                # state the previous observation recorded. Longer gap:
                # only attributable when the channel is *still* locked
                # (no unlock the sends could legally have followed).
                self._violation(
                    f"{sent - prev_sent} flit(s) transmitted "
                    "while the link was dead (frequency transition or "
                    "shutdown; data would be lost)",
                    rule="link-lockout",
                    cycle=now,
                    channel=channel_id,
                )
        self._previous[index] = snapshot
        self._seen_at[index] = now
        # Only *locked* channels need the per-cycle watch: the lockout
        # rule is the one invariant that is cycle-exact. A voltage ramp
        # can change levels only at its scheduled phase end (an event the
        # checker also receives), and the cadence clamp already puts two
        # scans inside every legal transition, so ramping channels stay
        # on the coarse cadence.
        if locked or in_lock:
            self._watched.add(index)
        else:
            self._watched.discard(index)


class TrafficContractSanitizer(SanitizerObserver):
    """``next_injection_cycle`` must be pure: the fast-forward contract.

    Every check calls the predictor twice and compares (catching stateful
    implementations that pop or advance on each call); every
    ``deep_every``-th check additionally snapshots the source's
    :meth:`~repro.traffic.base.TrafficSource.checkpoint` token around the
    call (catching hidden RNG draws that happen to return stable values).
    """

    rule = "traffic-contract"

    def __init__(
        self,
        engine: "SimulationEngine",
        *,
        deep_every: int = 64,
        **kwargs: object,
    ) -> None:
        super().__init__(engine, **kwargs)  # type: ignore[arg-type]
        if deep_every < 1:
            raise SimulationError("deep_every must be >= 1")
        self.deep_every = deep_every

    def check(self, now: int) -> None:
        traffic = self.engine.traffic
        deep = self.checks % self.deep_every == 0
        before = traffic.checkpoint() if deep else None
        first = traffic.next_injection_cycle(now)
        second = traffic.next_injection_cycle(now)
        if deep and traffic.checkpoint() != before:
            self._violation(
                "next_injection_cycle mutated source state (checkpoint "
                "changed); skipped calls would not be bit-identical",
                cycle=now,
            )
        if first != second:
            self._violation(
                f"next_injection_cycle is nondeterministic: {first!r} then "
                f"{second!r} for the same cycle",
                cycle=now,
            )
        if first is not None and first is not math.inf and first < now:
            self._violation(
                f"next_injection_cycle returned {first!r}, in the past of "
                f"cycle {now}",
                cycle=now,
            )


class NetworkSanitizer(Observer):
    """The full checker family over one engine, attachable as a unit.

    The bundle registers **itself** as the single bus observer and fans
    hook calls out to the checkers only on cycles where at least one of
    them could act: a cadence deadline, a controller window close, or a
    DVS channel under per-cycle watch. Every other stepped cycle costs
    one observer dispatch and two integer compares — the price of having
    the sanitizer attached at all.

    >>> simulator = Simulator(config, sanitize=True)   # doctest: +SKIP
    >>> simulator.run()                                # doctest: +SKIP
    >>> simulator.sanitizer.describe()                 # doctest: +SKIP
    'sanitizer: 4 checkers, 12000 checks, 0 violations'
    """

    #: Default cadence for the heavyweight whole-network walks. The state
    #: they check is persistent (a leaked credit or lost flit stays wrong
    #: until a check sees it), so a coarse cadence delays detection by at
    #: most ``check_every`` cycles without missing anything; the DVS
    #: checker watches channels in transition every cycle regardless and
    #: uses this cadence only for its steady-channel tamper scan.
    DEFAULT_CHECK_EVERY = 16

    def __init__(
        self,
        engine: "SimulationEngine",
        *,
        raise_on_violation: bool = True,
        check_every: int = DEFAULT_CHECK_EVERY,
    ) -> None:
        self.engine = engine
        self.checkers: tuple[SanitizerObserver, ...] = (
            ConservationSanitizer(
                engine, raise_on_violation=raise_on_violation,
                check_every=check_every,
            ),
            VCAllocationSanitizer(
                engine, raise_on_violation=raise_on_violation,
                check_every=check_every,
            ),
            DVSTransitionSanitizer(
                engine, raise_on_violation=raise_on_violation,
                check_every=check_every,
            ),
            TrafficContractSanitizer(
                engine, raise_on_violation=raise_on_violation,
                check_every=check_every,
            ),
        )
        self._dvs = next(
            checker for checker in self.checkers
            if isinstance(checker, DVSTransitionSanitizer)
        )
        #: Fan-out cadence: the fastest checker's cadence (the DVS one
        #: may clamp itself below the shared ``check_every``); the whole
        #: family fires together on it.
        self._cadence = min(checker.check_every for checker in self.checkers)
        self._since_fanout = 0
        self._window = (
            engine.config.dvs.history_window if engine.controllers else 0
        )
        self._attached = False

    def on_cycle(self, now: int) -> None:
        self._since_fanout += 1
        if self._since_fanout >= self._cadence or (
            self._window and now % self._window == 0
        ):
            self._since_fanout = 0
            for checker in self.checkers:
                checker._fire(now)
        elif self._dvs._watched:
            self._dvs._observe_watched(now)

    def on_idle_span(self, start: int, end: int) -> None:
        # Skipped spans are proven no-ops; see SanitizerObserver.
        pass

    def on_transition(self, event: "TransitionEvent") -> None:
        self._dvs.on_transition(event)

    def on_mark(self, label: str, cycle: int) -> None:
        self._since_fanout = 0
        for checker in self.checkers:
            checker.on_mark(label, cycle)

    def attach(self) -> "NetworkSanitizer":
        """Attach the bundle to the engine's instrumentation bus."""
        if self._attached:
            raise SimulationError("sanitizer is already attached")
        self.engine.bus.attach(self)
        self._attached = True
        return self

    def detach(self) -> None:
        """Detach the bundle (e.g. before a timing-sensitive phase)."""
        if not self._attached:
            raise SimulationError("sanitizer is not attached")
        self.engine.bus.detach(self)
        self._attached = False

    def __iter__(self) -> Iterator[SanitizerObserver]:
        return iter(self.checkers)

    @property
    def violations(self) -> list[SanitizerViolation]:
        """Every recorded violation across the family, in checker order."""
        found: list[SanitizerViolation] = []
        for checker in self.checkers:
            found.extend(checker.violations)
        return found

    @property
    def checks(self) -> int:
        return sum(checker.checks for checker in self.checkers)

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        return (
            f"sanitizer: {len(self.checkers)} checkers, {self.checks} checks, "
            f"{len(self.violations)} violations"
        )
