"""Fixture: R3 (traffic contract), R4 (observer skip-safety), R5 (config),
R6 (hot-path allocation), R8 (policy purity)."""

import random
from dataclasses import dataclass
from typing import Callable

from repro.core.policy import DVSAction, DVSPolicy
from repro.instrument.bus import Observer
from repro.traffic.base import TrafficSource

_DECISION_LOG = []


class UnpredictableTraffic(TrafficSource):  # one R3 violation
    def injections(self, now):
        return []


class PredictableTraffic(TrafficSource):  # clean: overrides the predictor
    def injections(self, now):
        return []

    def next_injection_cycle(self, now):
        return now + 1


class GreedyObserver(Observer):  # one R4 violation
    def on_cycle(self, now):
        pass


class DeclaredObserver(Observer):  # clean: documents the intent
    unskippable = True

    def on_cycle(self, now):
        pass


@dataclass(frozen=True)
class CallbackConfig:  # one R5 violation: a callable cannot be a cache key
    rate: float = 1.0
    on_drop: Callable[[int], None] = print


class CoinFlipPolicy(DVSPolicy):  # one R8 violation in decide()
    def decide(self, inputs):
        if random.randrange(2):  # unseeded: shared global generator
            return DVSAction.STEP_DOWN
        return DVSAction.HOLD

    def reset(self):
        pass


class AuditedPolicy(DVSPolicy):  # suppressed R8: must NOT be reported
    def decide(self, inputs):
        _DECISION_LOG.append(inputs)  # repro-lint: ignore[R8]
        return DVSAction.HOLD

    def reset(self):
        pass


class SeededPolicy(DVSPolicy):  # clean: seeded generator on self is pure
    def __init__(self):
        self._rng = random.Random(7)

    def decide(self, inputs):
        if self._rng.random() < 0.5:
            return DVSAction.STEP_DOWN
        return DVSAction.HOLD

    def reset(self):
        self._rng = random.Random(7)


def collect_ready(queues) -> int:  # repro-hot
    ready = []  # one R6 violation: list literal in a hot function
    for queue in queues:
        if queue:
            ready.append(queue[0])
    return len(ready)


def snapshot_counts(pairs):  # repro-hot
    # Suppressed R6: must NOT be reported.
    table = dict(pairs)  # repro-lint: ignore[R6]
    if not table:
        raise ValueError(f"no pairs in {list(pairs)!r}")  # clean: raise path
    return table
