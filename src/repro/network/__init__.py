"""Flit-level interconnection-network simulator substrate.

Reimplements (in Python) the event-driven flit-level simulator the paper
built in C++ (Section 4.1): k-ary n-cube topologies of pipelined
virtual-channel routers with credit-based flow control, whose inter-router
channels are DVS links with the transition behaviour of
:mod:`repro.core.dvs_link`.
"""

from .channel import NetworkChannel
from .engine import SimulationEngine
from .packet import Flit, Packet
from .routing import (
    DimensionOrderRouting,
    MinimalAdaptiveRouting,
    RoutingFunction,
    make_routing,
)
from .simulator import SimulationResult, Simulator
from .stats import NetworkSnapshot, snapshot
from .topology import Coordinates, Topology

__all__ = [
    "NetworkSnapshot",
    "snapshot",
    "Flit",
    "Packet",
    "Coordinates",
    "Topology",
    "RoutingFunction",
    "DimensionOrderRouting",
    "MinimalAdaptiveRouting",
    "make_routing",
    "NetworkChannel",
    "SimulationEngine",
    "Simulator",
    "SimulationResult",
]
