"""Tests for repro.units."""

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.errors import ConfigError


class TestConversions:
    def test_mhz(self):
        assert units.mhz(125.0) == 125.0e6

    def test_ghz(self):
        assert units.ghz(1.0) == 1.0e9

    def test_microseconds(self):
        assert units.microseconds(10.0) == pytest.approx(10.0e-6)

    def test_milliseconds(self):
        assert units.milliseconds(1.0) == pytest.approx(1.0e-3)

    def test_milliwatts(self):
        assert units.milliwatts(23.6) == pytest.approx(0.0236)


class TestSecondsToCycles:
    def test_paper_voltage_transition(self):
        # 10 us at the 1 GHz router clock is 10,000 cycles.
        assert units.seconds_to_cycles(10.0e-6, 1.0e9) == 10_000

    def test_rounding(self):
        assert units.seconds_to_cycles(1.4e-9, 1.0e9) == 1
        assert units.seconds_to_cycles(1.6e-9, 1.0e9) == 2

    def test_zero_duration(self):
        assert units.seconds_to_cycles(0.0, 1.0e9) == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            units.seconds_to_cycles(-1.0e-6, 1.0e9)

    def test_bad_clock_rejected(self):
        with pytest.raises(ConfigError):
            units.seconds_to_cycles(1.0e-6, 0.0)

    @given(st.floats(min_value=1e-9, max_value=1e-2))
    def test_round_trip(self, duration):
        cycles = units.seconds_to_cycles(duration, 1.0e9)
        back = units.cycles_to_seconds(cycles, 1.0e9)
        assert back == pytest.approx(duration, abs=1e-9)


class TestCyclesToSeconds:
    def test_simple(self):
        assert units.cycles_to_seconds(1000, 1.0e9) == pytest.approx(1.0e-6)

    def test_bad_clock(self):
        with pytest.raises(ConfigError):
            units.cycles_to_seconds(10, -1.0)


class TestBandwidth:
    def test_paper_channel_max(self):
        # 8 serial links at 1 GHz with 4:1 mux = 32 Gb/s.
        assert units.bandwidth_bits_per_s(1.0e9, 8, 4) == pytest.approx(32.0e9)

    def test_paper_channel_min(self):
        assert units.bandwidth_bits_per_s(125.0e6, 8, 4) == pytest.approx(4.0e9)

    def test_bad_lanes(self):
        with pytest.raises(ConfigError):
            units.bandwidth_bits_per_s(1.0e9, 0, 4)
