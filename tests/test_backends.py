"""Tests for the unified execution backends."""

from __future__ import annotations

import time

import pytest

from repro.errors import ExperimentError, SweepExecutionError
from repro.harness.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    default_backend,
    make_backend,
)
from repro.harness.parallel import parallel_rate_sweep
from repro.harness.resilience import RetryPolicy
from repro.harness.sweep import SweepPoint, rate_sweep

from .conftest import small_config


class TestMakeBackend:
    def test_serial_for_none_zero_one(self):
        assert isinstance(make_backend(None), SerialBackend)
        assert isinstance(make_backend(0), SerialBackend)
        assert isinstance(make_backend(1), SerialBackend)

    def test_pool_for_many(self):
        backend = make_backend(3, chunksize=2)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.processes == 3
        assert backend.chunksize == 2

    def test_negative_processes_rejected(self):
        with pytest.raises(ExperimentError):
            make_backend(-1)

    def test_bad_chunksize_rejected(self):
        with pytest.raises(ExperimentError):
            ProcessPoolBackend(2, chunksize=0)


class TestDefaultBackend:
    def test_unset_env_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROCESSES", raising=False)
        assert isinstance(default_backend(), SerialBackend)

    def test_env_selects_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "2")
        backend = default_backend()
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.processes == 2

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "many")
        with pytest.raises(ExperimentError):
            default_backend()


class TestBackendEquivalence:
    def test_serial_and_pool_return_identical_sweep_points(self):
        """Satellite acceptance: identical SweepPoint lists either way."""
        config = small_config(
            policy="history", rate=0.2, warmup=200, measure=800
        )
        rates = (0.2, 0.4, 0.6)
        serial = rate_sweep(config, rates, backend=SerialBackend())
        pooled = rate_sweep(
            config, rates, backend=ProcessPoolBackend(2, chunksize=2)
        )
        assert serial == pooled
        assert all(isinstance(p, SweepPoint) for p in serial)

    def test_explicit_chunksize_reaches_parallel_wrappers(self):
        config = small_config(rate=0.2, warmup=200, measure=600)
        points = parallel_rate_sweep(
            config, (0.2, 0.3), processes=2, chunksize=1
        )
        serial = rate_sweep(config, (0.2, 0.3), backend=SerialBackend())
        assert points == serial

    def test_repr_names_the_configuration(self):
        assert repr(SerialBackend()) == "SerialBackend()"
        assert "processes=3" in repr(ProcessPoolBackend(3, chunksize=5))

    def test_empty_batch_short_circuits(self):
        assert ProcessPoolBackend(4).map_configs([]) == []

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ExecutionBackend().map_configs([])


#: A retry policy that fails fast: no second attempts, no backoff waits.
FAIL_FAST = RetryPolicy(max_attempts=1, backoff_base_s=0.0)


def _configs(*rates):
    return [
        small_config(rate=rate, warmup=100, measure=300) for rate in rates
    ]


class TestFailureSemantics:
    def _poisoned_runner(self, poison_rate):
        def runner(config):
            if config.workload.injection_rate == poison_rate:
                raise ValueError(f"poisoned config at rate {poison_rate}")
            return f"result-{config.workload.injection_rate}"

        return runner

    def test_raising_config_degrades_to_a_hole_plus_failure(self, monkeypatch):
        monkeypatch.setattr(
            "repro.harness.backends.run_simulation",
            self._poisoned_runner(0.3),
        )
        backend = SerialBackend(retry=FAIL_FAST)
        results, report = backend.run(_configs(0.2, 0.3, 0.4))
        assert results == ["result-0.2", None, "result-0.4"]
        assert len(report.failures) == 1
        assert report.failures[0].outcome == "raised"
        assert "poisoned" in report.failures[0].error

    def test_strict_map_configs_raises_structured_error(self, monkeypatch):
        monkeypatch.setattr(
            "repro.harness.backends.run_simulation",
            self._poisoned_runner(0.3),
        )
        backend = SerialBackend(retry=FAIL_FAST)
        with pytest.raises(SweepExecutionError) as excinfo:
            backend.map_configs(_configs(0.2, 0.3))
        assert "1 of 2" in str(excinfo.value)
        assert excinfo.value.failures[0].outcome == "raised"

    def test_retry_recovers_a_flaky_config(self, monkeypatch):
        calls = {"count": 0}

        def flaky(config):
            calls["count"] += 1
            if calls["count"] == 1:
                raise OSError("transient")
            return "ok"

        monkeypatch.setattr("repro.harness.backends.run_simulation", flaky)
        backend = SerialBackend(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        )
        results, report = backend.run(_configs(0.2))
        assert results == ["ok"]
        assert report.ok
        assert len(report.incidents) == 1
        assert report.incidents[0].recovered

    def test_per_point_timeout_through_the_backend(self, monkeypatch):
        def stall(config):
            time.sleep(5.0)
            return "too late"

        monkeypatch.setattr("repro.harness.backends.run_simulation", stall)
        backend = SerialBackend(
            retry=RetryPolicy(max_attempts=1, timeout_s=0.05)
        )
        results, report = backend.run(_configs(0.2))
        assert results == [None]
        assert report.failures[0].outcome == "timeout"

    def test_single_process_pool_degenerates_to_serial_path(self, monkeypatch):
        monkeypatch.setattr(
            "repro.harness.backends.run_simulation",
            self._poisoned_runner(0.3),
        )
        backend = ProcessPoolBackend(1, retry=FAIL_FAST)
        results, report = backend.run(_configs(0.2, 0.3))
        assert results == ["result-0.2", None]
        assert len(report.failures) == 1

    def test_sweep_drops_failed_points_when_keep_going(self, monkeypatch):
        from repro.harness.resilience import FailureReport

        monkeypatch.setattr(
            "repro.harness.backends.run_simulation",
            self._poisoned_runner(0.3),
        )

        # Patch SweepPoint construction away from real results.
        report = FailureReport()
        backend = SerialBackend(retry=FAIL_FAST)
        results, run_report = backend.run(_configs(0.2, 0.3, 0.4))
        report.merge(run_report)
        kept = [r for r in results if r is not None]
        assert len(kept) == 2
        assert not report.ok


class TestRetryWiring:
    def test_make_backend_passes_retry_through(self):
        policy = RetryPolicy(max_attempts=5)
        assert make_backend(1, retry=policy).retry is policy
        assert make_backend(3, retry=policy).retry is policy

    def test_default_backend_passes_retry_through(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROCESSES", raising=False)
        policy = RetryPolicy(max_attempts=5)
        assert default_backend(retry=policy).retry is policy

    def test_custom_retry_shows_in_serial_repr(self):
        policy = RetryPolicy(max_attempts=5)
        assert "max_attempts=5" in repr(SerialBackend(retry=policy))

    def test_bad_respawn_bound_rejected(self):
        with pytest.raises(ExperimentError):
            ProcessPoolBackend(2, max_pool_respawns=-1)
