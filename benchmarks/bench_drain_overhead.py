"""Drain-progress accounting overhead (outstanding-event counters).

``drain()`` and conservation tests poll :meth:`flits_in_network` and the
drain predicate every cycle. Before the kernel split those polls walked
every pending event bucket — O(all buckets) per call, and the bucket map
holds thousands of future arrivals/credits under load. The kernel now
maintains outstanding-event counters updated at schedule/dispatch, so
both checks are O(routers).

Measured on the pre-refactor monolith at this exact load point (8x8
mesh, uniform 0.6, ~1.6k pending events): 10,000 ``flits_in_network()``
calls took 0.482 s (~48 us each) and 10,000 transport-event scans took
0.074 s. The counter-based equivalents below run the same 10,000 calls
in ~0.016 s / ~0.0004 s (~29x and ~180x faster); the benchmark asserts a
loose 10x bound so scheduler noise cannot flake it.
"""

from repro.config import NetworkConfig, SimulationConfig, WorkloadConfig
from repro.network.debug import audit
from repro.network.simulator import Simulator

from .common import run_once

CALLS = 10_000


def loaded_simulator() -> Simulator:
    """An 8x8 mesh warmed to steady state with plenty of in-flight events."""
    config = SimulationConfig(
        network=NetworkConfig(radix=8, dimensions=2),
        workload=WorkloadConfig(kind="uniform", injection_rate=0.6, seed=11),
        warmup_cycles=0,
        measure_cycles=1_000,
    )
    simulator = Simulator(config)
    simulator.run_cycles(1_000)
    return simulator


def test_flits_in_network_is_counter_based(benchmark):
    simulator = loaded_simulator()
    pending = sum(1 for _ in simulator.iter_scheduled_events())
    # The load point only makes sense with a busy event map.
    assert pending > 500

    def poll():
        total = 0
        for _ in range(CALLS):
            total += simulator.flits_in_network()
        return total

    total = run_once(benchmark, poll)
    assert total == CALLS * simulator.flits_in_network()
    # Counters must agree with a full bucket walk (audit re-derives them).
    audit(simulator)
    # 10k calls took 0.482 s on the bucket-walking monolith; allow 10x
    # headroom over the measured 0.017 s counter time.
    assert benchmark.stats["mean"] < 0.482 / 10


def test_drain_predicate_is_constant_time(benchmark):
    simulator = loaded_simulator()

    def poll():
        busy = 0
        for _ in range(CALLS):
            busy += simulator._pending_transport > 0
        return busy

    busy = run_once(benchmark, poll)
    assert busy == CALLS  # network is loaded, so always busy
    assert benchmark.stats["mean"] < 0.074
