"""Routing functions: deterministic and adaptive (paper Section 4.1).

Three routing functions are provided:

* :class:`DimensionOrderRouting` on a mesh — classic XY/dimension-order
  routing, deadlock-free by turn ordering, any VC usable.
* :class:`DimensionOrderRouting` on a torus — adds the dateline discipline:
  within each dimension's ring a packet starts on VC class 0 and moves to
  class 1 after crossing the wraparound edge, which breaks the ring's cyclic
  channel dependency (requires >= 2 virtual channels).
* :class:`MinimalAdaptiveRouting` on a mesh — Duato-style: VC 0 is an
  escape channel restricted to the dimension-order route, the remaining VCs
  are fully adaptive over all minimal (productive) directions.

A routing function answers three questions for the router:

* ``candidates(node, dst)`` — productive output ports, in preference order;
* ``allowed_vcs(node, out_port, dst, vc_class)`` — which downstream VCs a
  packet of the given dateline class may claim through that port;
* ``next_vc_class(node, out_port, vc_class)`` — the packet's dateline class
  after traversing that channel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ConfigError, RoutingError
from .topology import Topology


class RoutingFunction(ABC):
    """Interface the router uses to steer head flits."""

    def __init__(self, topology: Topology, vcs_per_port: int):
        if vcs_per_port < 1:
            raise ConfigError("need at least one virtual channel")
        self.topology = topology
        self.vcs_per_port = vcs_per_port
        self._all_vcs = tuple(range(vcs_per_port))

    @abstractmethod
    def candidates(self, node: int, dst: int) -> tuple[int, ...]:
        """Productive output ports from *node* toward *dst*, best first."""

    def allowed_vcs(
        self, node: int, out_port: int, dst: int, vc_class: int
    ) -> tuple[int, ...]:
        """Downstream VCs claimable through *out_port* (default: all)."""
        return self._all_vcs

    def next_vc_class(self, node: int, out_port: int, vc_class: int) -> int:
        """Dateline class after traversing *out_port* (default: unchanged)."""
        return vc_class

    def _check(self, node: int, dst: int) -> None:
        if node == dst:
            raise RoutingError(f"asked to route at destination node {node}")


class DimensionOrderRouting(RoutingFunction):
    """Dimension-order (XY) routing on mesh or torus.

    On a torus the route goes the shorter way around each ring (ties break
    toward the plus direction) and VC selection follows the dateline rule.
    """

    name = "dor"

    #: Precompute the full node x node route table up to this many nodes;
    #: beyond it, fall back to per-query computation with a bounded cache.
    _TABLE_LIMIT = 1024

    #: Maximum (node, dst) entries in the per-query cache; oldest-inserted
    #: entries are evicted first once full (dict preserves insert order).
    _CACHE_LIMIT = 8192

    def __init__(self, topology: Topology, vcs_per_port: int):
        super().__init__(topology, vcs_per_port)
        if topology.wraparound and vcs_per_port < 2:
            raise ConfigError("torus dimension-order routing needs >= 2 VCs")
        self._route_cache: dict[tuple[int, int], int] = {}
        self._table: list[list[int]] | None = None
        if topology.node_count <= self._TABLE_LIMIT:
            self._table = [
                [
                    self._compute_route_port(node, dst) if node != dst else -1
                    for dst in range(topology.node_count)
                ]
                for node in range(topology.node_count)
            ]

    def route_port(self, node: int, dst: int) -> int:
        """The unique dimension-order output port from *node* toward *dst*."""
        if self._table is not None:
            port = self._table[node][dst]
            if port < 0:
                raise RoutingError(f"asked to route at destination node {node}")
            return port
        cache = self._route_cache
        key = (node, dst)
        port = cache.get(key)
        if port is None:
            port = self._compute_route_port(node, dst)
            if len(cache) >= self._CACHE_LIMIT:
                del cache[next(iter(cache))]
            cache[key] = port
        return port

    def _compute_route_port(self, node: int, dst: int) -> int:
        self._check(node, dst)
        topo = self.topology
        src_coords = topo.coords(node)
        dst_coords = topo.coords(dst)
        for dim in range(topo.dimensions):
            a, b = src_coords[dim], dst_coords[dim]
            if a == b:
                continue
            if not topo.wraparound:
                return topo.plus_port(dim) if b > a else topo.minus_port(dim)
            forward = (b - a) % topo.radix
            backward = (a - b) % topo.radix
            if forward <= backward:
                return topo.plus_port(dim)
            return topo.minus_port(dim)
        raise RoutingError(f"no productive dimension from {node} to {dst}")

    def candidates(self, node: int, dst: int) -> tuple[int, ...]:
        return (self.route_port(node, dst),)

    def allowed_vcs(
        self, node: int, out_port: int, dst: int, vc_class: int
    ) -> tuple[int, ...]:
        if not self.topology.wraparound:
            return self._all_vcs
        # Dateline discipline: class 0 packets may only claim VC 0, class 1
        # packets only VC 1; any extra VCs beyond the first two are open.
        extra = tuple(range(2, self.vcs_per_port))
        return (min(vc_class, 1),) + extra

    def next_vc_class(self, node: int, out_port: int, vc_class: int) -> int:
        if not self.topology.wraparound:
            return 0
        topo = self.topology
        dim, is_minus = divmod(out_port, 2)
        src_coord = topo.coords(node)[dim]
        # Crossing the wrap edge of this ring raises the class to 1; moving
        # within the ring keeps it; the class resets to 0 when the packet
        # later turns into a new dimension (detected by the router, which
        # calls with vc_class already reset).
        wraps = (src_coord == topo.radix - 1 and not is_minus) or (
            src_coord == 0 and is_minus
        )
        return 1 if wraps else vc_class


class MinimalAdaptiveRouting(RoutingFunction):
    """Minimal adaptive routing on a mesh with a dimension-order escape VC.

    All productive directions are candidates; VC 0 through any port is
    restricted to the dimension-order route so the escape subnetwork is the
    deadlock-free DOR network (Duato's protocol). Requires >= 2 VCs to give
    the adaptive class somewhere to live.
    """

    name = "adaptive"

    #: Maximum cached (node, dst) candidate tuples; oldest-inserted
    #: entries are evicted first once full.
    _CACHE_LIMIT = 8192

    def __init__(self, topology: Topology, vcs_per_port: int):
        super().__init__(topology, vcs_per_port)
        if topology.wraparound:
            raise ConfigError("minimal adaptive routing is mesh-only here")
        if vcs_per_port < 2:
            raise ConfigError("minimal adaptive routing needs >= 2 VCs")
        self._dor = DimensionOrderRouting(topology, vcs_per_port)
        self._candidate_cache: dict[tuple[int, int], tuple[int, ...]] = {}

    def candidates(self, node: int, dst: int) -> tuple[int, ...]:
        cache = self._candidate_cache
        cached = cache.get((node, dst))
        if cached is not None:
            return cached
        result = self._compute_candidates(node, dst)
        if len(cache) >= self._CACHE_LIMIT:
            del cache[next(iter(cache))]
        cache[(node, dst)] = result
        return result

    def _compute_candidates(self, node: int, dst: int) -> tuple[int, ...]:
        self._check(node, dst)
        topo = self.topology
        src_coords = topo.coords(node)
        dst_coords = topo.coords(dst)
        ports = []
        for dim in range(topo.dimensions):
            a, b = src_coords[dim], dst_coords[dim]
            if b > a:
                ports.append(topo.plus_port(dim))
            elif b < a:
                ports.append(topo.minus_port(dim))
        if not ports:
            raise RoutingError(f"no productive dimension from {node} to {dst}")
        # Prefer the dimension with the most remaining hops (keeps future
        # adaptivity high), falling back to dimension order on ties.
        ports.sort(
            key=lambda p: -abs(dst_coords[p // 2] - src_coords[p // 2]),
        )
        return tuple(ports)

    def allowed_vcs(
        self, node: int, out_port: int, dst: int, vc_class: int
    ) -> tuple[int, ...]:
        adaptive = tuple(range(1, self.vcs_per_port))
        if out_port == self._dor.route_port(node, dst):
            return (0,) + adaptive
        return adaptive

    def next_vc_class(self, node: int, out_port: int, vc_class: int) -> int:
        return 0


_ROUTING_NAMES = {
    "dor": DimensionOrderRouting,
    "adaptive": MinimalAdaptiveRouting,
}


def make_routing(name: str, topology: Topology, vcs_per_port: int) -> RoutingFunction:
    """Build a routing function by configuration name ('dor', 'adaptive')."""
    try:
        cls = _ROUTING_NAMES[name]
    except KeyError:
        raise ConfigError(
            f"unknown routing {name!r}; choose from {sorted(_ROUTING_NAMES)}"
        ) from None
    return cls(topology, vcs_per_port)
