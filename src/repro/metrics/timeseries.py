"""Windowed time series (Figures 9 and 12 support)."""

from __future__ import annotations

from ..errors import ConfigError


class WindowedSeries:
    """Per-window scalar samples at a fixed window size."""

    __slots__ = ("window_cycles", "values", "_window_start")

    def __init__(self, window_cycles: int):
        if window_cycles <= 0:
            raise ConfigError("window must be positive")
        self.window_cycles = window_cycles
        self.values: list[float] = []
        self._window_start = 0

    def append(self, value: float) -> None:
        self.values.append(value)
        self._window_start += self.window_cycles

    def __len__(self) -> int:
        return len(self.values)

    def times(self) -> list[int]:
        """Window-end cycles aligned with :attr:`values`."""
        return [
            (i + 1) * self.window_cycles for i in range(len(self.values))
        ]

    def mean(self) -> float:
        if not self.values:
            raise ConfigError("series is empty")
        return sum(self.values) / len(self.values)

    def variance(self) -> float:
        if len(self.values) < 2:
            raise ConfigError("need at least two samples for variance")
        m = self.mean()
        return sum((v - m) ** 2 for v in self.values) / (len(self.values) - 1)
