"""Tests for the topology-bound network channel."""

import pytest

from repro.core.dvs_link import DVSChannel, TransitionTiming
from repro.core.levels import PAPER_TABLE
from repro.core.power_model import PAPER_LINK_POWER
from repro.errors import ConfigError
from repro.network.channel import NetworkChannel
from repro.network.topology import ChannelSpec


def make_network_channel(initial_level=9, pipeline_latency=12):
    dvs = DVSChannel(
        PAPER_TABLE,
        PAPER_LINK_POWER,
        timing=TransitionTiming(0.5e-6, 5),
        initial_level=initial_level,
    )
    spec = ChannelSpec(0, src_node=0, src_port=0, dst_node=1, dst_port=1, )
    return NetworkChannel(spec, dvs, pipeline_latency)


class TestArrivalTiming:
    def test_max_speed_arrival(self):
        channel = make_network_channel(initial_level=9, pipeline_latency=12)
        # serialization 1 cycle + pipeline 12: launch at 100 -> arrive 113.
        assert channel.send(100) == 113

    def test_min_speed_arrival(self):
        channel = make_network_channel(initial_level=0, pipeline_latency=12)
        # serialization 8 cycles at 125 MHz.
        assert channel.send(100) == 120

    def test_fractional_serialization_ceils(self):
        channel = make_network_channel(initial_level=8, pipeline_latency=0)
        ser = channel.serialization_cycles
        assert channel.send(0) == -(-int(ser * 1000) // 1000)  # ceil(ser)

    def test_back_to_back_uses_staging(self):
        channel = make_network_channel(initial_level=0, pipeline_latency=0)
        first = channel.send(0)
        assert not channel.can_accept(1)
        assert channel.can_accept(int(first) - 1 + 1) or channel.can_accept(int(first))

    def test_negative_pipeline_rejected(self):
        with pytest.raises(ConfigError):
            make_network_channel(pipeline_latency=-1)

    def test_repr_mentions_endpoints(self):
        assert "0:0 -> 1:1" in repr(make_network_channel())
