"""JSON serialization of experiment results.

Experiment result objects are nested dataclasses containing floats, ints,
dicts and lists; :func:`to_json` converts them recursively (dataclasses to
dicts, NaN preserved as the string ``"nan"`` for portability) and
:func:`write_json` persists them.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path


def to_json(obj: object) -> object:
    """Recursively convert *obj* into JSON-compatible primitives."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_json(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): to_json(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_json(item) for item in obj]
    if isinstance(obj, float):
        if math.isnan(obj):
            return "nan"
        if math.isinf(obj):
            return "inf" if obj > 0 else "-inf"
        return obj
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    # Fall back to repr for exotic leaves (enums, objects) — lossy but
    # never raises, which matters for best-effort experiment archiving.
    return repr(obj)


def canonical_json(obj: object) -> str:
    """Deterministic compact JSON for content addressing.

    Keys are sorted and separators fixed, so two structurally equal
    objects always produce byte-identical strings — the property the
    sweep cache's fingerprints rely on.
    """
    return json.dumps(to_json(obj), sort_keys=True, separators=(",", ":"))


def write_json(obj: object, path: str | Path) -> Path:
    """Serialize *obj* with :func:`to_json` and write it to *path*."""
    path = Path(path)
    path.write_text(json.dumps(to_json(obj), indent=2))
    return path
