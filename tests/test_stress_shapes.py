"""Stress and shape tests: unusual topologies, capacity limits, and
channel-bandwidth properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    DVSControlConfig,
    NetworkConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.core.dvs_link import DVSChannel, TransitionTiming
from repro.core.levels import PAPER_TABLE
from repro.core.power_model import PAPER_LINK_POWER
from repro.network.simulator import Simulator
from repro.traffic.trace import TraceReplaySource

from .conftest import FAST_LINK


def build(network, rate=0.3, policy="none", measure=2_000, **wl):
    config = SimulationConfig(
        network=network,
        link=FAST_LINK,
        dvs=DVSControlConfig(policy=policy),
        workload=WorkloadConfig(kind="uniform", injection_rate=rate, seed=2, **wl),
        warmup_cycles=200,
        measure_cycles=measure,
    )
    return Simulator(config)


class TestUnusualTopologies:
    def test_ring_delivers(self):
        network = NetworkConfig(
            radix=6, dimensions=1, wraparound=True, buffers_per_port=16
        )
        simulator = build(network, rate=0.2)
        simulator.run_cycles(2_000)
        offered = simulator.traffic.packets_offered
        simulator.traffic = TraceReplaySource(
            simulator.topology, simulator.config.workload, []
        )
        simulator.drain(max_cycles=50_000)
        assert simulator.total_ejected_packets == offered

    def test_3d_cube_delivers(self):
        network = NetworkConfig(radix=3, dimensions=3, buffers_per_port=16)
        simulator = build(network, rate=0.4)
        simulator.run_cycles(2_000)
        offered = simulator.traffic.packets_offered
        simulator.traffic = TraceReplaySource(
            simulator.topology, simulator.config.workload, []
        )
        simulator.drain(max_cycles=50_000)
        assert simulator.total_ejected_packets == offered

    def test_3d_cube_with_dvs(self):
        network = NetworkConfig(radix=3, dimensions=3, buffers_per_port=16)
        simulator = build(network, rate=0.05, policy="history", measure=4_000)
        result = simulator.run()
        assert result.power.normalized < 1.0

    def test_minimal_2x2_mesh(self):
        network = NetworkConfig(radix=2, dimensions=2, buffers_per_port=8)
        simulator = build(network, rate=0.2)
        result = simulator.run()
        assert result.ejected_packets > 0


class TestCapacityLimits:
    def test_single_flow_throughput_bounded_by_link(self):
        """A one-pair flow cannot exceed one flit per cycle per channel:
        0.2 packets/cycle with 5-flit packets."""
        network = NetworkConfig(radix=3, dimensions=2, buffers_per_port=16)
        trace = [(cycle, 0, 1) for cycle in range(4_000) for _ in range(2)]
        simulator = build(network, rate=0.001)
        simulator.traffic = TraceReplaySource(
            simulator.topology, simulator.config.workload, trace
        )
        simulator.begin_measurement()
        simulator.run_cycles(4_000)
        result = simulator.finish()
        assert result.accepted_rate <= 0.2 + 0.01

    def test_slow_links_cut_single_flow_throughput(self):
        """Pinning links at the bottom level divides the same flow's
        capacity by the serialization ratio (8x at level 0)."""
        network = NetworkConfig(radix=3, dimensions=2, buffers_per_port=16)
        trace = [(cycle, 0, 1) for cycle in range(4_000)]
        results = {}
        for level in (9, 0):
            config = SimulationConfig(
                network=network,
                link=FAST_LINK,
                dvs=DVSControlConfig(policy="history", initial_level=level),
                workload=WorkloadConfig(kind="uniform", injection_rate=0.001),
                warmup_cycles=0,
                measure_cycles=4_000,
            )
            simulator = Simulator(config)
            simulator.controllers = []  # pin the level: no policy actions
            simulator.traffic = TraceReplaySource(
                simulator.topology, config.workload, trace
            )
            simulator.begin_measurement()
            simulator.run_cycles(4_000)
            results[level] = simulator.finish()
        ratio = results[9].accepted_rate / results[0].accepted_rate
        assert ratio == pytest.approx(8.0, rel=0.2)


class TestChannelBandwidthProperty:
    @settings(max_examples=20, deadline=None)
    @given(level=st.integers(min_value=0, max_value=9))
    def test_saturated_channel_hits_rated_bandwidth(self, level):
        """Offering a flit every cycle, a channel at any level delivers
        its rated 1/serialization flits per cycle (staging register)."""
        channel = DVSChannel(
            PAPER_TABLE,
            PAPER_LINK_POWER,
            timing=TransitionTiming(0.2e-6, 4),
            initial_level=level,
        )
        horizon = 2_000
        sent = 0
        for now in range(horizon):
            if channel.can_accept_flit(now):
                channel.send_flit(now)
                sent += 1
        rated = horizon / channel.serialization_cycles
        assert sent == pytest.approx(rated, rel=0.01)

    @settings(max_examples=20, deadline=None)
    @given(level=st.integers(min_value=0, max_value=9))
    def test_busy_time_never_exceeds_horizon(self, level):
        channel = DVSChannel(
            PAPER_TABLE,
            PAPER_LINK_POWER,
            timing=TransitionTiming(0.2e-6, 4),
            initial_level=level,
        )
        horizon = 1_000
        for now in range(horizon):
            if channel.can_accept_flit(now):
                channel.send_flit(now)
        # One flit may straddle the horizon boundary.
        assert channel.busy_cycles_total <= horizon + channel.serialization_cycles
