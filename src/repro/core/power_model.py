"""Link power and transition-energy models.

The paper publishes two anchor points for a single serial link (Section
4.2): 23.6 mW at 125 MHz / 0.9 V and 200 mW at 1 GHz / 2.5 V. A pure
``C*V^2*f`` dynamic-power model cannot pass through both (the ratio of the
anchors is ~8.5x while ``V^2*f`` spans ~62x), because high-speed link
circuits burn a large static/bias component (current-mode drivers, clock
recovery). We therefore fit the two-term model

    P(V, f) = k1 * V^2 * f  +  k2 * V

exactly through the two anchors: the first term is conventional switching
power, the second a supply-proportional bias-current term. Both fitted
coefficients come out positive for the paper's anchors, which keeps the
model physically sensible and monotone in level.

Transition energy follows Stratakos's first-order estimate (paper Eq. (1)):

    E_overhead = (1 - eta) * C * |V2^2 - V1^2|

with the paper's values C = 5 uF filter capacitance and eta = 90% regulator
efficiency. One adaptive power-supply regulator feeds all serial links of a
channel (Figure 1), so transition energy is charged per *channel*, not per
link.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .levels import VFOperatingPoint, VFTable


def transition_energy(
    voltage_from_v: float,
    voltage_to_v: float,
    *,
    filter_capacitance_f: float = 5.0e-6,
    efficiency: float = 0.9,
) -> float:
    """Regulator energy overhead (J) for a voltage transition, paper Eq. (1).

    Symmetric in direction: ramping 0.9 V -> 2.5 V costs the same overhead
    as 2.5 V -> 0.9 V under this first-order estimate.
    """
    if filter_capacitance_f <= 0.0:
        raise ConfigError("filter capacitance must be positive")
    if not 0.0 <= efficiency < 1.0:
        raise ConfigError(f"efficiency must be in [0, 1), got {efficiency!r}")
    if voltage_from_v <= 0.0 or voltage_to_v <= 0.0:
        raise ConfigError("voltages must be positive")
    return (
        (1.0 - efficiency)
        * filter_capacitance_f
        * abs(voltage_to_v**2 - voltage_from_v**2)
    )


@dataclass(frozen=True, slots=True)
class RegulatorModel:
    """Adaptive power-supply regulator shared by the links of one channel."""

    filter_capacitance_f: float = 5.0e-6
    efficiency: float = 0.9

    def __post_init__(self) -> None:
        if self.filter_capacitance_f <= 0.0:
            raise ConfigError("filter capacitance must be positive")
        if not 0.0 <= self.efficiency < 1.0:
            raise ConfigError("efficiency must be in [0, 1)")

    def transition_energy_j(self, voltage_from_v: float, voltage_to_v: float) -> float:
        """Energy overhead of one voltage transition (J)."""
        return transition_energy(
            voltage_from_v,
            voltage_to_v,
            filter_capacitance_f=self.filter_capacitance_f,
            efficiency=self.efficiency,
        )


class LinkPowerModel:
    """Per-link power as a function of operating point.

    Fitted as ``P = k1*V^2*f + k2*V`` through two anchor operating points.
    The default anchors are the paper's published endpoints.
    """

    def __init__(
        self,
        *,
        low_anchor: VFOperatingPoint | None = None,
        low_power_w: float = 23.6e-3,
        high_anchor: VFOperatingPoint | None = None,
        high_power_w: float = 200.0e-3,
    ) -> None:
        if low_anchor is None:
            low_anchor = VFOperatingPoint(frequency_hz=125.0e6, voltage_v=0.9)
        if high_anchor is None:
            high_anchor = VFOperatingPoint(frequency_hz=1.0e9, voltage_v=2.5)
        if low_power_w <= 0.0 or high_power_w <= 0.0:
            raise ConfigError("anchor powers must be positive")
        if high_power_w <= low_power_w:
            raise ConfigError("high anchor power must exceed low anchor power")

        # Solve the 2x2 linear system:
        #   k1 * V1^2 f1 + k2 * V1 = P1
        #   k1 * V2^2 f2 + k2 * V2 = P2
        a11 = low_anchor.voltage_v**2 * low_anchor.frequency_hz
        a12 = low_anchor.voltage_v
        a21 = high_anchor.voltage_v**2 * high_anchor.frequency_hz
        a22 = high_anchor.voltage_v
        det = a11 * a22 - a12 * a21
        if det == 0.0:
            raise ConfigError("anchor points are degenerate; cannot fit power model")
        k1 = (low_power_w * a22 - high_power_w * a12) / det
        k2 = (a11 * high_power_w - a21 * low_power_w) / det
        if k1 < 0.0 or k2 < 0.0:
            raise ConfigError(
                "fitted power model has a negative coefficient "
                f"(k1={k1:.3e}, k2={k2:.3e}); anchors are not physically consistent"
            )
        self._k1 = k1
        self._k2 = k2
        self.low_anchor = low_anchor
        self.high_anchor = high_anchor

    @property
    def switching_coefficient(self) -> float:
        """k1 in ``P = k1*V^2*f + k2*V`` (F, an effective capacitance)."""
        return self._k1

    @property
    def bias_coefficient(self) -> float:
        """k2 in ``P = k1*V^2*f + k2*V`` (A, an effective bias current)."""
        return self._k2

    def power_w(self, point: VFOperatingPoint) -> float:
        """Power (W) of one serial link at *point*."""
        return (
            self._k1 * point.voltage_v**2 * point.frequency_hz
            + self._k2 * point.voltage_v
        )

    def level_power_w(self, table: VFTable, level: int) -> float:
        """Power (W) of one serial link at *level* of *table*."""
        return self.power_w(table[level])

    def channel_power_w(self, table: VFTable, level: int, lanes: int = 8) -> float:
        """Power (W) of a channel made of *lanes* serial links at *level*."""
        if lanes <= 0:
            raise ConfigError("a channel needs at least one lane")
        return lanes * self.level_power_w(table, level)

    def sleep_power_w(self, retention_voltage_v: float, lanes: int = 8) -> float:
        """Leakage power (W) of a *lanes*-link channel held at a retention
        rail below the operating range (Tsai-style link shutdown).

        With the clocks gated the switching term vanishes; what remains is
        the supply-proportional bias term ``k2 * V`` evaluated at the
        retention voltage.
        """
        if retention_voltage_v <= 0.0:
            raise ConfigError("retention voltage must be positive")
        if lanes <= 0:
            raise ConfigError("a channel needs at least one lane")
        return lanes * self._k2 * retention_voltage_v

    def level_powers_w(self, table: VFTable) -> tuple[float, ...]:
        """Per-link power for every level of *table*, slowest first."""
        return tuple(self.power_w(point) for point in table)

    def describe(self, table: VFTable) -> str:
        """Render per-level power of *table* as a text table."""
        lines = ["level  freq(MHz)  voltage(V)  power(mW)"]
        for index, point in enumerate(table):
            lines.append(
                f"{index:>5}  {point.frequency_hz / 1e6:>9.1f}  "
                f"{point.voltage_v:>10.3f}  {self.power_w(point) * 1e3:>9.2f}"
            )
        return "\n".join(lines)


#: Model fitted through the paper's published endpoints.
PAPER_LINK_POWER = LinkPowerModel()
