"""Tests for round-robin arbitration."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.network.arbiters import RoundRobinArbiter


class TestGrant:
    def test_single_requester(self):
        arbiter = RoundRobinArbiter(4)
        assert arbiter.grant([False, True, False, False]) == 1

    def test_no_requests(self):
        arbiter = RoundRobinArbiter(4)
        assert arbiter.grant([False] * 4) is None

    def test_rotation(self):
        arbiter = RoundRobinArbiter(3)
        all_on = [True, True, True]
        assert arbiter.grant(all_on) == 0
        assert arbiter.grant(all_on) == 1
        assert arbiter.grant(all_on) == 2
        assert arbiter.grant(all_on) == 0

    def test_winner_becomes_lowest_priority(self):
        arbiter = RoundRobinArbiter(4)
        arbiter.grant([True, False, False, True])  # grants 0
        assert arbiter.grant([True, False, False, True]) == 3

    def test_wrong_width(self):
        arbiter = RoundRobinArbiter(4)
        with pytest.raises(ConfigError):
            arbiter.grant([True, False])

    def test_size_validation(self):
        with pytest.raises(ConfigError):
            RoundRobinArbiter(0)


class TestGrantFrom:
    def test_sparse(self):
        arbiter = RoundRobinArbiter(8)
        assert arbiter.grant_from({5, 6}) == 5
        assert arbiter.grant_from({5, 6}) == 6

    def test_empty(self):
        assert RoundRobinArbiter(4).grant_from(set()) is None


class TestAdvancePast:
    def test_sets_priority(self):
        arbiter = RoundRobinArbiter(4)
        arbiter.advance_past(2)
        assert arbiter.priority_head == 3

    def test_wraps(self):
        arbiter = RoundRobinArbiter(4)
        arbiter.advance_past(3)
        assert arbiter.priority_head == 0

    def test_range_check(self):
        with pytest.raises(ConfigError):
            RoundRobinArbiter(4).advance_past(4)


@given(
    size=st.integers(min_value=1, max_value=8),
    rounds=st.integers(min_value=1, max_value=64),
)
def test_fairness_under_persistent_requests(size, rounds):
    """With everyone requesting, grants are perfectly balanced."""
    arbiter = RoundRobinArbiter(size)
    counts = [0] * size
    for _ in range(rounds * size):
        winner = arbiter.grant([True] * size)
        counts[winner] += 1
    assert max(counts) - min(counts) == 0


@given(
    requests=st.lists(
        st.sets(st.integers(min_value=0, max_value=5), min_size=1), min_size=1, max_size=50
    )
)
def test_granted_id_always_requested(requests):
    arbiter = RoundRobinArbiter(6)
    for request_set in requests:
        winner = arbiter.grant_from(request_set)
        assert winner in request_set
