"""Deterministic fault injection for exercising the resilience layer.

Every recovery path in the sweep execution layer — worker-crash
isolation, per-point retries, timeout handling, corrupt cache entry
quarantine — is exercised bit-reproducibly through this module instead of
being trusted on faith. A :class:`ChaosPlan` decides, purely from its
seed and a config fingerprint, which points get which fault::

    plan = ChaosPlan(seed=7, crash_rate=0.2, state_dir=str(tmp))
    plan.fault_for(config.fingerprint())   # None | "crash" | "raise" | "slow"

Fault kinds
    ``crash``   the worker process calls ``os._exit`` mid-point (only in
                worker processes; in-process runs degrade it to ``raise``
                so the chaos harness cannot kill the driving process).
    ``raise``   the point raises :class:`~repro.errors.ChaosError` before
                simulating.
    ``slow``    the point stalls for ``slow_s`` seconds before simulating,
                tripping any configured per-point wall-clock timeout.
    ``corrupt`` the sweep cache truncates the entry it just stored, so a
                later load exercises the quarantine path.

Network fault kinds (distributed fabric, selected per *chunk* by the
same seeded mechanism and applied by ``repro worker`` — see
:mod:`repro.harness.distributed`):
    ``disconnect``      the worker drops its coordinator connection the
                        moment it receives the chunk (a mid-run network
                        partition); the coordinator re-dispatches.
    ``stall-heartbeat`` the worker freezes (blocking sleep of ``stall_s``
                        seconds, heartbeats included), so the coordinator
                        declares the host lost and steals its chunk.
    ``slow-host``       the worker computes but delays the result by
                        ``slow_host_s`` seconds, exercising lease-expiry
                        work-stealing while heartbeats stay healthy.
    ``corrupt-payload`` the worker flips a byte in the result frame, so
                        the coordinator's payload digest check rejects it
                        and re-dispatches the chunk.

Determinism
    The decision for a point is ``sha256(seed : kind : fingerprint)``
    compared against the configured rate — independent of execution
    order, process, or wall clock, so serial and pooled runs inject the
    same faults and a test can precompute exactly which points fire.

Once-only semantics
    With ``state_dir`` set (strongly recommended), each fault fires at
    most once: the firing process claims an ``O_EXCL`` marker file first,
    so the retry/respawn of the same point succeeds and the sweep
    completes bit-identically to a fault-free run. :meth:`ChaosPlan.fired`
    lists the claimed markers for failure summaries.

Activation
    Programmatic: ``set_plan(plan)`` (process-local). Cross-process: write
    the plan with :meth:`ChaosPlan.write` and point the ``REPRO_CHAOS``
    environment variable at the JSON file — sweep worker processes
    inherit the environment and load the plan lazily. A plan that cannot
    be loaded raises :class:`~repro.errors.ChaosError` loudly: a
    misconfigured chaos run must not silently run clean.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Optional

from ..errors import ChaosError

#: Environment variable naming a JSON chaos plan file (empty = no chaos).
CHAOS_ENV = "REPRO_CHAOS"

#: Exit status used for injected worker crashes (visible in pool logs).
CRASH_EXIT_CODE = 73

#: Fault kinds applied before a point simulates (order = precedence).
_POINT_KINDS = ("crash", "raise", "slow")

#: Network fault kinds applied per chunk by distributed workers (order =
#: precedence). Hyphenated names map to ``<name>_rate`` fields with the
#: hyphens replaced by underscores.
NETWORK_KINDS = ("disconnect", "stall-heartbeat", "slow-host", "corrupt-payload")


def _digest(fingerprint: str) -> str:
    """A short stable id for a point. Fingerprints are canonical JSON, so
    a *prefix* of one is shared by every config that differs only in a
    late field — marker files and log lines must hash instead."""
    return hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True, slots=True)
class ChaosPlan:
    """A seeded, rate-based fault-injection plan.

    Rates are per-point probabilities in ``[0, 1]``; the draw is a
    deterministic hash of ``(seed, kind, fingerprint)``, so the same plan
    always faults the same points regardless of execution order.
    """

    seed: int = 0
    crash_rate: float = 0.0
    raise_rate: float = 0.0
    slow_rate: float = 0.0
    corrupt_rate: float = 0.0
    #: Network fault rates, drawn per chunk by distributed workers.
    disconnect_rate: float = 0.0
    stall_heartbeat_rate: float = 0.0
    slow_host_rate: float = 0.0
    corrupt_payload_rate: float = 0.0
    #: Stall duration for ``slow`` faults, in seconds.
    slow_s: float = 0.05
    #: Freeze duration for ``stall-heartbeat`` faults; must exceed the
    #: coordinator's heartbeat timeout for the fault to be observable.
    stall_s: float = 2.0
    #: Result delay for ``slow-host`` faults; must exceed the chunk lease
    #: for the fault to trigger work-stealing.
    slow_host_s: float = 0.5
    #: Each fault fires at most once when a ``state_dir`` is available.
    once: bool = True
    #: Directory for once-only marker files (shared across processes).
    state_dir: str = ""
    #: PID of the process that authored the plan; crash faults never fire
    #: in this process (they degrade to ``raise``).
    main_pid: int = dataclasses.field(default_factory=os.getpid)

    def __post_init__(self) -> None:
        for name in (
            "crash_rate", "raise_rate", "slow_rate", "corrupt_rate",
            "disconnect_rate", "stall_heartbeat_rate", "slow_host_rate",
            "corrupt_payload_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ChaosError(f"{name} must be within [0, 1], got {value!r}")
        for name in ("slow_s", "stall_s", "slow_host_s"):
            value = getattr(self, name)
            if value < 0:
                raise ChaosError(f"{name} cannot be negative, got {value!r}")

    # -- deterministic fault selection -----------------------------------

    def _roll(self, kind: str, fingerprint: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{kind}:{fingerprint}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _rate(self, kind: str) -> float:
        return float(getattr(self, f"{kind.replace('-', '_')}_rate"))

    def fault_for(self, fingerprint: str) -> Optional[str]:
        """The point fault injected for *fingerprint* (``None`` = clean).

        Purely a function of the plan's seed and the fingerprint; tests
        use this to precompute exactly which sweep points will fault.
        """
        for kind in _POINT_KINDS:
            rate = self._rate(kind)
            if rate > 0.0 and self._roll(kind, fingerprint) < rate:
                return kind
        return None

    def network_fault_for(self, fingerprint: str) -> Optional[str]:
        """The network fault a worker injects for the chunk whose first
        config has *fingerprint* (``None`` = clean).

        Same seeded draw as :meth:`fault_for`, over
        :data:`NETWORK_KINDS` (first match in precedence order wins).
        Independent of the point-fault draw, so a chunk can suffer both
        a network fault and, on re-dispatch, a point fault.
        """
        for kind in NETWORK_KINDS:
            rate = self._rate(kind)
            if rate > 0.0 and self._roll(kind, fingerprint) < rate:
                return kind
        return None

    def should_corrupt(self, fingerprint: str) -> bool:
        """Whether the cache entry stored for *fingerprint* gets truncated."""
        rate = self._rate("corrupt")
        return rate > 0.0 and self._roll("corrupt", fingerprint) < rate

    # -- once-only claim markers -----------------------------------------

    def _marker(self, kind: str, fingerprint: str) -> Path:
        return Path(self.state_dir) / f"{kind}-{_digest(fingerprint)[:32]}"

    def claim(self, kind: str, fingerprint: str) -> bool:
        """Atomically claim the (kind, point) fault; ``False`` = already fired.

        Without ``once`` (or without a ``state_dir`` to persist markers
        in) every claim is granted and faults fire on every attempt —
        recovery then depends on the retry/respawn bounds, which is a
        useful worst-case mode but not the default.
        """
        if not self.once or not self.state_dir:
            return True
        marker = self._marker(kind, fingerprint)
        try:
            marker.parent.mkdir(parents=True, exist_ok=True)
            handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            # Unwritable state dir: fail open (fault fires every time).
            return True
        os.close(handle)
        return True

    def fired(self) -> list[str]:
        """Names of the fault markers claimed so far (sorted)."""
        if not self.state_dir:
            return []
        try:
            return sorted(p.name for p in Path(self.state_dir).iterdir())
        except OSError:
            return []

    # -- (de)serialization -----------------------------------------------

    def write(self, path: str | Path) -> Path:
        """Write the plan as JSON for ``REPRO_CHAOS`` activation."""
        path = Path(path)
        path.write_text(json.dumps(dataclasses.asdict(self), indent=2))
        return path

    @classmethod
    def read(cls, path: str | Path) -> "ChaosPlan":
        """Load a plan written by :meth:`write` (raises ChaosError loudly)."""
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise ChaosError(f"cannot load chaos plan from {path!r}: {exc}") from exc
        if not isinstance(data, dict):
            raise ChaosError(f"chaos plan {path!r} is not a JSON object")
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - fields)
        if unknown:
            raise ChaosError(f"chaos plan {path!r} has unknown keys: {unknown}")
        try:
            return cls(**data)
        except TypeError as exc:
            raise ChaosError(f"chaos plan {path!r} is malformed: {exc}") from exc


# ---------------------------------------------------------------------------
# Process-wide selection (mirrors repro.harness.cache)
# ---------------------------------------------------------------------------

_UNSET: object = object()
#: Explicit override installed by set_plan(); _UNSET defers to the env.
_override: object = _UNSET
#: (env value, plan) pair so the plan file is parsed once per process.
_env_cache: Optional[tuple[str, ChaosPlan]] = None


def set_plan(plan: Optional[ChaosPlan]) -> None:
    """Install an explicit chaos plan (or ``None`` to disable chaos)."""
    global _override
    _override = plan


def reset_plan() -> None:
    """Drop any explicit override; revert to ``REPRO_CHAOS`` selection."""
    global _override, _env_cache
    _override = _UNSET
    _env_cache = None


def active_plan() -> Optional[ChaosPlan]:
    """The chaos plan in effect (``None`` in clean runs — the default)."""
    global _env_cache
    if _override is not _UNSET:
        return _override  # type: ignore[return-value]
    raw = os.environ.get(CHAOS_ENV, "").strip()
    if not raw:
        return None
    if _env_cache is not None and _env_cache[0] == raw:
        return _env_cache[1]
    plan = ChaosPlan.read(raw)
    _env_cache = (raw, plan)
    return plan


# ---------------------------------------------------------------------------
# Injection points (called from the resilience layer and the sweep cache)
# ---------------------------------------------------------------------------


def inject_point_fault(fingerprint: str) -> None:
    """Fire the planned fault for *fingerprint*, if any, before it runs.

    Called by :func:`repro.harness.resilience.run_point` ahead of the
    simulation. Crash faults only fire in worker processes (never in the
    plan's authoring process); with once-only markers the retried point
    then runs clean, so recovery is observable end to end.
    """
    plan = active_plan()
    if plan is None:
        return
    kind = plan.fault_for(fingerprint)
    if kind is None:
        return
    if kind == "crash" and os.getpid() == plan.main_pid:
        kind = "raise"
    if not plan.claim(kind, fingerprint):
        return
    if kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if kind == "slow":
        time.sleep(plan.slow_s)
        return
    raise ChaosError(
        f"injected failure at point {_digest(fingerprint)[:12]} "
        f"(seed={plan.seed})"
    )


def claim_network_fault(fingerprint: str) -> Optional[str]:
    """The network fault a distributed worker should inject for the chunk
    keyed by *fingerprint*, claimed once-only — or ``None`` for a clean
    chunk.

    Called by :mod:`repro.harness.distributed.worker` when a chunk
    arrives. The claim uses the plan's shared marker directory, so a
    re-dispatched (stolen) chunk runs clean on any host and the sweep
    converges bit-identically to a fault-free run.
    """
    plan = active_plan()
    if plan is None:
        return None
    kind = plan.network_fault_for(fingerprint)
    if kind is None or not plan.claim(kind, fingerprint):
        return None
    return kind


def inject_store_fault(fingerprint: str, path: str | Path) -> None:
    """Truncate the entry just stored at *path*, if the plan says so.

    Called by :meth:`repro.harness.cache.SweepCache.store` after a
    successful write; the next load of the mangled entry exercises the
    quarantine path.
    """
    plan = active_plan()
    if plan is None or not plan.should_corrupt(fingerprint):
        return
    if not plan.claim("corrupt", fingerprint):
        return
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 3))
    except OSError:
        pass
