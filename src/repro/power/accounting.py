"""Per-channel energy integration and savings reporting.

"Power consumed by the network is derived based on the frequency and
voltage levels set for all the channels in the network" (paper
Section 4.2). Each :class:`~repro.core.dvs_link.DVSChannel` already
integrates its own energy (steady-state level power over time, transition
overheads per Eq. (1)); the accountant differences those totals across a
measurement window and normalizes against the all-channels-at-max
baseline.

The accountant's internal arithmetic is **integer femtojoules** end to
end: totals and phase-start snapshots are exact integers, and only
:func:`derive_report` converts the integer deltas to floats — in one fixed
operation sequence shared with the batched sweep kernel, so a report
reconstructed from per-member integer deltas (after class re-merging) is
bit-identical to the scalar kernel's.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dvs_link import DVSChannel
from ..errors import SimulationError
from ..units import femtojoules_to_joules


@dataclass(frozen=True, slots=True)
class PowerReport:
    """Power summary of one measurement phase.

    Attributes:
        mean_power_w: Mean network link power over the phase, regulator
            transition overheads included.
        mean_link_power_w: Mean level-based link power only (what the
            paper's "derived from frequency and voltage levels" metric
            measures).
        baseline_power_w: Power with every channel pinned at max level.
        normalized: ``mean / baseline`` (the paper's Figures 10b/11b axis).
        normalized_link_only: ``mean_link / baseline`` — excludes the
            regulator transition overhead, which can dominate on very
            short horizons where transitions have not amortized.
        savings_factor: ``baseline / mean`` (the paper's "X" savings).
        transition_count: Voltage transitions across all channels.
        transition_energy_j: Total regulator overhead energy (Eq. (1)).
        duration_s: Phase length in seconds.
    """

    mean_power_w: float
    mean_link_power_w: float
    baseline_power_w: float
    normalized: float
    normalized_link_only: float
    savings_factor: float
    transition_count: int
    transition_energy_j: float
    duration_s: float


def derive_report(
    link_delta_fj: int,
    transition_delta_fj: int,
    transition_count: int,
    start_cycle: int,
    end_cycle: int,
    router_clock_hz: float,
    baseline_power_w: float,
) -> PowerReport:
    """Build a :class:`PowerReport` from exact integer phase deltas.

    The single place integer femtojoules become floats. Both the scalar
    accountant and the batched kernel's re-merge reconstruction call this,
    so equal integer deltas always yield bit-identical reports.
    """
    duration_s = (end_cycle - start_cycle) / router_clock_hz
    link_power = femtojoules_to_joules(link_delta_fj) / duration_s
    overhead_power = femtojoules_to_joules(transition_delta_fj) / duration_s
    mean_power = link_power + overhead_power
    return PowerReport(
        mean_power_w=mean_power,
        mean_link_power_w=link_power,
        baseline_power_w=baseline_power_w,
        normalized=mean_power / baseline_power_w,
        normalized_link_only=link_power / baseline_power_w,
        savings_factor=(
            baseline_power_w / mean_power if mean_power > 0.0 else float("inf")
        ),
        transition_count=transition_count,
        transition_energy_j=femtojoules_to_joules(transition_delta_fj),
        duration_s=duration_s,
    )


class PowerAccountant:
    """Tracks link energy of a set of channels across a measurement phase."""

    def __init__(self, channels: list[DVSChannel], router_clock_hz: float):
        if not channels:
            raise SimulationError("no channels to account for")
        if router_clock_hz <= 0.0:
            raise SimulationError("router clock must be positive")
        self.channels = channels
        self.router_clock_hz = router_clock_hz
        first = channels[0]
        self.baseline_power_w = len(channels) * first.power_model.channel_power_w(
            first.table, first.table.max_level, first.lanes
        )
        self._start_cycle: int | None = None
        self._start_link_energy_fj = 0
        self._start_transitions = 0
        self._start_transition_energy_fj = 0

    def _totals(self, now: int) -> tuple[int, int, int]:
        link_energy_fj = 0
        transitions = 0
        transition_energy_fj = 0
        for channel in self.channels:
            channel.finalize(now)
            link_energy_fj += channel.link_energy_fj
            transitions += channel.transition_count
            transition_energy_fj += channel.transition_energy_fj
        return link_energy_fj, transitions, transition_energy_fj

    def begin(self, now: int) -> None:
        """Mark the start of the measurement phase."""
        link_energy_fj, transitions, transition_energy_fj = self._totals(now)
        self._start_cycle = now
        self._start_link_energy_fj = link_energy_fj
        self._start_transitions = transitions
        self._start_transition_energy_fj = transition_energy_fj

    def report(self, now: int) -> PowerReport:
        """Summarize the phase from :meth:`begin` to *now*."""
        if self._start_cycle is None:
            raise SimulationError("begin() was never called")
        if now <= self._start_cycle:
            raise SimulationError("measurement phase has zero length")
        link_energy_fj, transitions, transition_energy_fj = self._totals(now)
        return derive_report(
            link_energy_fj - self._start_link_energy_fj,
            transition_energy_fj - self._start_transition_energy_fj,
            transitions - self._start_transitions,
            self._start_cycle,
            now,
            self.router_clock_hz,
            self.baseline_power_w,
        )

    def instantaneous_power_w(self) -> float:
        """Sum of current channel power states."""
        return sum(channel.power_w for channel in self.channels)

    def mean_level(self) -> float:
        """Mean operating level across channels right now."""
        return sum(channel.level for channel in self.channels) / len(self.channels)
