"""repro-lint: the repository's static-analysis framework.

The cycle kernel's performance work (active-router dirty set, event-horizon
fast-forward, content-addressed sweep cache, allocation-free stepping) and
the sweep harness's parallel backends made correctness depend on contracts
that ordinary linters cannot see. This framework encodes them as eleven
rules over the stdlib :mod:`ast` (no third-party dependencies). All rules
run off one shared :class:`~repro.analysis.model.ProjectModel` — the file
set is parsed and indexed exactly once per run — and the interprocedural
rules (R9–R11) additionally walk its call graph.

Per-file rules (ported from the original single-file linter):

``R1`` unseeded-randomness-or-wall-clock
    Simulation-semantics code (``repro/network/``, ``repro/traffic/``,
    ``repro/core/`` — the DVS state machines live under ``core``) must not
    call module-level :mod:`random` functions, ``numpy.random`` functions,
    or wall-clock sources (``time.time``, ``datetime.now``, ...). All
    randomness flows through a seeded ``random.Random`` instance so runs
    are bit-reproducible; all time is the simulated router clock.

``R2`` unordered-hot-path-iteration
    The engine/router hot path (``repro/network/engine.py`` and
    ``repro/network/router.py``) must not iterate a ``set`` (or
    ``dict.values()``) directly — iteration order would then depend on
    hash seeding and insertion history. Wrap the iterable in ``sorted()``.

``R3`` traffic-source-contract
    Every :class:`~repro.traffic.base.TrafficSource` subclass must
    override ``next_injection_cycle``: a source relying on the
    conservative ``None`` default silently disables the quiescence
    fast-forward for every workload it appears in.

``R4`` observer-skip-safety
    An observer overriding ``on_cycle`` must either also define
    ``on_idle_span`` (making it safe to skip quiescent spans) or declare
    ``unskippable = True`` — an explicit statement that disabling the
    fast-forward is intended, not an accident.

``R5`` config-not-json-serializable
    Fields of ``*Config`` dataclasses must be JSON-serializable types
    (primitives, containers of primitives, other dataclasses). The sweep
    cache keys on the config's canonical JSON; a field that falls back to
    ``repr()`` would make the cache key lossy or unstable.

``R6`` hot-path-allocation
    A function marked ``# repro-hot`` (comment on its ``def`` line or the
    line directly above) must not allocate containers, with numpy-aware
    handling for the batched kernel's vectorized hot lane (``np.zeros``
    etc. are flagged; ufunc-style calls are flagged unless they write
    into a preallocated buffer via ``out=``). ``copy.deepcopy`` gets its
    own flavor: deep-copying an engine in a hot function is O(total
    state) per call — use the snapshot protocol
    (:func:`repro.network.snapshot.fast_clone`) instead. Error paths
    under ``raise`` are exempt.

``R7`` harness-interrupt-safety
    Harness code (``repro/harness/``) must never let a broad handler
    absorb an interrupt: ``except Exception``/``BaseException``/bare
    ``except:`` must re-raise unconditionally or be preceded by handlers
    that re-raise ``KeyboardInterrupt`` and ``SystemExit``.

``R8`` policy-purity
    ``decide()`` on a :class:`~repro.core.policy.DVSPolicy` subclass must
    be a pure function of its inputs and ``self``: no unseeded
    randomness, no wall-clock reads, no ``global``/``nonlocal``, no
    stores to or mutation of module-level state.

Interprocedural rules (see their modules for the full story):

``R9`` determinism-taint (:mod:`repro.analysis.taint`)
    R1 generalized through the call graph: wall-clock / unseeded-RNG /
    environment / filesystem taint introduced *anywhere* propagates
    callee-to-caller, and is reported where it crosses into
    simulation-semantics code, with the witness chain.

``R10`` unit-dimension-mismatch (:mod:`repro.analysis.dimensions`)
    Dataflow dimension inference from the ``Quantity`` NewTypes in
    :mod:`repro.units` and the ``*_fj``/``*_mw``/``*_v``/``*_cycles``
    naming conventions; flags cross-dimension ``+``/``-``/comparison and
    unconverted assignment in ``core/``, ``power/`` and the batched
    kernel's energy ledgers.

``R11`` worker-isolation (:mod:`repro.analysis.isolation`)
    Worker entry points (``run_point``, ``run_chunk``,
    ``run_config_batch``) must not reach mutable module globals, and
    pickled config/source classes must be picklable by construction (no
    generator-typed fields, no generator instance state, no lambda
    defaults).

Suppressions and the baseline
    Append ``# repro-lint: ignore[R2]`` (or ``ignore[R1,R4]``) to the
    flagged line — anywhere inside a multi-line statement works; the
    pragma covers the innermost enclosing statement's span. Unknown rule
    ids in pragmas are reported as warnings rather than silently
    accepted. A file whose first ten lines contain ``# repro-lint:
    skip-file`` is not checked at all. Directories named ``fixtures`` or
    ``__pycache__`` are skipped unless ``--include-fixtures`` is given.
    Pre-existing interprocedural findings live in the committed baseline
    (``.repro-lint-baseline.json``, loaded automatically when present;
    see :mod:`repro.analysis.baseline`): baseline-matched findings keep
    the exit status at 0, new findings fail the run.

Usage::

    python -m repro.analysis.lint src tests              # human output
    python -m repro.analysis.lint --format json src      # machine output
    python -m repro.analysis.lint --format sarif src     # code scanning
    python -m repro.analysis.lint --cache src tests      # incremental
    python -m repro.analysis.lint --update-baseline src  # refresh baseline

Exit status is 0 when clean (including baseline-matched findings), 1
when new violations were found, 2 on usage or parse errors.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from . import baseline as baseline_io
from . import dimensions, isolation, sarif, taint
from .cache import DEFAULT_CACHE, LintCache, file_sha, project_digest
from .model import (
    NP_RANDOM_SEEDED_OK,
    RANDOM_OK,
    WALL_CLOCK_CALLS,
    ClassInfo,
    ModuleInfo,
    ProjectModel,
    Violation,
    decorator_name,
    dotted_name,
)

#: Rule id -> short name (kept in sync with docs/static_analysis.md).
RULES = {
    "R1": "unseeded-randomness-or-wall-clock",
    "R2": "unordered-hot-path-iteration",
    "R3": "traffic-source-contract",
    "R4": "observer-skip-safety",
    "R5": "config-not-json-serializable",
    "R6": "hot-path-allocation",
    "R7": "harness-interrupt-safety",
    "R8": "policy-purity",
    "R9": "determinism-taint",
    "R10": "unit-dimension-mismatch",
    "R11": "worker-isolation",
}

#: Path fragments selecting the files R1 applies to.
R1_SCOPE = ("repro/network/", "repro/traffic/", "repro/core/")
#: File names (under repro/network/) forming the R2 hot path.
R2_FILES = ("engine.py", "router.py")
#: Path fragments selecting the files R7 applies to.
R7_SCOPE = ("repro/harness/",)

#: Annotation names R5 accepts as JSON-serializable leaves.
_JSON_LEAVES = frozenset({"int", "float", "str", "bool", "None"})
#: Generic containers R5 accepts (their parameters are checked recursively).
_JSON_CONTAINERS = frozenset(
    {"tuple", "list", "dict", "Optional", "Union", "Tuple", "List", "Dict",
     "Sequence", "Mapping", "FrozenSet", "frozenset"}
)

#: Marker opting a function into R6 (on the def line or the line above).
_HOT_RE = re.compile(r"#\s*repro-hot\b")

#: Bare or dotted constructor names R6 treats as container allocations.
_R6_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "frozenset", "tuple", "bytearray", "deque",
     "defaultdict", "Counter", "OrderedDict"}
)
#: Module aliases whose attribute calls R6 inspects as numpy (the batched
#: sweep kernel's hot lane is numpy-vectorized; a hidden temporary array
#: per boundary is the same regression as a per-call list).
_R6_NUMPY_MODULES = frozenset({"np", "numpy"})
#: numpy calls that always materialize a fresh array.
_R6_NUMPY_ALLOCATORS = frozenset(
    {"zeros", "ones", "empty", "full", "zeros_like", "ones_like",
     "empty_like", "full_like", "arange", "linspace", "array", "asarray",
     "ascontiguousarray", "concatenate", "stack", "vstack", "hstack",
     "column_stack", "tile", "repeat", "where", "copy", "unique", "sort",
     "argsort", "cumsum", "cumprod", "outer", "einsum", "dot", "matmul"}
)
#: numpy functions/ufuncs that allocate their result *unless* directed
#: into a preallocated buffer via the ``out=`` keyword.
_R6_NUMPY_OUT_AWARE = frozenset(
    {"add", "subtract", "multiply", "divide", "true_divide",
     "floor_divide", "mod", "remainder", "power", "sqrt", "exp", "log",
     "abs", "absolute", "negative", "sign", "minimum", "maximum", "clip",
     "round", "floor", "ceil", "less", "less_equal", "greater",
     "greater_equal", "equal", "not_equal", "logical_and", "logical_or",
     "logical_not", "logical_xor", "bitwise_and", "bitwise_or",
     "bitwise_xor", "left_shift", "right_shift", "take", "sum", "prod",
     "mean"}
)
#: Method names R8 treats as in-place mutation of the receiver.
_R8_MUTATORS = frozenset(
    {"append", "add", "update", "pop", "extend", "remove", "clear",
     "setdefault", "popitem", "insert", "discard", "appendleft",
     "extendleft", "sort", "reverse"}
)
#: Exception names R7 treats as dangerously broad when caught.
_R7_BROAD = frozenset({"Exception", "BaseException"})
#: The interrupts a broad handler must provably let through.
_R7_INTERRUPTS = frozenset({"KeyboardInterrupt", "SystemExit"})

#: Literal/comprehension node types R6 flags, with human-readable labels.
_R6_LITERALS: tuple[tuple[type, str], ...] = (
    (ast.ListComp, "list comprehension"),
    (ast.SetComp, "set comprehension"),
    (ast.DictComp, "dict comprehension"),
    (ast.GeneratorExp, "generator expression"),
    (ast.Dict, "dict literal"),
    (ast.Set, "set literal"),
)


class Linter:
    """Builds the project model once, then applies every rule.

    Per-file rules (R1–R8) run per module; the interprocedural passes
    (R9–R11) run once over the whole :class:`ProjectModel`. Suppressed
    findings are tallied per rule in :attr:`suppressed_counts`; unknown
    rule ids in pragmas land in :attr:`warnings`.
    """

    def __init__(self, *, include_fixtures: bool = False) -> None:
        self.include_fixtures = include_fixtures
        self.model = ProjectModel()
        self._errors: list[str] = []
        self._shas: dict[str, str] = {}
        #: Names of dataclasses seen anywhere in the file set; fields of a
        #: ``*Config`` dataclass may reference them (R5) because
        #: ``to_json`` serializes nested dataclasses recursively.
        self._dataclass_names: set[str] = set()
        self.suppressed_counts: dict[str, int] = {}
        self.warnings: list[str] = []

    # -- file collection -------------------------------------------------

    def add_paths(self, paths: Iterable[str | Path]) -> None:
        for path in paths:
            path = Path(path)
            if path.is_dir():
                for file in sorted(path.rglob("*.py")):
                    if self._excluded(file):
                        continue
                    self.add_file(file)
            elif path.suffix == ".py":
                self.add_file(path)
            else:
                self._errors.append(f"{path}: not a Python file or directory")

    def _excluded(self, path: Path) -> bool:
        parts = set(path.parts)
        if "__pycache__" in parts or any(p.startswith(".") for p in path.parts):
            return True
        return "fixtures" in parts and not self.include_fixtures

    def add_file(self, path: str | Path) -> None:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            self._errors.append(f"{path}: unreadable ({exc})")
            return
        self.add_source(source, path.as_posix())

    def add_source(self, source: str, path: str) -> None:
        """Register in-memory *source* under *path* (tests use this)."""
        try:
            module = ModuleInfo(path, source)
        except SyntaxError as exc:
            self._errors.append(f"{path}: syntax error: {exc}")
            return
        self.model.add_module(module)
        self._shas[path] = file_sha(source.encode("utf-8"))
        self._dataclass_names.update(
            name for name, info in module.classes.items() if info.is_dataclass
        )
        for lineno, rules in sorted(module.suppressions.items()):
            unknown = sorted(rules - set(RULES) - {"ALL"})
            for rule in unknown:
                self.warnings.append(
                    f"{path}:{lineno}: unknown rule {rule!r} in repro-lint "
                    "ignore pragma (known: R1-R11, ALL)"
                )

    @property
    def errors(self) -> list[str]:
        """Parse/IO problems (reported separately from rule violations)."""
        return self._errors

    def source_line(self, path: str, lineno: int) -> str:
        """Line *lineno* of *path* (for baseline context matching)."""
        module = self.model.by_path.get(path)
        if module is not None and 1 <= lineno <= len(module.lines):
            return module.lines[lineno - 1]
        try:
            lines = Path(path).read_text(encoding="utf-8").splitlines()
        except OSError:
            return ""
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""

    # -- rule driver -----------------------------------------------------

    def run(self, cache: LintCache | None = None) -> list[Violation]:
        digest = project_digest(self._shas)
        if cache is not None:
            cached = cache.project_result(digest)
            if cached is not None:
                violations, self.suppressed_counts, self.warnings = cached
                return violations

        per_file_raw: dict[str, list[Violation]] = {}
        violations: list[Violation] = []
        self.suppressed_counts = {}

        def admit(module: ModuleInfo, found: Iterable[Violation]) -> None:
            for violation in found:
                if module.suppressed(violation.line, violation.rule):
                    self.suppressed_counts[violation.rule] = (
                        self.suppressed_counts.get(violation.rule, 0) + 1
                    )
                else:
                    violations.append(violation)

        for path in sorted(self.model.by_path):
            module = self.model.by_path[path]
            if module.skip_file:
                per_file_raw[path] = []
                continue
            raw = None
            if cache is not None:
                raw = cache.file_result(path, self._shas[path])
            if raw is None:
                raw = list(self._check_file(module))
            per_file_raw[path] = raw
            admit(module, raw)

        for pass_check in (taint.check, dimensions.check, isolation.check):
            for violation in pass_check(self.model):
                module = self.model.by_path.get(violation.path)
                if module is None or module.skip_file:
                    continue
                admit(module, [violation])

        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        if cache is not None:
            cache.store(
                self._shas, per_file_raw, violations,
                self.suppressed_counts, self.warnings,
            )
        return violations

    def _check_file(self, module: ModuleInfo) -> Iterator[Violation]:
        path = module.path
        if any(fragment in path for fragment in R1_SCOPE):
            yield from self._rule_r1(module)
        if "repro/network/" in path and path.rsplit("/", 1)[-1] in R2_FILES:
            yield from self._rule_r2(module)
        if any(fragment in path for fragment in R7_SCOPE):
            yield from self._rule_r7(module)
        yield from self._rule_r3(module)
        yield from self._rule_r4(module)
        yield from self._rule_r5(module)
        yield from self._rule_r6(module)
        yield from self._rule_r8(module)

    # -- R1: unseeded randomness / wall clock ----------------------------

    def _rule_r1(self, module: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            message: str | None = None
            if name.startswith("random.") and name.split(".", 1)[1] not in RANDOM_OK:
                message = (
                    f"call to the shared global generator ({name}); draw from a "
                    "seeded random.Random instance instead"
                )
            elif name in WALL_CLOCK_CALLS:
                message = (
                    f"wall-clock read ({name}) in simulation code; use the "
                    "simulated router clock"
                )
            else:
                for prefix in ("numpy.random.", "np.random."):
                    if name.startswith(prefix):
                        tail = name[len(prefix):]
                        seeded = (
                            tail in NP_RANDOM_SEEDED_OK
                            and bool(node.args or node.keywords)
                        )
                        if not seeded:
                            message = (
                                f"call to the global numpy generator ({name}); "
                                "use a seeded Generator"
                            )
                        break
            if message is not None:
                yield Violation(module.display_path, node.lineno,
                                node.col_offset, "R1", message)

    # -- R2: unordered iteration on the hot path -------------------------

    def _rule_r2(self, module: ModuleInfo) -> Iterator[Violation]:
        setlike = self._collect_setlike_names(module.tree)
        for node in ast.walk(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_expr in iters:
                message = self._unordered_iter_message(iter_expr, setlike)
                if message is not None:
                    yield Violation(module.display_path, iter_expr.lineno,
                                    iter_expr.col_offset, "R2", message)

    @staticmethod
    def _collect_setlike_names(tree: ast.AST) -> set[str]:
        """Names/attribute chains annotated or assigned as sets."""
        setlike: set[str] = set()

        def annotation_is_set(annotation: ast.expr) -> bool:
            if isinstance(annotation, ast.Subscript):
                annotation = annotation.value
            name = dotted_name(annotation)
            return name is not None and name.split(".")[-1] in ("set", "frozenset", "Set", "FrozenSet")

        def value_is_set(value: ast.expr | None) -> bool:
            if isinstance(value, (ast.Set, ast.SetComp)):
                return True
            if isinstance(value, ast.Call):
                name = dotted_name(value.func)
                return name in ("set", "frozenset")
            return False

        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                arguments = node.args
                for arg in (
                    *arguments.posonlyargs,
                    *arguments.args,
                    *arguments.kwonlyargs,
                ):
                    if arg.annotation is not None and annotation_is_set(arg.annotation):
                        setlike.add(arg.arg)
            elif isinstance(node, ast.AnnAssign):
                target = dotted_name(node.target)
                if target and annotation_is_set(node.annotation):
                    setlike.add(target)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    name = dotted_name(target)
                    if name is None:
                        continue
                    if value_is_set(node.value):
                        setlike.add(name)
                    else:
                        source = dotted_name(node.value) if node.value is not None else None
                        if source in setlike:
                            setlike.add(name)
        return setlike

    @staticmethod
    def _unordered_iter_message(
        iter_expr: ast.expr, setlike: set[str]
    ) -> str | None:
        if isinstance(iter_expr, ast.Call):
            func = dotted_name(iter_expr.func)
            if func == "sorted":
                return None
            if isinstance(iter_expr.func, ast.Attribute) and iter_expr.func.attr == "values":
                return (
                    "iteration over dict.values() in the hot path; iterate "
                    "sorted(...) or a deterministic view"
                )
            if func in ("set", "frozenset"):
                return "iteration over a set constructor; wrap in sorted(...)"
            return None
        if isinstance(iter_expr, (ast.Set, ast.SetComp)):
            return "iteration over a set literal; wrap in sorted(...)"
        name = dotted_name(iter_expr)
        if name is not None and name in setlike:
            return (
                f"direct iteration over set {name!r} in the hot path; wrap in "
                "sorted(...) to pin the order"
            )
        return None

    # -- R7: harness interrupt safety ------------------------------------

    @staticmethod
    def _handler_catches(handler: ast.ExceptHandler) -> frozenset[str]:
        """Last-component exception names *handler* catches.

        A bare ``except:`` catches everything, so it reports as
        ``BaseException``.
        """
        if handler.type is None:
            return frozenset({"BaseException"})
        nodes = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        names = set()
        for node in nodes:
            name = dotted_name(node)
            if name is not None:
                names.add(name.split(".")[-1])
        return frozenset(names)

    @staticmethod
    def _handler_reraises(handler: ast.ExceptHandler) -> bool:
        """Whether the handler body unconditionally re-raises.

        Only a bare ``raise`` directly in the handler body counts — a
        re-raise nested under an ``if`` is conditional and proves
        nothing.
        """
        return any(
            isinstance(stmt, ast.Raise) and stmt.exc is None
            for stmt in handler.body
        )

    def _rule_r7(self, module: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            reraised: set[str] = set()
            for handler in node.handlers:
                caught = self._handler_catches(handler)
                reraises = self._handler_reraises(handler)
                if caught & _R7_BROAD and not reraises:
                    guarded = (
                        "BaseException" in reraised
                        or _R7_INTERRUPTS <= reraised
                    )
                    if not guarded:
                        label = (
                            "bare except:"
                            if handler.type is None
                            else f"except {ast.unparse(handler.type)}"
                        )
                        yield Violation(
                            module.display_path, handler.lineno,
                            handler.col_offset, "R7",
                            f"broad handler ({label}) in harness code can "
                            "absorb an interrupt; add 'except "
                            "(KeyboardInterrupt, SystemExit): raise' before "
                            "it or re-raise unconditionally in the handler",
                        )
                if reraises:
                    reraised |= caught

    # -- R3: TrafficSource contract --------------------------------------

    def _rule_r3(self, module: ModuleInfo) -> Iterator[Violation]:
        for info in module.classes.values():
            if info.name == "TrafficSource":
                continue
            if not module.inherits_from(info, "TrafficSource"):
                continue
            if self._is_abstract(info):
                continue
            if module.hierarchy_defines(info, "next_injection_cycle"):
                continue
            yield Violation(
                module.display_path, info.node.lineno, info.node.col_offset, "R3",
                f"TrafficSource subclass {info.name!r} does not override "
                "next_injection_cycle; the conservative default disables "
                "quiescence fast-forward",
            )

    @staticmethod
    def _is_abstract(info: ClassInfo) -> bool:
        for item in info.node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for dec in item.decorator_list:
                    name = decorator_name(dec) or ""
                    if name.split(".")[-1] in ("abstractmethod", "abstractproperty"):
                        return True
        return False

    # -- R4: observer skip-safety ----------------------------------------

    def _rule_r4(self, module: ModuleInfo) -> Iterator[Violation]:
        for info in module.classes.values():
            if info.name == "Observer":
                continue
            if "on_cycle" not in info.methods:
                continue
            if not module.inherits_from(info, "Observer"):
                continue
            if module.hierarchy_defines(info, "on_idle_span"):
                continue
            if module.hierarchy_assigns_true(info, "unskippable"):
                continue
            yield Violation(
                module.display_path, info.node.lineno, info.node.col_offset, "R4",
                f"observer {info.name!r} overrides on_cycle without "
                "on_idle_span; define on_idle_span or declare "
                "'unskippable = True' to document that fast-forward must stop",
            )

    # -- R5: config dataclass fields must serialize ----------------------

    def _rule_r5(self, module: ModuleInfo) -> Iterator[Violation]:
        for info in module.classes.values():
            if not info.is_dataclass or not info.name.endswith("Config"):
                continue
            for item in info.node.body:
                if not isinstance(item, ast.AnnAssign):
                    continue
                if isinstance(item.target, ast.Name) and item.target.id.startswith("_"):
                    continue
                if item.annotation is not None and dotted_name(item.annotation) == "ClassVar":
                    continue
                if not self._annotation_serializable(item.annotation):
                    field = item.target.id if isinstance(item.target, ast.Name) else "?"
                    yield Violation(
                        module.display_path, item.lineno, item.col_offset, "R5",
                        f"field {info.name}.{field} has non-JSON-serializable "
                        f"annotation {ast.unparse(item.annotation)!r}; the sweep "
                        "cache key would fall back to repr()",
                    )

    # -- R6: no container allocation in # repro-hot functions ------------

    def _rule_r6(self, module: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._is_hot_function(module, node):
                continue
            yield from self._r6_scan(module, node.name, node.body)

    @staticmethod
    def _is_hot_function(
        module: ModuleInfo, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        """The ``# repro-hot`` marker sits on the def line or just above."""
        lines = module.lines
        def_line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        above = lines[node.lineno - 2] if node.lineno >= 2 else ""
        return bool(_HOT_RE.search(def_line) or _HOT_RE.search(above))

    def _r6_scan(
        self, module: ModuleInfo, func_name: str, body: Sequence[ast.stmt]
    ) -> Iterator[Violation]:
        """Walk *body* flagging allocations, skipping ``raise`` subtrees."""
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Raise):
                # Error paths may allocate freely: they run at most once.
                continue
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Tuple)
                and isinstance(node.value, ast.Tuple)
            ):
                # Parallel assignment (``a, b = x, y``): CPython unpacks
                # on the stack, no tuple is built. Scan the element
                # expressions but not the value tuple itself.
                stack.extend(node.targets[0].elts)
                stack.extend(node.value.elts)
                continue
            if self._is_deepcopy_call(node):
                yield Violation(
                    module.display_path, node.lineno, node.col_offset, "R6",
                    f"copy.deepcopy() in # repro-hot function {func_name!r} "
                    "is O(total state) per call; use the snapshot protocol "
                    "(repro.network.snapshot.fast_clone) or copy only the "
                    "mutable fields",
                )
                stack.extend(ast.iter_child_nodes(node))
                continue
            message = self._r6_allocation_message(node)
            if message is not None:
                yield Violation(
                    module.display_path, node.lineno, node.col_offset, "R6",
                    f"{message} allocates in # repro-hot function "
                    f"{func_name!r}; hoist it to setup code or reuse a "
                    "pooled/preallocated container",
                )
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _is_deepcopy_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = dotted_name(node.func)
        return name in ("copy.deepcopy", "deepcopy")

    @staticmethod
    def _r6_allocation_message(node: ast.AST) -> str | None:
        for node_type, label in _R6_LITERALS:
            if isinstance(node, node_type):
                return label
        if isinstance(node, (ast.List, ast.Tuple)):
            if isinstance(node.ctx, ast.Load):
                return (
                    "list literal" if isinstance(node, ast.List)
                    else "tuple literal"
                )
            return None
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                return None
            if name.split(".")[-1] in _R6_CONSTRUCTORS:
                return f"{name}() constructor call"
            parts = name.split(".")
            if len(parts) == 2 and parts[0] in _R6_NUMPY_MODULES:
                func = parts[1]
                if func in _R6_NUMPY_ALLOCATORS:
                    return f"numpy array allocation ({name}())"
                if func in _R6_NUMPY_OUT_AWARE and not any(
                    keyword.arg == "out" for keyword in node.keywords
                ):
                    return f"numpy temporary ({name}() without out=)"
        return None

    # -- R8: DVS policy purity -------------------------------------------

    @staticmethod
    def _module_level_names(tree: ast.Module) -> frozenset[str]:
        """Names bound by module top-level assignments."""
        names: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            names.add(node.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    names.add(stmt.target.id)
        return frozenset(names)

    def _rule_r8(self, module: ModuleInfo) -> Iterator[Violation]:
        module_names = self._module_level_names(module.tree)
        for info in module.classes.values():
            if info.name == "DVSPolicy":
                continue
            if not module.inherits_from(info, "DVSPolicy"):
                continue
            for item in info.node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "decide"
                ):
                    yield from self._r8_scan(module, info.name, item, module_names)

    def _r8_scan(
        self,
        module: ModuleInfo,
        class_name: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        module_names: frozenset[str],
    ) -> Iterator[Violation]:
        where = f"{class_name}.decide()"
        suffix = (
            "; decide() must be a pure function of its inputs and self "
            "(Serial vs ProcessPool bit-identity, sweep-cache soundness)"
        )
        # Plain-name stores inside decide() create locals, never globals
        # (R8 flags the `global` statement that would change that), so a
        # local shadowing a module name is not a purity breach.
        local = {
            arg.arg
            for arg in (
                *func.args.posonlyargs,
                *func.args.args,
                *func.args.kwonlyargs,
            )
        }
        for vararg in (func.args.vararg, func.args.kwarg):
            if vararg is not None:
                local.add(vararg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                local.add(node.id)

        def global_root(expr: ast.expr) -> str | None:
            while isinstance(expr, (ast.Attribute, ast.Subscript)):
                expr = expr.value
            if (
                isinstance(expr, ast.Name)
                and expr.id in module_names
                and expr.id not in local
            ):
                return expr.id
            return None

        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                keyword = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield Violation(
                    module.display_path, node.lineno, node.col_offset, "R8",
                    f"{keyword} statement in {where}{suffix}",
                )
            elif isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                root = global_root(node)
                if root is not None:
                    yield Violation(
                        module.display_path, node.lineno, node.col_offset, "R8",
                        f"store to module-level state {root!r} in {where}{suffix}",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                if (
                    name.startswith("random.")
                    and name.split(".", 1)[1] not in RANDOM_OK
                ):
                    yield Violation(
                        module.display_path, node.lineno, node.col_offset, "R8",
                        f"unseeded randomness ({name}) in {where}; draw from a "
                        f"seeded random.Random held on self{suffix}",
                    )
                elif name in WALL_CLOCK_CALLS:
                    yield Violation(
                        module.display_path, node.lineno, node.col_offset, "R8",
                        f"wall-clock read ({name}) in {where}{suffix}",
                    )
                elif any(
                    name.startswith(prefix)
                    for prefix in ("numpy.random.", "np.random.")
                ):
                    yield Violation(
                        module.display_path, node.lineno, node.col_offset, "R8",
                        f"global numpy generator ({name}) in {where}{suffix}",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _R8_MUTATORS
                ):
                    root = global_root(node.func.value)
                    if root is not None:
                        yield Violation(
                            module.display_path, node.lineno,
                            node.col_offset, "R8",
                            f"mutation of module-level state {root!r} "
                            f"(.{node.func.attr}()) in {where}{suffix}",
                        )

    def _annotation_serializable(self, annotation: ast.expr) -> bool:
        if isinstance(annotation, ast.Constant):
            if annotation.value is None:
                return True
            if isinstance(annotation.value, str):
                try:
                    parsed = ast.parse(annotation.value, mode="eval").body
                except SyntaxError:
                    return False
                return self._annotation_serializable(parsed)
            return False
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            return self._annotation_serializable(
                annotation.left
            ) and self._annotation_serializable(annotation.right)
        if isinstance(annotation, ast.Subscript):
            container = dotted_name(annotation.value)
            if container is None:
                return False
            if container == "ClassVar" or container.split(".")[-1] == "ClassVar":
                return True
            if container.split(".")[-1] not in _JSON_CONTAINERS:
                return False
            slice_node = annotation.slice
            elements = (
                list(slice_node.elts)
                if isinstance(slice_node, ast.Tuple)
                else [slice_node]
            )
            return all(
                isinstance(element, ast.Constant) and element.value is Ellipsis
                or self._annotation_serializable(element)
                for element in elements
            )
        name = dotted_name(annotation)
        if name is None:
            return False
        last = name.split(".")[-1]
        if last in _JSON_LEAVES:
            return True
        return last in self._dataclass_names


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lint_paths(
    paths: Sequence[str | Path],
    *,
    include_fixtures: bool = False,
    baseline: str | Path | None = None,
) -> tuple[list[Violation], list[str]]:
    """Lint *paths*; returns ``(violations, parse_errors)``.

    With *baseline*, findings matching the committed baseline file are
    filtered out — only new findings are returned.
    """
    linter = Linter(include_fixtures=include_fixtures)
    linter.add_paths(paths)
    violations = linter.run()
    if baseline is not None:
        entries = baseline_io.load(baseline)
        violations, _, _ = baseline_io.apply(
            violations, entries, linter.source_line
        )
    return violations, linter.errors


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description=(
            "repo-specific static-analysis rules R1-R11 "
            "(see docs/static_analysis.md)"
        ),
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--include-fixtures", action="store_true",
        help="also lint directories named 'fixtures' (skipped by default)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=(
            "baseline file of known findings (default: "
            f"{baseline_io.DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help=(
            "rewrite the baseline from the current findings (preserving "
            "justifications of surviving entries) and exit 0"
        ),
    )
    parser.add_argument(
        "--cache", metavar="PATH", nargs="?", const=DEFAULT_CACHE, default=None,
        help=(
            "enable the incremental result cache at PATH (default when the "
            f"flag is given without a value: {DEFAULT_CACHE})"
        ),
    )
    args = parser.parse_args(argv)

    linter = Linter(include_fixtures=args.include_fixtures)
    linter.add_paths(args.paths)
    cache: LintCache | None = None
    if args.cache is not None:
        cache = LintCache(args.cache)
        cache.load()
    violations = linter.run(cache)
    if cache is not None:
        cache.save()
    errors = linter.errors

    baseline_path: Path | None = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
        elif Path(baseline_io.DEFAULT_BASELINE).is_file():
            baseline_path = Path(baseline_io.DEFAULT_BASELINE)

    if args.update_baseline:
        target = baseline_path or Path(baseline_io.DEFAULT_BASELINE)
        previous: list[dict[str, object]] = []
        if target.is_file():
            try:
                previous = baseline_io.load(target)
            except baseline_io.BaselineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        count = baseline_io.save(
            target, violations, linter.source_line, previous
        )
        print(f"repro-lint: wrote {count} baseline entrie(s) to {target}")
        return 2 if errors else 0

    matched: list[Violation] = []
    stale: list[str] = []
    if baseline_path is not None:
        try:
            entries = baseline_io.load(baseline_path)
        except baseline_io.BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        violations, matched, stale = baseline_io.apply(
            violations, entries, linter.source_line
        )

    if args.format == "json":
        print(
            json.dumps(
                {
                    "violations": [v.as_dict() for v in violations],
                    "errors": errors,
                    "rules": RULES,
                    "suppressions": dict(sorted(linter.suppressed_counts.items())),
                    "baseline": {
                        "path": str(baseline_path) if baseline_path else None,
                        "matched": len(matched),
                        "stale": stale,
                    },
                    "warnings": linter.warnings,
                },
                indent=2,
            )
        )
    elif args.format == "sarif":
        print(sarif.render(violations, RULES))
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
    else:
        for violation in violations:
            print(violation.render())
        for warning in linter.warnings:
            print(f"warning: {warning}", file=sys.stderr)
        for warning in stale:
            print(f"warning: {warning}", file=sys.stderr)
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        if not violations and not errors:
            suffix = f" ({len(matched)} baseline finding(s))" if matched else ""
            print(f"repro-lint: clean{suffix}")
        elif violations:
            counts: dict[str, int] = {}
            for violation in violations:
                counts[violation.rule] = counts.get(violation.rule, 0) + 1
            summary = ", ".join(
                f"{rule} x{count}" for rule, count in sorted(counts.items())
            )
            print(f"repro-lint: {len(violations)} violation(s) ({summary})")
    if errors:
        return 2
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
