"""Tests for the controller hardware cost model (paper Section 3.3)."""

import pytest

from repro.core.hardware import ControllerHardwareModel
from repro.errors import ConfigError


class TestPaperEnvelope:
    def test_gate_count_near_500(self):
        """Paper: ~500 equivalent gates per router port."""
        model = ControllerHardwareModel()
        assert 300 <= model.total_gates <= 700

    def test_power_under_3mw(self):
        """Paper: < 3 mW per router port."""
        model = ControllerHardwareModel()
        assert model.power_w < 3.0e-3

    def test_breakdown_sums_to_total(self):
        model = ControllerHardwareModel()
        assert sum(model.breakdown().values()) == pytest.approx(model.total_gates)

    def test_describe(self):
        text = ControllerHardwareModel().describe()
        assert "TOTAL" in text
        assert "mW" in text


class TestScaling:
    def test_bigger_window_needs_wider_counter(self):
        small = ControllerHardwareModel(history_window=200)
        large = ControllerHardwareModel(history_window=200_000)
        assert large.busy_counter_bits > small.busy_counter_bits
        assert large.total_gates > small.total_gates

    def test_power_scales_with_gate_power(self):
        base = ControllerHardwareModel()
        hot = ControllerHardwareModel(gate_power_w=6.0e-6)
        assert hot.power_w == pytest.approx(2 * base.power_w)

    def test_busy_counter_bits(self):
        assert ControllerHardwareModel(history_window=200).busy_counter_bits == 8
        assert ControllerHardwareModel(history_window=255).busy_counter_bits == 8
        assert ControllerHardwareModel(history_window=256).busy_counter_bits == 9


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"history_window": 0},
            {"buffer_capacity": 0},
            {"utilization_bits": 0},
            {"clock_hz": 0.0},
            {"gate_power_w": 0.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigError):
            ControllerHardwareModel(**kwargs)
