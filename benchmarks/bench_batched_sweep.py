"""Batched sweep benchmark: lockstep kernel vs a scalar-loop baseline.

Runs a saturating uniform-traffic threshold sweep — the exact workload
shape `repro sweep`/`repro pareto` produce: one topology and traffic
trace, N policy-knob variants — through the batched lockstep kernel
(:mod:`repro.network.batched`) at batch sizes 1, 8 and 32, against
running the scalar kernel once per config. The headline metric is
**configs/second**; the committed acceptance bar (BENCH_batched_sweep.json)
is >= 4x configs/sec at batch size 32 versus the scalar loop.

The headline sweep is chosen to be *convergent*: under saturation every
member's EWMA-predicted link utilization exceeds every Table 2 step-up
threshold, so all members issue identical channel effects and the whole
batch rides one equivalence class (`class_count` is recorded per run as
the honesty check).

Two *divergent* sweeps are tracked as first-class rows alongside it — a
bursty two_level threshold grid and an ewma_weight grid, both of which
split into multiple equivalence classes mid-run and exercise the
O(live-state) split clones and class re-merging (`classes`/`splits`/
`merges` are recorded per row). Their scalar baselines double as a
bit-identity check: the batched results are compared ``==`` against the
scalar runs and any mismatch fails the benchmark. See
docs/performance.md for the honesty table.

Baseline workflow mirrors bench_step_throughput.py::

    PYTHONPATH=src python benchmarks/bench_batched_sweep.py --tiny \
        --write-baseline            # regenerate BENCH_batched_sweep.json
    PYTHONPATH=src python benchmarks/bench_batched_sweep.py --tiny \
        --check-regression         # CI perf-smoke gate (25% tolerance)

``--golden-smoke`` additionally runs a small *divergent* sweep through
both kernels and exits non-zero unless every result is bit-identical
(equality, not closeness) — the cheap CI version of the exhaustive golden
equivalence suite in tests/test_batched_kernel.py.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.config import (
    DVSControlConfig,
    LinkConfig,
    NetworkConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.core.thresholds import TABLE2_SETTINGS
from repro.harness.serialization import write_json
from repro.network.batched import BatchedEngine, plan_batches
from repro.network.simulator import Simulator

try:  # standalone: python benchmarks/bench_batched_sweep.py
    from common import add_profile_argument, maybe_profile
except ImportError:  # imported as benchmarks.bench_batched_sweep
    from .common import add_profile_argument, maybe_profile

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent
#: Tracked baseline, committed at the repo root. Regenerate with
#: ``--write-baseline`` (once per mode: with and without ``--tiny``).
BASELINE_PATH = REPO_ROOT / "BENCH_batched_sweep.json"

BATCH_SIZES = (1, 8, 32)


def sweep_configs(tiny: bool) -> list[SimulationConfig]:
    """32 lockstep-compatible configs: a saturating light-pair threshold grid.

    The grid follows the paper's Table 2 shape — settings I–VI vary the
    *light-load* threshold pair and share the congested pair — extended
    to a 32-point light-pair grid placed *below* the saturated network's
    predicted-utilization floor. Uniform traffic well past saturation
    keeps busy links above every step-up threshold in the grid (unanimous
    step-up), while lightly-loaded edge links never leave voltage level 0,
    where step-down and hold are the same no-op. Every member therefore
    issues identical channel effects and the batch rides one equivalence
    class. Grids that straddle the utilization spread split into classes
    instead — those are tracked as the first-class divergent rows (see
    :func:`divergent_scenarios` and docs/performance.md).
    """
    base = SimulationConfig(
        network=NetworkConfig(radix=4 if tiny else 8, dimensions=2),
        dvs=DVSControlConfig(policy="history"),
        workload=WorkloadConfig(kind="uniform", injection_rate=8.0, seed=1),
        warmup_cycles=200 if tiny else 500,
        measure_cycles=1_000 if tiny else 2_500,
    )
    reference = TABLE2_SETTINGS["I"]
    configs = []
    for step in range(32):
        low = round(0.02 + 0.002 * step, 4)
        thresholds = reference.with_light_load_pair(low, round(low + 0.06, 4))
        configs.append(
            replace(base, dvs=replace(base.dvs, thresholds=thresholds))
        )
    return configs


def time_scalar_loop(configs: list[SimulationConfig], repeats: int) -> float:
    """Best-of-*repeats* wall time for the scalar kernel run per config."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        for config in configs:
            Simulator(config).run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def time_batched(
    configs: list[SimulationConfig], batch_size: int, repeats: int
) -> tuple[float, int, int, int]:
    """Best wall time running *configs* in lockstep batches of *batch_size*.

    Returns ``(wall_s, class_count, splits, merges)`` summed over the
    batches of the best repeat — the class count is the honesty signal: a
    convergent sweep should report one class per batch.
    """
    batches = plan_batches(configs, batch_size)
    best = None
    best_stats = (0, 0, 0)
    for _ in range(repeats):
        start = time.perf_counter()
        classes = splits = merges = 0
        for batch in batches:
            engine = BatchedEngine([configs[i] for i in batch])
            engine.run()
            classes += engine.class_count
            splits += engine.splits
            merges += engine.merges
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            best_stats = (classes, splits, merges)
    return best, *best_stats


def time_singleton_paired(
    configs: list[SimulationConfig], repeats: int
) -> tuple[float, float, int, int, int]:
    """Paired scalar-vs-singleton walls for the batch=1 parity row.

    The batch=1 claim is *parity* (the engine bypasses the coordinator
    for a 1-member batch), and this host's CPU frequency drifts by tens
    of percent over a multi-minute run — timing the scalar loop minutes
    before the singleton loop systematically biases the ratio. Pairing
    the two runs per config and alternating which goes first cancels the
    drift, the same reasoning as bench_step_throughput's in-process
    ``legacy_scan`` A/B. Returns
    ``(scalar_wall_s, batched_wall_s, classes, splits, merges)`` from
    the repeat with the best batched wall.
    """
    best_scalar = best_batched = None
    best_stats = (0, 0, 0)
    for _ in range(repeats):
        scalar_wall = batched_wall = 0.0
        classes = splits = merges = 0
        for index, config in enumerate(configs):

            def scalar_run(config=config):
                start = time.perf_counter()
                Simulator(config).run()
                return time.perf_counter() - start

            def batched_run(config=config):
                nonlocal classes, splits, merges
                start = time.perf_counter()
                engine = BatchedEngine([config])
                engine.run()
                elapsed = time.perf_counter() - start
                classes += engine.class_count
                splits += engine.splits
                merges += engine.merges
                return elapsed

            if index % 2 == 0:
                scalar_wall += scalar_run()
                batched_wall += batched_run()
            else:
                batched_wall += batched_run()
                scalar_wall += scalar_run()
        if best_batched is None or batched_wall < best_batched:
            best_scalar = scalar_wall
            best_batched = batched_wall
            best_stats = (classes, splits, merges)
    return best_scalar, best_batched, *best_stats


def divergent_scenarios(tiny: bool) -> dict[str, list[SimulationConfig]]:
    """Two 32-config sweeps that genuinely diverge into classes mid-run.

    Both ride a bursty single-task two_level workload: bursts split the
    batch on knob disagreements, the drained gaps between bursts let
    class states re-converge so the kernel can merge them back. The
    threshold grid straddles the workload's predicted-utilization range;
    the ewma grid sweeps the history weight across the paper's span.
    """
    link = LinkConfig(
        voltage_transition_s=0.2e-6, frequency_transition_link_cycles=4
    )
    base = SimulationConfig(
        network=NetworkConfig(radix=4 if tiny else 8, dimensions=2),
        link=link,
        dvs=DVSControlConfig(policy="history"),
        workload=WorkloadConfig(
            kind="two_level",
            injection_rate=1.0,
            seed=3,
            average_tasks=1,
            average_task_duration_s=1.0e-6,
        ),
        warmup_cycles=200 if tiny else 500,
        measure_cycles=3_000,
    )
    reference = TABLE2_SETTINGS["I"]
    thresholds = []
    for step in range(32):
        low = round(0.1 + 0.02 * step, 4)
        setting = reference.with_light_load_pair(low, round(low + 0.06, 4))
        thresholds.append(
            replace(base, dvs=replace(base.dvs, thresholds=setting))
        )
    weights = [
        replace(base, dvs=replace(base.dvs, ewma_weight=round(0.25 + 0.25 * i, 2)))
        for i in range(32)
    ]
    return {"divergent_threshold": thresholds, "divergent_ewma": weights}


def run_divergent(
    name: str, configs: list[SimulationConfig], repeats: int
) -> dict:
    """One divergent sweep: scalar loop vs a single full-width batch.

    The scalar loop's results double as the bit-identity oracle — any
    ``!=`` between a batched member and its scalar run raises.
    """
    count = len(configs)
    scalar_wall = None
    scalar_results = None
    for _ in range(repeats):
        start = time.perf_counter()
        results = [Simulator(config).run() for config in configs]
        elapsed = time.perf_counter() - start
        if scalar_wall is None or elapsed < scalar_wall:
            scalar_wall = elapsed
        scalar_results = results
    best = None
    best_stats = (0, 0, 0)
    batched_results = None
    for _ in range(repeats):
        start = time.perf_counter()
        engine = BatchedEngine(list(configs))
        batched_results = engine.run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            best_stats = (engine.class_count, engine.splits, engine.merges)
    mismatches = sum(
        1 for a, b in zip(scalar_results, batched_results, strict=False)
        if a != b
    )
    if mismatches:
        raise SystemExit(
            f"FAIL: {name} produced {mismatches} batched-vs-scalar "
            "mismatches — the kernels must be bit-identical"
        )
    classes, splits, merges = best_stats
    scalar_cps = count / scalar_wall
    cps = count / best
    speedup = cps / scalar_cps
    print(
        f"{name:20s} scalar {scalar_wall:6.2f} s, batch={count} "
        f"{best:6.2f} s ({cps:6.2f} configs/s, {speedup:5.2f}x, "
        f"{classes} classes, {splits} splits, {merges} merges, "
        "bit-identical)"
    )
    return {
        "configs": count,
        "scalar_wall_s": round(scalar_wall, 3),
        "scalar_configs_per_s": round(scalar_cps, 2),
        "wall_s": round(best, 3),
        "configs_per_s": round(cps, 2),
        "speedup_vs_scalar": round(speedup, 3),
        "classes": classes,
        "splits": splits,
        "merges": merges,
    }


def run_matrix(tiny: bool, repeats: int) -> dict:
    configs = sweep_configs(tiny)
    count = len(configs)
    scalar_wall = time_scalar_loop(configs, repeats)
    scalar_cps = count / scalar_wall
    print(
        f"scalar-loop {count} configs in {scalar_wall:6.2f} s "
        f"({scalar_cps:6.2f} configs/s)"
    )
    rows = {}
    for batch_size in BATCH_SIZES:
        if batch_size == 1:
            # Parity row: paired per-config A/B (see time_singleton_paired)
            # so the ratio survives this host's frequency drift.
            paired_scalar, wall, classes, splits, merges = time_singleton_paired(
                configs, repeats
            )
            cps = count / wall
            speedup = paired_scalar / wall
        else:
            wall, classes, splits, merges = time_batched(
                configs, batch_size, repeats
            )
            cps = count / wall
            speedup = cps / scalar_cps
        rows[str(batch_size)] = {
            "wall_s": round(wall, 3),
            "configs_per_s": round(cps, 2),
            "speedup_vs_scalar": round(speedup, 3),
            "classes": classes,
            "splits": splits,
            "merges": merges,
        }
        print(
            f"batch={batch_size:3d}   {count} configs in {wall:6.2f} s "
            f"({cps:6.2f} configs/s, {speedup:5.2f}x vs scalar, "
            f"{classes} classes, {splits} splits, {merges} merges)"
        )
    divergent = {
        name: run_divergent(name, scenario, repeats)
        for name, scenario in divergent_scenarios(tiny).items()
    }
    return {
        "configs": count,
        "scalar_wall_s": round(scalar_wall, 3),
        "scalar_configs_per_s": round(scalar_cps, 2),
        "batches": rows,
        "divergent": divergent,
    }


def golden_smoke(tiny: bool) -> int:
    """Small divergent sweep, batched vs scalar, strict equality."""
    link = LinkConfig(
        voltage_transition_s=0.2e-6, frequency_transition_link_cycles=4
    )
    base = SimulationConfig(
        network=NetworkConfig(radix=4 if tiny else 8, dimensions=2),
        link=link,
        dvs=DVSControlConfig(policy="history"),
        workload=WorkloadConfig(
            kind="two_level",
            injection_rate=0.6,
            seed=7,
            average_tasks=5,
            average_task_duration_s=3.0e-6,
        ),
        warmup_cycles=500,
        measure_cycles=1_500,
    )
    configs = [
        replace(
            base,
            dvs=replace(base.dvs, thresholds=thresholds, ewma_weight=weight),
        )
        for weight in (1.0, 3.0)
        for thresholds in (
            TABLE2_SETTINGS["I"],
            TABLE2_SETTINGS["IV"],
            TABLE2_SETTINGS["VI"],
        )
    ]
    engine = BatchedEngine(configs)
    batched = engine.run()
    mismatches = [
        config
        for config, result in zip(configs, batched, strict=False)
        if Simulator(config).run() != result
    ]
    if mismatches:
        print(
            f"FAIL: golden smoke found {len(mismatches)} batched-vs-scalar "
            "mismatches (divergent two_level sweep, "
            f"{engine.class_count} classes)",
            file=sys.stderr,
        )
        return 1
    print(
        f"golden smoke: {len(configs)} divergent configs bit-identical to "
        f"scalar ({engine.class_count} classes, {engine.splits} splits)"
    )
    return 0


# ---------------------------------------------------------------------------
# Tracked baseline (BENCH_batched_sweep.json)
# ---------------------------------------------------------------------------


def _update_mode_entry(path: Path, mode: str, entry: dict) -> None:
    """Merge *entry* under ``modes[mode]``, preserving the other mode."""
    report = {"benchmark": "batched_sweep", "modes": {}}
    if path.exists():
        existing = json.loads(path.read_text())
        if isinstance(existing.get("modes"), dict):
            report["modes"] = existing["modes"]
    report["modes"][mode] = entry
    write_json(report, path)


def write_baseline(matrix: dict, mode: str) -> None:
    entry = dict(matrix)
    entry["command"] = (
        "python benchmarks/bench_batched_sweep.py "
        f"{'--tiny ' if mode == 'tiny' else ''}--write-baseline"
    )
    _update_mode_entry(BASELINE_PATH, mode, entry)
    print(f"baseline written to {BASELINE_PATH}")


def check_regression(
    matrix: dict, baseline_path: Path, mode: str, tolerance: float
) -> int:
    """Fail when speedup-vs-scalar fell >*tolerance* below baseline.

    The gated quantity is each row's ``speedup_vs_scalar``, not its
    absolute configs/sec: both kernels run in the same process, so the
    ratio cancels the CPU-frequency drift that moves absolute wall
    clock by tens of percent between CI runs on this host (the same
    reasoning as bench_step_throughput's in-process ``legacy_scan``
    A/B). A genuine batched-kernel regression still moves the ratio;
    a slow host day moves numerator and denominator together. Scalar
    absolute throughput is printed for context but gated by
    bench_step_throughput, whose scenarios exist for that purpose.
    """
    if not baseline_path.exists():
        print(f"FAIL: no baseline at {baseline_path}", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    entry = baseline.get("modes", {}).get(mode)
    if entry is None:
        print(
            f"FAIL: baseline {baseline_path} has no '{mode}' mode; "
            "regenerate with --write-baseline",
            file=sys.stderr,
        )
        return 1
    floor = 1.0 - tolerance
    failures = []
    print(
        f"  scalar       {matrix['scalar_configs_per_s']:8.2f} configs/s "
        f"vs baseline {entry['scalar_configs_per_s']:8.2f} (context only)"
    )
    checks = []
    for size, row in matrix["batches"].items():
        tracked = entry["batches"].get(size)
        if tracked is not None:
            checks.append(
                (f"batch={size}", row["speedup_vs_scalar"],
                 tracked["speedup_vs_scalar"])
            )
    for name, row in matrix.get("divergent", {}).items():
        tracked = entry.get("divergent", {}).get(name)
        if tracked is not None:
            checks.append(
                (name, row["speedup_vs_scalar"], tracked["speedup_vs_scalar"])
            )
    for name, current, tracked in checks:
        ratio = current / tracked
        marker = "ok" if ratio >= floor else "REGRESSION"
        print(
            f"  {name:12s} {current:8.2f}x vs scalar, baseline "
            f"{tracked:8.2f}x ({ratio:5.2f} of tracked)  {marker}"
        )
        if ratio < floor:
            failures.append((name, ratio))
    if failures:
        print(
            f"FAIL: speedup vs scalar more than {tolerance:.0%} below "
            "baseline on: "
            + ", ".join(f"{name} ({ratio:.2f}x)" for name, ratio in failures),
            file=sys.stderr,
        )
        return 1
    print(f"speedup vs scalar within {tolerance:.0%} of baseline at every size")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI-sized runs (4x4 mesh, short cycle counts)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="timed repeats per size; best is reported (default 1)",
    )
    parser.add_argument(
        "--json", default=str(RESULTS_DIR / "batched_sweep.json"),
        help="result JSON path ('' to skip writing)",
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH),
        help="tracked baseline JSON path (default: BENCH_batched_sweep.json)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate BENCH_batched_sweep.json for this mode",
    )
    parser.add_argument(
        "--check-regression", action="store_true",
        help="exit non-zero if configs/sec fell more than "
             "--regression-tolerance below the tracked baseline",
    )
    parser.add_argument(
        "--regression-tolerance", type=float, default=0.25, metavar="FRAC",
        help="allowed fractional configs/sec drop vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--golden-smoke", action="store_true",
        help="also run a divergent sweep through both kernels and require "
             "bit-identical results",
    )
    add_profile_argument(parser)
    args = parser.parse_args(argv)

    with maybe_profile(args.profile):
        matrix = run_matrix(args.tiny, max(1, args.repeats))

    report = {"benchmark": "batched_sweep", "tiny": args.tiny, **matrix}
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_json(report, path)
        print(f"results written to {path}")

    mode = "tiny" if args.tiny else "default"
    if args.golden_smoke:
        status = golden_smoke(args.tiny)
        if status:
            return status
    if args.write_baseline:
        write_baseline(matrix, mode)
    if args.check_regression:
        print(f"\nregression check vs {args.baseline} [{mode}]:")
        status = check_regression(
            matrix, Path(args.baseline), mode, args.regression_tolerance
        )
        if status:
            return status
    return 0


if __name__ == "__main__":
    sys.exit(main())
