"""Tests for the level-occupancy collector."""

import pytest

from repro.core.dvs_link import DVSChannel, TransitionTiming
from repro.core.levels import PAPER_TABLE
from repro.core.power_model import PAPER_LINK_POWER
from repro.errors import ConfigError
from repro.metrics.levels import LevelOccupancyCollector, channel_level_map
from repro.network.simulator import Simulator

from .conftest import small_config


def make_channels(levels):
    return [
        DVSChannel(
            PAPER_TABLE,
            PAPER_LINK_POWER,
            timing=TransitionTiming(0.2e-6, 4),
            initial_level=level,
        )
        for level in levels
    ]


class TestLevelOccupancyCollector:
    def test_residency_fractions(self):
        collector = LevelOccupancyCollector(make_channels([0, 0, 9]))
        collector.sample()
        residency = collector.residency()
        assert residency[0] == pytest.approx(2 / 3)
        assert residency[9] == pytest.approx(1 / 3)
        assert sum(residency) == pytest.approx(1.0)

    def test_mean_level(self):
        collector = LevelOccupancyCollector(make_channels([3, 5]))
        collector.sample()
        collector.sample()
        assert collector.mean_level() == pytest.approx(4.0)

    def test_empty(self):
        collector = LevelOccupancyCollector(make_channels([1]))
        assert collector.residency() == [0.0] * 10
        with pytest.raises(ConfigError):
            collector.mean_level()

    def test_needs_channels(self):
        with pytest.raises(ConfigError):
            LevelOccupancyCollector([])

    def test_describe(self):
        collector = LevelOccupancyCollector(make_channels([0]))
        collector.sample()
        text = collector.describe()
        assert "L0" in text and "L9" in text


class TestChannelLevelMap:
    def test_map_covers_all_channels(self):
        simulator = Simulator(small_config())
        mapping = channel_level_map(simulator)
        assert len(mapping) == len(simulator.channels)
        assert all(level == 9 for level in mapping.values())

    def test_map_tracks_dvs(self):
        config = small_config(policy="history", rate=0.02, warmup=0, measure=3_000)
        simulator = Simulator(config)
        simulator.run_cycles(3_000)
        mapping = channel_level_map(simulator)
        assert min(mapping.values()) < 9
