"""Figure 7: router power distribution.

Paper anchors: links 82.4% of router+channel power, allocators 81 mW.
This is the analytical reconstruction (the original is a Synopsys
synthesis measurement; see DESIGN.md substitution notes).
"""

from repro.harness.experiments import fig7_router_power_distribution

from .common import emit, run_once


def test_fig7_router_power_distribution(benchmark):
    figure = run_once(benchmark, fig7_router_power_distribution)
    emit("fig7_router_power", figure)
    fractions = {row[0]: row[2] for row in figure.rows}
    assert abs(fractions["links"] - 0.824) < 0.001
    watts = {row[0]: row[1] for row in figure.rows}
    assert abs(watts["allocators"] - 0.081) < 1e-6
