"""Figures 8 and 9: spatial and temporal variance of the injected workload.

Paper shape: the two-level task model produces strongly non-uniform
per-node load (Figure 8) and a bursty, long-range-dependent time series at
a single router (Figure 9) — unlike uniform/Poisson reference traffic.
"""

from repro.harness.experiments import fig8_spatial_variance, fig9_temporal_variance
from repro.traffic.selfsim import hurst_variance_time

from .common import emit, run_once, scale


def test_fig8_spatial_variance(benchmark):
    figure = run_once(benchmark, lambda: fig8_spatial_variance(scale()))
    emit("fig8_spatial_variance", figure)
    mean = figure.extras["mean"]
    variance = figure.extras["variance"]
    # Uniform traffic would give a coefficient of variation near zero; the
    # task model concentrates load on session sources.
    assert variance > (mean**2) * 0.1


def test_fig9_temporal_variance(benchmark):
    figure = run_once(
        benchmark, lambda: fig9_temporal_variance(scale(), window=500, windows=80)
    )
    emit("fig9_temporal_variance", figure)
    series = [row[1] for row in figure.rows]
    mean = figure.extras["mean"]
    assert figure.extras["variance"] > 0.0
    # Bursty: some windows far above the mean, some silent.
    assert max(series) > 2.0 * mean
    if all(v == series[0] for v in series):
        raise AssertionError("temporal series is flat")


def test_fig9_series_is_long_range_dependent(benchmark):
    figure = run_once(
        benchmark,
        lambda: fig9_temporal_variance(scale(), window=100, windows=600),
    )
    series = [row[1] for row in figure.rows]
    hurst = hurst_variance_time(series)
    print(f"\nFigure 9 LRD check: variance-time Hurst estimate = {hurst:.3f}")
    assert hurst > 0.5
