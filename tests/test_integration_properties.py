"""Cross-cutting integration properties of the whole system.

Determinism, workload-controlled comparisons via trace replay, and the
qualitative paper relationships that must hold at any scale.
"""

import pytest

from repro.config import DVSControlConfig
from repro.network.simulator import Simulator
from repro.traffic.trace import RecordingSource, TraceReplaySource

from .conftest import small_config


class TestDeterminism:
    def test_same_config_same_results(self):
        config = small_config(policy="history", rate=0.5, measure=2_000, seed=9)
        first = Simulator(config).run()
        second = Simulator(config).run()
        assert first.offered_packets == second.offered_packets
        assert first.ejected_packets == second.ejected_packets
        assert first.latency.mean == second.latency.mean
        assert first.power.mean_power_w == second.power.mean_power_w
        assert first.power.transition_count == second.power.transition_count

    def test_different_seed_different_traffic(self):
        first = Simulator(small_config(rate=0.5, seed=1, measure=2_000)).run()
        second = Simulator(small_config(rate=0.5, seed=2, measure=2_000)).run()
        assert first.offered_packets != second.offered_packets


class TestTraceControlledComparison:
    def _record(self, config, cycles):
        simulator = Simulator(config)
        recorder = RecordingSource(simulator.traffic)
        simulator.traffic = recorder
        simulator.run_cycles(cycles)
        return recorder.trace

    def test_policies_see_identical_traffic(self):
        """Replaying one recorded trace under both policies makes the
        comparison workload-identical: offered counts match exactly."""
        config = small_config(rate=0.4, warmup=0, measure=3_000)
        trace = self._record(config, 3_000)
        results = {}
        for policy in ("none", "history"):
            run_config = config.with_dvs(DVSControlConfig(policy=policy))
            simulator = Simulator(run_config)
            simulator.traffic = TraceReplaySource(
                simulator.topology, run_config.workload, trace
            )
            simulator.begin_measurement()
            simulator.run_cycles(3_000)
            results[policy] = simulator.finish()
        assert (
            results["none"].offered_packets == results["history"].offered_packets
        )
        # DVS saves link power on the identical workload. (On a run this
        # short, regulator transition overheads have not amortized, so the
        # link-only decomposition is the meaningful comparison.)
        assert (
            results["history"].power.normalized_link_only
            < results["none"].power.normalized_link_only
        )
        assert results["none"].power.normalized == pytest.approx(1.0)


class TestPaperRelationships:
    def test_dvs_latency_cost_and_power_benefit(self):
        """The central trade-off at any scale: less power, more latency."""
        config = small_config(
            policy="none",
            rate=0.3,
            workload_kind="two_level",
            warmup=1_000,
            measure=4_000,
            average_tasks=8,
            average_task_duration_s=8.0e-6,
            onoff_sources_per_task=8,
        )
        baseline = Simulator(config).run()
        dvs = Simulator(config.with_dvs(DVSControlConfig(policy="history"))).run()
        assert dvs.power.mean_power_w < baseline.power.mean_power_w
        assert dvs.latency.mean > baseline.latency.mean

    def test_lower_load_saves_more_power(self):
        results = {}
        for rate in (0.05, 0.8):
            config = small_config(policy="history", rate=rate, measure=4_000)
            results[rate] = Simulator(config).run()
        assert (
            results[0.05].power.normalized <= results[0.8].power.normalized * 1.1
        )

    def test_aggressive_thresholds_save_more_power(self):
        from repro.core.thresholds import TABLE2_SETTINGS

        results = {}
        for name in ("I", "VI"):
            config = small_config(rate=0.5, measure=4_000).with_dvs(
                DVSControlConfig(
                    policy="history", thresholds=TABLE2_SETTINGS[name]
                )
            )
            results[name] = Simulator(config).run()
        assert (
            results["VI"].power.normalized <= results["I"].power.normalized * 1.05
        )

    def test_static_level_beats_nothing_but_not_history_at_light_load(self):
        """A fixed mid-level saves power but can't track idleness as well
        as the history policy on a light, bursty load."""
        base = small_config(
            rate=0.05,
            workload_kind="two_level",
            measure=5_000,
            average_tasks=4,
            average_task_duration_s=5.0e-6,
            onoff_sources_per_task=4,
        )
        static = Simulator(
            base.with_dvs(DVSControlConfig(policy="static", static_level=5))
        ).run()
        history = Simulator(
            base.with_dvs(DVSControlConfig(policy="history"))
        ).run()
        assert static.power.normalized < 1.0
        assert history.power.normalized < static.power.normalized


class TestIdealLinksExtension:
    def test_ideal_links_reduce_latency_cost(self):
        """Instant transitions (the future-technology limit) cut the DVS
        latency penalty without giving back much power."""
        from repro.config import LinkConfig
        import dataclasses

        base = small_config(policy="history", rate=0.5, measure=5_000)
        conservative = Simulator(base).run()
        ideal_link = LinkConfig(
            voltage_transition_s=1.0e-9,
            frequency_transition_link_cycles=0,
            filter_capacitance_f=1.0e-9,
        )
        ideal = Simulator(dataclasses.replace(base, link=ideal_link)).run()
        assert ideal.latency.mean <= conservative.latency.mean * 1.2
        assert ideal.power.normalized < 0.9
