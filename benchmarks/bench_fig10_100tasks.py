"""Figure 10: DVS vs non-DVS latency/throughput and power, 100 tasks.

Paper shape: history-based DVS saves a large factor of link power
(normalized power well below 1, biggest at light load), costs extra
latency at every load, and gives up only a small slice of throughput.
"""

from .common import cached_fig10, emit, run_once, scale


def test_fig10_dvs_vs_nodvs_100tasks(benchmark):
    figure = run_once(benchmark, lambda: cached_fig10(scale().name))
    emit("fig10_100tasks", figure)
    summary = figure.extras["summary"]
    print(f"\nFigure 10 summary: {summary.describe()}")

    # Power savings large and biggest at light load.
    savings = [row[7] for row in figure.rows]
    assert max(savings) > 2.5
    assert savings[0] >= savings[-1] * 0.8

    # DVS latency above baseline at every measured rate.
    for row in figure.rows:
        lat_nodvs, lat_dvs = row[2], row[3]
        if lat_nodvs == lat_nodvs and lat_dvs == lat_dvs:  # skip NaN
            assert lat_dvs > lat_nodvs

    # Throughput loss bounded.
    assert summary.throughput_change > -0.15
