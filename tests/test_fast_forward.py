"""Bit-identity tests for the event-horizon fast-forward.

Every test here runs the same configuration twice — once with quiescence
skipping enabled (the default) and once stepping every cycle — and
compares the *complete* ``SimulationResult`` with ``==`` semantics via
canonical JSON. The edge cases target each horizon component: DVS
history-window boundaries, pending ``EVENT_PHASE`` events, series window
boundaries, and exhausted traffic sources on the drain path.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.harness.serialization import to_json
from repro.instrument.bus import Observer
from repro.network.simulator import Simulator
from repro.network.topology import Topology
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.permutation import PermutationTraffic
from repro.traffic.tasks import TwoLevelWorkload
from repro.traffic.trace import TraceReplaySource
from repro.traffic.uniform import UniformRandomTraffic

from .conftest import small_config


def _comparable(result) -> dict:
    """A SimulationResult as plain data, series expanded to their samples
    (to_json's repr fallback would otherwise compare object identities)."""
    data = to_json(result)
    data["series"] = {
        name: (series.window_cycles, series.values)
        for name, series in result.series.items()
    }
    return data


def run_pair(
    config: SimulationConfig, *, series_window: int = 0
) -> tuple[Simulator, Simulator, dict, dict]:
    """Run *config* with and without fast-forward; return both results."""
    fast = Simulator(config, series_window=series_window)
    slow = Simulator(config, series_window=series_window, fast_forward=False)
    result_fast = _comparable(fast.run())
    result_slow = _comparable(slow.run())
    return fast, slow, result_fast, result_slow


class TestEdgeCases:
    def test_idle_spans_straddle_dvs_history_windows(self):
        """Sparse two-level traffic under the history policy: idle gaps are
        longer than the 200-cycle history window, so naive skipping would
        jump over controller window closes. The horizon must split spans
        at every boundary and reproduce the EWMA state bit-for-bit."""
        config = small_config(
            policy="history",
            workload_kind="two_level",
            rate=0.005,
            measure=4_000,
            average_tasks=4,
            average_task_duration_s=3.0e-6,
        )
        fast, slow, result_fast, result_slow = run_pair(config)
        history_window = config.dvs.history_window
        assert fast.idle_cycles_skipped > history_window
        assert slow.idle_cycles_skipped == 0
        assert result_fast == result_slow

    def test_pending_phase_event_inside_span(self):
        """A static policy walking the links down to level 0 schedules
        voltage/frequency phase boundaries that land in otherwise dead
        air. The bucket-map horizon must stop exactly on them."""
        config = small_config(
            policy="static", rate=0.002, warmup=200, measure=4_000
        )
        fast, slow, result_fast, result_slow = run_pair(config)
        assert fast.idle_cycles_skipped > 0
        # Transitions happened, and their timing/energy is unchanged.
        assert result_fast["power"]["transition_count"] > 0
        assert result_fast == result_slow

    def test_series_window_boundary_inside_span(self):
        """Windowed series observers must see every window close at its
        exact cycle even when the close falls inside a quiescent gap."""
        config = small_config(rate=0.01, measure=3_000)
        fast, slow, result_fast, result_slow = run_pair(
            config, series_window=500
        )
        assert fast.idle_cycles_skipped > 0
        assert result_fast["series"] == result_slow["series"]
        assert result_fast == result_slow

    def test_exhausted_source_drain_path(self):
        """drain() with a finished trace source fast-forwards through the
        tail and reports the same elapsed cycle count."""
        trace = [(0, 0, 8), (1, 4, 2), (40, 3, 5), (700, 2, 6)]
        config = small_config(rate=0.0001)
        elapsed = {}
        for fast_forward in (True, False):
            simulator = Simulator(config, fast_forward=fast_forward)
            simulator.traffic = TraceReplaySource(
                simulator.topology, config.workload, trace
            )
            elapsed[fast_forward] = simulator.drain(max_cycles=5_000)
            assert simulator.flits_in_network() == 0
            assert simulator.pending_source_packets() == 0
            if fast_forward:
                assert simulator.idle_cycles_skipped > 0
        assert elapsed[True] == elapsed[False]

    def test_saturated_run_is_bit_identical_too(self):
        """At saturation the active set pins fast-forward off on its own;
        results still match exactly."""
        config = small_config(policy="history", rate=1.2, measure=1_500)
        _, _, result_fast, result_slow = run_pair(config)
        assert result_fast == result_slow

    def test_run_until_saturated_matches_cycle_by_cycle_stepping(self):
        """run_until with fast_forward=True and False walk bit-identical
        kernel states through a saturated run: same per-router counters,
        same drain counters, same pending event population at every
        checkpoint."""
        config = small_config(policy="history", rate=1.2, measure=1_500)
        fast = Simulator(config)
        slow = Simulator(config, fast_forward=False)
        for target in (120, 450, 900, 1_600):
            fast.run_until(target)
            slow.run_until(target)
            assert fast.now == slow.now == target
            assert fast._active_list == slow._active_list
            assert [r.flits_launched for r in fast.routers] == [
                r.flits_launched for r in slow.routers
            ]
            assert [r.packets_ejected for r in fast.routers] == [
                r.packets_ejected for r in slow.routers
            ]
            assert fast._pending_transport == slow._pending_transport
            assert fast.pending_source_packets() == slow.pending_source_packets()
            fast_events = sorted(
                (cycle, event[0]) for cycle, event in fast.iter_scheduled_events()
            )
            slow_events = sorted(
                (cycle, event[0]) for cycle, event in slow.iter_scheduled_events()
            )
            assert fast_events == slow_events

    def test_drain_deadline_failure_reports_the_cycle_budget(self):
        """A network that cannot empty (saturated source still injecting)
        trips drain()'s deadline and the error names the budget."""
        config = small_config(policy="history", rate=1.2, measure=1_500)
        simulator = Simulator(config)
        simulator.run_until(400)
        assert simulator.flits_in_network() > 0
        with pytest.raises(SimulationError, match="within 64 cycles"):
            simulator.drain(max_cycles=64)


class TestActiveRouterSet:
    def test_active_set_matches_legacy_full_scan(self):
        """The dirty-set scheduler visits the same routers in the same
        order as the old scan over all N routers."""
        config = small_config(policy="history", rate=0.4, measure=2_000)
        legacy = Simulator(config, fast_forward=False)
        legacy.legacy_scan = True
        modern = Simulator(config, fast_forward=False)
        assert to_json(legacy.run()) == to_json(modern.run())

    def test_active_list_is_exactly_the_nonidle_routers(self):
        config = small_config(rate=0.3)
        simulator = Simulator(config)
        checkpoints = (10, 57, 200, 641)
        for target in checkpoints:
            simulator.run_until(target)
            expected = [
                node
                for node, router in enumerate(simulator.routers)
                if not router.is_idle
            ]
            assert simulator._active_list == expected
            flagged = [
                node
                for node, flag in enumerate(simulator._active_flags)
                if flag
            ]
            assert flagged == expected

    def test_iter_active_routers_yields_ascending_node_order_midrun(self):
        """The zero-copy active view stays sorted while the network is
        busy — the order every consumer (sanitizer sweeps, the stepping
        loop itself) relies on."""
        config = small_config(policy="history", rate=0.9, measure=1_200)
        simulator = Simulator(config)
        seen_nonempty = 0
        for target in (40, 150, 420, 700, 1_100):
            simulator.run_until(target)
            nodes = [router.node for router in simulator.iter_active_routers()]
            assert nodes == sorted(nodes)
            assert nodes == simulator._active_list
            if nodes:
                seen_nonempty += 1
        assert seen_nonempty > 0

    def test_pending_source_counter_matches_brute_force(self):
        config = small_config(rate=0.8, measure=1_000)
        simulator = Simulator(config)
        for target in (25, 120, 400, 900):
            simulator.run_until(target)
            queued = sum(len(r.inj_queue) for r in simulator.routers)
            partial = sum(1 for r in simulator.routers if r.inj_flits)
            assert simulator.pending_source_packets() == queued + partial


class _EveryCycleCounter(Observer):
    """Needs every cycle: overriding on_cycle alone blocks skipping."""

    unskippable = True

    def __init__(self):
        self.cycles = 0

    def on_cycle(self, now: int) -> None:
        self.cycles += 1


class _SpanAwareCounter(Observer):
    """Opts back in: accounts skipped spans in closed form."""

    def __init__(self):
        self.cycles = 0

    def on_cycle(self, now: int) -> None:
        self.cycles += 1

    def on_idle_span(self, start: int, end: int) -> None:
        self.cycles += end - start


class TestObserverContract:
    def test_plain_cycle_hook_disables_fast_forward(self):
        config = small_config(rate=0.001, warmup=100, measure=400)
        simulator = Simulator(config)
        counter = simulator.bus.attach(_EveryCycleCounter())
        simulator.run()
        assert simulator.idle_cycles_skipped == 0
        assert counter.cycles == config.total_cycles

    def test_span_aware_cycle_hook_keeps_fast_forward(self):
        config = small_config(rate=0.001, warmup=100, measure=400)
        simulator = Simulator(config)
        counter = simulator.bus.attach(_SpanAwareCounter())
        simulator.run()
        assert simulator.idle_cycles_skipped > 0
        assert counter.cycles == config.total_cycles

    def test_detaching_the_blocker_reenables_skipping(self):
        config = small_config(rate=0.001)
        simulator = Simulator(config)
        blocker = simulator.bus.attach(_EveryCycleCounter())
        assert simulator.bus.unskippable_cycle_hooks == [blocker]
        simulator.bus.detach(blocker)
        assert simulator.bus.unskippable_cycle_hooks == []
        simulator.run_cycles(300)
        assert simulator.idle_cycles_skipped > 0


class TestNextInjectionContract:
    """next_injection_cycle must be side-effect free and honest: calling
    injections() on any earlier cycle returns [] without touching RNG."""

    def _assert_quiet_until_horizon(self, source, probe_cycles=24):
        horizon = source.next_injection_cycle(0)
        assert horizon is not None and horizon >= 0
        state = source.rng.getstate()
        last = min(int(min(horizon, 10**6)), probe_cycles)
        for t in range(last):
            assert source.injections(t) == []
        assert source.rng.getstate() == state

    def test_uniform(self):
        config = small_config(rate=0.05).workload
        source = UniformRandomTraffic(Topology(3, 2), config)
        self._assert_quiet_until_horizon(source)

    def test_permutation(self):
        config = small_config(
            workload_kind="permutation", rate=0.05, permutation="transpose"
        ).workload
        source = PermutationTraffic(Topology(3, 2), config)
        self._assert_quiet_until_horizon(source)

    def test_hotspot(self):
        config = small_config(rate=0.05).workload
        source = HotspotTraffic(Topology(3, 2), config)
        self._assert_quiet_until_horizon(source)

    def test_two_level(self):
        config = small_config(
            workload_kind="two_level",
            rate=0.02,
            average_tasks=3,
            average_task_duration_s=3.0e-6,
        ).workload
        source = TwoLevelWorkload(Topology(3, 2), config)
        self._assert_quiet_until_horizon(source)

    def test_trace_replay(self):
        topo = Topology(3, 2)
        source = TraceReplaySource(
            topo, small_config(rate=0.0001).workload, [(37, 0, 5), (90, 1, 2)]
        )
        assert source.next_injection_cycle(0) == 37
        assert source.injections(10) == []
        assert source.next_injection_cycle(50) == 50  # packet already due
        source.injections(37)
        assert source.next_injection_cycle(38) == 90
        source.injections(90)
        assert source.next_injection_cycle(91) == float("inf")

    def test_zero_rate_never_injects(self):
        topo = Topology(3, 2)
        source = UniformRandomTraffic(topo, small_config(rate=0.0).workload)
        assert source.next_injection_cycle(0) == float("inf")

    def test_default_is_conservative(self):
        config = small_config(rate=0.001)
        simulator = Simulator(config)
        # Base-class default (None) disables skipping entirely.
        simulator.traffic.next_injection_cycle = lambda now: None
        simulator.run_cycles(500)
        assert simulator.idle_cycles_skipped == 0
