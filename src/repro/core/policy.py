"""DVS policies: the paper's Algorithm 1 and comparison baselines.

A policy is a small decision object instantiated once per router output
port. Every history window the port controller feeds it the window's link
utilization and downstream input-buffer utilization; the policy returns one
of three actions: step the channel one level down (slower, lower voltage),
hold, or step one level up. The channel state machine enforces transition
latencies; the policy is purely combinational plus two EWMA registers,
matching the paper's ~500-gate hardware realization (Section 3.3).

Policies provided:

* :class:`HistoryDVSPolicy` — the paper's Algorithm 1: EWMA-predicted LU
  drives the step decision, EWMA-predicted BU selects between the
  light-load and congested threshold pairs.
* :class:`AlwaysMaxPolicy` — the non-DVS baseline (links pinned at the top
  level).
* :class:`StaticLevelPolicy` — offline-chosen fixed level (what
  variable-frequency links supported before DVS extensions).
* :class:`LinkUtilizationOnlyPolicy` — the strawman of Section 3.1 that
  Section 3.1 argues against: LU thresholds only, no congestion litmus.
* :class:`AdaptiveThresholdPolicy` — the dynamic-threshold extension the
  paper points to in Section 4.4.2.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import ConfigError
from .history import EWMAPredictor
from .thresholds import TABLE1_DEFAULT, ThresholdSet


class DVSAction(enum.Enum):
    """Per-window decision of a DVS policy.

    ``STEP_DOWN``/``HOLD``/``STEP_UP`` are the paper's three actions; the
    ``value`` is the signed level delta the controller applies. ``SLEEP``
    and ``WAKE`` extend the action space for shutdown-capable policies
    (Tsai-style link shutdown below level 0): they do not map to a level
    delta and are handled explicitly by the port controller.
    """

    STEP_DOWN = -1
    HOLD = 0
    STEP_UP = 1
    SLEEP = -2
    WAKE = 2


@dataclass(frozen=True, slots=True)
class PolicyInputs:
    """One history window's observations, as seen by a policy.

    Attributes:
        link_utilization: Fraction of the window's link clocks that carried
            flits (paper Eq. (2)), in [0, 1].
        buffer_utilization: Mean occupied fraction of the downstream input
            buffers over the window (paper Eq. (3)), in [0, 1].
        level: The channel's current operating level (ascending frequency).
        max_level: Top level index of the channel's VF table.
        cycle: Router cycle at which the window closed.
        asleep: Whether the channel is in the sleep state below level 0
            (always ``False`` for channels without shutdown support).
        sleep_demand: Whether traffic tried to use the channel while it
            slept during this window — the wake signal for shutdown
            policies.
    """

    link_utilization: float
    buffer_utilization: float
    level: int
    max_level: int
    cycle: int
    asleep: bool = False
    sleep_demand: bool = False


class DVSPolicy(ABC):
    """Interface all per-port DVS policies implement."""

    #: Whether this policy's error model charges replay penalties; when
    #: True the port controller drains :meth:`consume_replay_flits` every
    #: window and bills them to the channel. Class attribute so the
    #: controller's hot path pays one attribute read for ordinary policies.
    has_replay: bool = False

    @abstractmethod
    def decide(self, inputs: PolicyInputs) -> DVSAction:
        """Fold in one window's observations and return the action."""

    def consume_replay_flits(self) -> int:
        """Flits to replay for errors detected in the last window (drains)."""
        return 0

    def reset(self) -> None:  # pragma: no cover - trivial default
        """Clear any internal prediction state."""


class HistoryDVSPolicy(DVSPolicy):
    """The paper's history-based DVS policy (Algorithm 1).

    Per window:

    1. ``LU_pred = (W*LU + LU_past)/(W+1)``; same for BU (Eq. (5)).
    2. If ``BU_pred < B_congested`` use the light-load thresholds, else the
       congested (more aggressive) ones.
    3. ``LU_pred < T_low`` -> step down; ``LU_pred > T_high`` -> step up;
       otherwise hold.

    Note the congestion litmus: when the downstream buffers are full the
    network is saturated, link delay is hidden behind queueing, and the
    higher threshold pair lets the link slow down even at moderate LU.
    """

    def __init__(
        self,
        thresholds: ThresholdSet = TABLE1_DEFAULT,
        *,
        weight: float = 3.0,
    ) -> None:
        self.thresholds = thresholds
        self._lu_predictor = EWMAPredictor(weight)
        self._bu_predictor = EWMAPredictor(weight)

    @property
    def predicted_link_utilization(self) -> float:
        """Most recent ``LU_pred`` (for tracing / tests)."""
        return self._lu_predictor.predicted

    @property
    def predicted_buffer_utilization(self) -> float:
        """Most recent ``BU_pred``."""
        return self._bu_predictor.predicted

    def decide(self, inputs: PolicyInputs) -> DVSAction:
        lu_pred = self._lu_predictor.update(inputs.link_utilization)
        bu_pred = self._bu_predictor.update(inputs.buffer_utilization)
        t_low, t_high = self.thresholds.select(bu_pred)
        if lu_pred < t_low:
            return DVSAction.STEP_DOWN
        if lu_pred > t_high:
            return DVSAction.STEP_UP
        return DVSAction.HOLD

    def reset(self) -> None:
        self._lu_predictor.reset()
        self._bu_predictor.reset()


class AlwaysMaxPolicy(DVSPolicy):
    """Non-DVS baseline: drive the channel to, and hold it at, max level."""

    def decide(self, inputs: PolicyInputs) -> DVSAction:
        if inputs.level < inputs.max_level:
            return DVSAction.STEP_UP
        return DVSAction.HOLD


class StaticLevelPolicy(DVSPolicy):
    """Hold the channel at one fixed, offline-chosen level.

    This is what plain variable-frequency links [Wei et al., Kim-Horowitz]
    offered before their DVS extension: the frequency is set once for the
    expected workload and never tracks it.
    """

    def __init__(self, level: int) -> None:
        if level < 0:
            raise ConfigError(f"static level must be non-negative, got {level}")
        self.level = level

    def decide(self, inputs: PolicyInputs) -> DVSAction:
        target = min(self.level, inputs.max_level)
        if inputs.level < target:
            return DVSAction.STEP_UP
        if inputs.level > target:
            return DVSAction.STEP_DOWN
        return DVSAction.HOLD


class LinkUtilizationOnlyPolicy(DVSPolicy):
    """Ablation: Algorithm 1 without the buffer-utilization litmus.

    Section 3.1 shows LU alone cannot distinguish a lightly loaded network
    from a congested one (both show low LU), so this policy keeps links
    fast during congestion where slowing them is nearly free. Used by the
    ablation benches to quantify what the litmus buys.
    """

    def __init__(
        self,
        thresholds: ThresholdSet = TABLE1_DEFAULT,
        *,
        weight: float = 3.0,
    ) -> None:
        self.thresholds = thresholds
        self._lu_predictor = EWMAPredictor(weight)

    @property
    def predicted_link_utilization(self) -> float:
        return self._lu_predictor.predicted

    def decide(self, inputs: PolicyInputs) -> DVSAction:
        lu_pred = self._lu_predictor.update(inputs.link_utilization)
        if lu_pred < self.thresholds.low_uncongested:
            return DVSAction.STEP_DOWN
        if lu_pred > self.thresholds.high_uncongested:
            return DVSAction.STEP_UP
        return DVSAction.HOLD

    def reset(self) -> None:
        self._lu_predictor.reset()


class AdaptiveThresholdPolicy(DVSPolicy):
    """Extension: Algorithm 1 with a slowly adapting light-load pair.

    Section 4.4.2 observes that the threshold pair is a power/latency dial
    and suggests adjusting it dynamically. This implementation nudges the
    light-load pair one notch more aggressive after ``patience`` consecutive
    windows of comfortably low predicted BU (latency headroom exists) and
    one notch more conservative whenever predicted BU approaches the
    congestion litmus (latency is at risk). The pair moves within
    ``[floor_low, ceiling_low]`` keeping a fixed ``gap`` between low and
    high thresholds.
    """

    def __init__(
        self,
        base: ThresholdSet = TABLE1_DEFAULT,
        *,
        weight: float = 3.0,
        step: float = 0.05,
        gap: float = 0.1,
        floor_low: float = 0.2,
        ceiling_low: float = 0.5,
        patience: int = 8,
        comfort_bu: float = 0.2,
        danger_bu: float = 0.4,
    ) -> None:
        if step <= 0.0 or gap <= 0.0:
            raise ConfigError("step and gap must be positive")
        if not 0.0 <= floor_low < ceiling_low <= 1.0 - gap:
            raise ConfigError("need 0 <= floor_low < ceiling_low <= 1 - gap")
        if patience <= 0:
            raise ConfigError("patience must be positive")
        if not 0.0 <= comfort_bu < danger_bu <= 1.0:
            raise ConfigError("need 0 <= comfort_bu < danger_bu <= 1")
        self._base = base
        self._lu_predictor = EWMAPredictor(weight)
        self._bu_predictor = EWMAPredictor(weight)
        self.step = step
        self.gap = gap
        self.floor_low = floor_low
        self.ceiling_low = ceiling_low
        self.patience = patience
        self.comfort_bu = comfort_bu
        self.danger_bu = danger_bu
        self._low = base.low_uncongested
        self._calm_windows = 0

    @property
    def current_light_load_pair(self) -> tuple[float, float]:
        """The adapted ``(T_low, T_high)`` light-load pair."""
        return self._low, self._low + self.gap

    def decide(self, inputs: PolicyInputs) -> DVSAction:
        lu_pred = self._lu_predictor.update(inputs.link_utilization)
        bu_pred = self._bu_predictor.update(inputs.buffer_utilization)

        if bu_pred >= self.danger_bu:
            self._low = max(self.floor_low, self._low - self.step)
            self._calm_windows = 0
        elif bu_pred <= self.comfort_bu:
            self._calm_windows += 1
            if self._calm_windows >= self.patience:
                self._low = min(self.ceiling_low, self._low + self.step)
                self._calm_windows = 0
        else:
            self._calm_windows = 0

        if bu_pred < self._base.congested_bu:
            t_low, t_high = self._low, self._low + self.gap
        else:
            t_low, t_high = self._base.low_congested, self._base.high_congested
        if lu_pred < t_low:
            return DVSAction.STEP_DOWN
        if lu_pred > t_high:
            return DVSAction.STEP_UP
        return DVSAction.HOLD

    def reset(self) -> None:
        self._lu_predictor.reset()
        self._bu_predictor.reset()
        self._low = self._base.low_uncongested
        self._calm_windows = 0


# ---------------------------------------------------------------------------
# Registry entries for the paper's policies.
#
# Factories receive the resolved DVSControlConfig plus a PolicyBuildContext
# and must read their knob values through ``knob_values`` so that both the
# legacy config attributes (``ewma_weight``, ``static_level``) and the
# generic ``params`` mapping work, with identical precedence everywhere.
# ---------------------------------------------------------------------------

from typing import TYPE_CHECKING  # noqa: E402

from .registry import (  # noqa: E402
    PolicyBuildContext,
    PolicyKnob,
    knob_values,
    register_null_policy,
    register_policy,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..config import DVSControlConfig


_EWMA_KNOB = PolicyKnob(
    "ewma_weight",
    default=3.0,
    minimum=1e-9,
    sweep=(1.0, 3.0, 7.0),
    description="history weight W of the EWMA predictor (Eq. (5))",
)


register_null_policy(
    "none",
    description="no DVS control: links pinned at the top level (paper baseline)",
)


@register_policy(
    "history",
    description="the paper's Algorithm 1: EWMA-predicted LU with BU litmus",
    knobs=(_EWMA_KNOB,),
    uses_thresholds=True,
)
def _build_history(dvs: "DVSControlConfig", context: PolicyBuildContext) -> DVSPolicy:
    values = knob_values(dvs)
    return HistoryDVSPolicy(dvs.thresholds, weight=values["ewma_weight"])


@register_policy(
    "static",
    description="offline-chosen fixed level (variable-frequency links baseline)",
    knobs=(
        PolicyKnob(
            "static_level",
            default=0,
            minimum=0,
            integer=True,
            level_indexed=True,
            sweep=(0, 3, 6, 9),
            description="the pinned V/F level (0 = slowest)",
        ),
    ),
)
def _build_static(dvs: "DVSControlConfig", context: PolicyBuildContext) -> DVSPolicy:
    values = knob_values(dvs)
    return StaticLevelPolicy(int(values["static_level"]))


@register_policy(
    "lu_only",
    description="Section 3.1 strawman: LU thresholds without the BU litmus",
    knobs=(_EWMA_KNOB,),
    uses_thresholds=True,
)
def _build_lu_only(dvs: "DVSControlConfig", context: PolicyBuildContext) -> DVSPolicy:
    values = knob_values(dvs)
    return LinkUtilizationOnlyPolicy(dvs.thresholds, weight=values["ewma_weight"])


@register_policy(
    "adaptive_threshold",
    description="Section 4.4.2 extension: slowly adapting light-load pair",
    knobs=(
        PolicyKnob(
            "ewma_weight",
            default=3.0,
            minimum=1e-9,
            description="history weight W of the EWMA predictor (Eq. (5))",
        ),
    ),
    uses_thresholds=True,
)
def _build_adaptive(dvs: "DVSControlConfig", context: PolicyBuildContext) -> DVSPolicy:
    values = knob_values(dvs)
    return AdaptiveThresholdPolicy(dvs.thresholds, weight=values["ewma_weight"])
