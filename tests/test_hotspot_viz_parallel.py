"""Tests for hotspot traffic, terminal visualization, and parallel sweeps."""

import collections

import pytest

from repro import viz
from repro.config import WorkloadConfig
from repro.errors import ConfigError, ExperimentError, WorkloadError
from repro.network.simulator import Simulator
from repro.network.topology import Topology
from repro.traffic.hotspot import HotspotTraffic

from .conftest import small_config


class TestHotspotTraffic:
    def make(self, fraction=0.5, hotspots=None):
        topology = Topology(4, 2)
        return (
            HotspotTraffic(
                topology,
                WorkloadConfig(kind="uniform", injection_rate=1.0, seed=3),
                hotspots=hotspots,
                hotspot_fraction=fraction,
            ),
            topology,
        )

    def test_hotspot_receives_biased_share(self):
        source, topology = self.make(fraction=0.5, hotspots=(5,))
        counts = collections.Counter()
        for now in range(10_000):
            for _src, dst in source.injections(now):
                counts[dst] += 1
        total = sum(counts.values())
        assert counts[5] / total == pytest.approx(0.5, abs=0.08)

    def test_zero_fraction_is_uniform(self):
        source, _ = self.make(fraction=0.0, hotspots=(5,))
        counts = collections.Counter()
        for now in range(10_000):
            for _src, dst in source.injections(now):
                counts[dst] += 1
        total = sum(counts.values())
        assert counts[5] / total < 0.15

    def test_no_self_traffic(self):
        source, _ = self.make(fraction=1.0, hotspots=(0,))
        for now in range(2_000):
            for src, dst in source.injections(now):
                assert src != dst

    def test_default_hotspot_is_center(self):
        source, topology = self.make(hotspots=None)
        assert source.hotspots == (topology.node_at((2, 2)),)

    def test_validation(self):
        topology = Topology(4, 2)
        config = WorkloadConfig(kind="uniform", injection_rate=1.0)
        with pytest.raises(WorkloadError):
            HotspotTraffic(topology, config, hotspots=(99,))
        with pytest.raises(WorkloadError):
            HotspotTraffic(topology, config, hotspots=())
        with pytest.raises(WorkloadError):
            HotspotTraffic(topology, config, hotspot_fraction=1.5)

    def test_drives_simulator_and_concentrates_load(self):
        config = small_config(radix=4, rate=0.8, warmup=0, measure=3_000)
        simulator = Simulator(config)
        simulator.traffic = HotspotTraffic(
            simulator.topology, config.workload, hotspot_fraction=0.6
        )
        simulator.run_cycles(3_000)
        hotspot = simulator.topology.node_at((2, 2))
        into_hotspot = sum(
            ch.dvs.flits_sent
            for ch in simulator.channels
            if ch.spec.dst_node == hotspot
        )
        mean_in = sum(ch.dvs.flits_sent for ch in simulator.channels) / len(
            simulator.channels
        )
        assert into_hotspot / 4 > mean_in  # hotspot's 4 in-channels run hot


class TestViz:
    def test_level_grid_shape(self):
        simulator = Simulator(small_config(radix=4))
        grid = viz.level_grid(simulator)
        lines = grid.splitlines()
        assert len(lines) == 4
        assert all(len(line.split()) == 4 for line in lines)
        assert set("".join(grid.split())) == {"9"}  # all at max level

    def test_heatmap_edges_blank(self):
        simulator = Simulator(small_config(radix=4))
        heat = viz.channel_level_heatmap(simulator, direction=0)  # +x
        lines = [line.split() for line in heat.splitlines()]
        # The rightmost column has no +x channel.
        assert all(line[-1] == "." for line in lines)
        assert all(cell == "9" for line in lines for cell in line[:-1])

    def test_heatmap_direction_validation(self):
        simulator = Simulator(small_config(radix=4))
        with pytest.raises(ConfigError):
            viz.channel_level_heatmap(simulator, direction=7)

    def test_sparkline(self):
        line = viz.sparkline([0, 1, 2, 3, 4, 5])
        assert len(line) == 6
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_downsamples(self):
        assert len(viz.sparkline(range(1000), width=40)) == 40

    def test_sparkline_flat(self):
        assert viz.sparkline([3, 3, 3]) == "   "

    def test_sparkline_empty(self):
        with pytest.raises(ConfigError):
            viz.sparkline([])

    def test_utilization_bars(self):
        simulator = Simulator(small_config(rate=0.5, measure=1_500))
        simulator.run_cycles(1_500)
        text = viz.utilization_bars(simulator, top=5)
        assert "busiest channels" in text
        assert "#" in text


class TestParallelSweeps:
    def test_matches_serial(self):
        from repro.harness.parallel import parallel_rate_sweep
        from repro.harness.sweep import rate_sweep

        config = small_config(rate=0.2, measure=1_500)
        rates = (0.2, 0.6)
        serial = rate_sweep(config, rates)
        parallel = parallel_rate_sweep(config, rates, processes=2)
        for s, p in zip(serial, parallel, strict=False):
            assert s.mean_latency == p.mean_latency
            assert s.offered_rate == p.offered_rate
            assert s.normalized_power == p.normalized_power

    def test_single_process_path(self):
        from repro.harness.parallel import parallel_rate_sweep

        config = small_config(rate=0.2, measure=1_000)
        points = parallel_rate_sweep(config, (0.3,), processes=1)
        assert len(points) == 1

    def test_policy_comparison_shape(self):
        from repro.config import DVSControlConfig
        from repro.harness.parallel import parallel_compare_policies

        config = small_config(rate=0.2, measure=1_000)
        sweeps = parallel_compare_policies(
            config,
            (0.2, 0.5),
            {
                "none": DVSControlConfig(policy="none"),
                "history": DVSControlConfig(policy="history"),
            },
            processes=2,
        )
        assert set(sweeps) == {"none", "history"}
        assert all(len(points) == 2 for points in sweeps.values())

    def test_validation(self):
        from repro.harness.parallel import parallel_compare_policies

        config = small_config()
        with pytest.raises(ExperimentError):
            parallel_compare_policies(config, (0.2,), {}, processes=2)
        with pytest.raises(ExperimentError):
            parallel_compare_policies(
                config, (0.2,), {"a": config.dvs}, processes=0
            )
