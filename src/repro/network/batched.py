"""Batched structure-of-arrays sweep kernel: N configs in lockstep.

A threshold sweep (paper Table 2 settings I–VI x offered loads, or a
``repro pareto`` knob grid) runs many configurations that differ **only in
their policy knobs**: same topology, same traffic trace (same seed), same
warmup/measure phases. Between two history-window boundaries such
configurations are *provably identical* — the policy is only consulted
when a window closes (every ``H`` cycles), so two configs whose policies
have issued the same channel commands so far occupy bit-identical
simulator states. This kernel exploits that:

* **Equivalence classes.** The batch starts as one class: a single scalar
  :class:`~repro.network.simulator.Simulator` carrying every member. At
  each history-window boundary the coordinator computes the per-member
  policy decisions, canonicalizes them to *channel effects* (a dropped
  request and a HOLD are the same effect), and splits the class only when
  members' effects genuinely differ — via ``copy.deepcopy`` of the class
  engine at the boundary, the one cycle where the engines diverge. A
  sweep whose members converge (e.g. a saturated network where every
  threshold setting selects the shared congested pair) runs N configs for
  nearly the price of one.

* **Structure-of-arrays coordinator state.** Per-member bookkeeping that
  the shared engines cannot carry lives in numpy arrays indexed
  ``[member, channel]``: the EWMA prediction lanes of the history policy
  (advanced by one vectorized, allocation-free op per boundary — see
  :meth:`BatchedEngine._advance_history_lane`), the per-member
  ``requests_dropped`` counters, and the integer-**femtojoule** per-link
  energy ledger (:meth:`BatchedEngine.member_energy_femtojoules`;
  integer addition commutes, so per-member energy sums are exact — see
  :func:`repro.units.joules_to_femtojoules`).

* **Bit-identity by construction.** The class engines run the *unmodified*
  scalar kernel; the only seam is a puppet policy
  (:class:`_PuppetPolicy`) that replays the canonical member's decision
  through the real :class:`~repro.core.controller.PortDVSController`
  dispatch path. Counters stay integers, every float op in the vector
  lane is the same single-rounded IEEE-754 op the scalar
  :class:`~repro.core.history.EWMAPredictor` performs, and golden tests
  (``tests/test_batched_kernel.py``) assert strict equality — not
  closeness — against the scalar kernel for every registered policy.

The scalar kernel remains the always-on oracle: anything this module
cannot express (mixed compatibility keys, the network sanitizer) falls
back to it, and :class:`~repro.harness.backends.BatchedBackend` evicts a
failing batch wholesale and retries each member scalar.

numpy is the only dependency and it is optional at import time: importing
this module without numpy succeeds, and :func:`require_numpy` raises a
clear, actionable error before any sweep work starts (never a raw
``ImportError`` mid-sweep).
"""

from __future__ import annotations

import copy
import dataclasses

from ..config import SimulationConfig
from ..core.policy import DVSAction, DVSPolicy, PolicyInputs
from ..core.registry import PolicyBuildContext, build_policy, knob_values
from ..core.thresholds import TABLE1_DEFAULT
from ..errors import ConfigError, SimulationError
from ..units import joules_to_femtojoules
from .simulator import SimulationResult, Simulator

try:  # pragma: no cover - exercised via require_numpy tests
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

#: Oldest numpy release the kernel is tested against (``np.take(out=)``
#: and the ``out=`` ufunc forms the hot lane relies on are all ancient;
#: this mostly guards against truly prehistoric installs).
MIN_NUMPY = (1, 22)

#: Default upper bound on members per lockstep batch. Beyond this the
#: split bookkeeping outgrows the stepping it amortizes.
DEFAULT_MAX_BATCH = 32


def _version_tuple(text: str) -> tuple[int, int]:
    parts = []
    for token in text.split(".")[:2]:
        digits = ""
        for char in token:
            if not char.isdigit():
                break
            digits += char
        parts.append(int(digits) if digits else 0)
    while len(parts) < 2:
        parts.append(0)
    return (parts[0], parts[1])


def require_numpy():
    """Return the numpy module, or raise a clear :class:`ConfigError`.

    Called at :class:`BatchedEngine` and
    :class:`~repro.harness.backends.BatchedBackend` construction so a
    missing or antique numpy fails *before* the sweep starts, with the
    remedy in the message, instead of surfacing as a raw ``ImportError``
    (or an ``AttributeError`` from an old numpy) mid-sweep.
    """
    if _np is None:
        raise ConfigError(
            "the batched sweep kernel (repro.network.batched) requires "
            f"numpy >= {MIN_NUMPY[0]}.{MIN_NUMPY[1]}, which is not "
            "installed; install it, or rerun with the scalar kernel "
            "(--kernel scalar, the default)"
        )
    version = _version_tuple(getattr(_np, "__version__", "0"))
    if version < MIN_NUMPY:
        raise ConfigError(
            f"the batched sweep kernel requires numpy >= "
            f"{MIN_NUMPY[0]}.{MIN_NUMPY[1]}, found {_np.__version__}; "
            "upgrade numpy or rerun with --kernel scalar"
        )
    return _np


def compatibility_key(config: SimulationConfig) -> str:
    """Fingerprint of everything one lockstep batch must share.

    Two configs may occupy the same batch exactly when they differ only
    in policy knobs — thresholds, EWMA weight, static level, generic
    ``params`` — because those are consulted solely at window boundaries,
    where the coordinator handles divergence. Everything else (topology,
    link model, traffic incl. seed and rate, phases, policy *name*,
    history window, initial level) must match, so the key is the config
    fingerprint with the knob fields pinned to canonical values.
    """
    dvs = dataclasses.replace(
        config.dvs,
        thresholds=TABLE1_DEFAULT,
        ewma_weight=3.0,
        static_level=0,
        params={},
    )
    return dataclasses.replace(config, dvs=dvs).fingerprint()


def plan_batches(
    configs: list[SimulationConfig], max_batch: int = DEFAULT_MAX_BATCH
) -> list[list[int]]:
    """Group config positions into lockstep-compatible batches.

    Returns lists of indices into *configs*: each batch shares one
    :func:`compatibility_key`, holds at most *max_batch* members, and
    preserves input order within and across groups (first appearance
    orders the groups), so planning is deterministic for a given input —
    a prerequisite for Serial==ProcessPool bit-identity.
    """
    if max_batch < 1:
        raise ConfigError("max_batch must be positive")
    groups: dict[str, list[int]] = {}
    for index, config in enumerate(configs):
        groups.setdefault(compatibility_key(config), []).append(index)
    batches: list[list[int]] = []
    for indices in groups.values():
        for start in range(0, len(indices), max_batch):
            batches.append(indices[start : start + max_batch])
    return batches


class _PuppetPolicy(DVSPolicy):
    """Replays a coordinator-chosen decision through the real controller.

    Installed in place of every class engine's per-port policy objects.
    ``has_replay`` is always True so the controller drains the replay
    counter every window; a zero preload makes
    :meth:`~repro.core.dvs_link.DVSChannel.charge_replay` a no-op, so
    puppets are transparent for replay-free policies.
    """

    has_replay = True

    def __init__(self) -> None:
        self.action = DVSAction.HOLD
        self.replay = 0

    def preload(self, action: DVSAction, replay: int) -> None:
        self.action = action
        self.replay = replay

    def decide(self, inputs: PolicyInputs) -> DVSAction:
        return self.action

    def consume_replay_flits(self) -> int:
        flits = self.replay
        self.replay = 0
        return flits


class _ClassState:
    """One equivalence class: a scalar engine plus the members riding it."""

    __slots__ = ("engine", "members", "puppets")

    def __init__(
        self, engine: Simulator, members: list[int], puppets: list[_PuppetPolicy]
    ):
        self.engine = engine
        self.members = members
        self.puppets = puppets


#: DVSAction by its signed code (the ``value`` attribute), for decoding
#: the int8 decision arrays back into enum members at puppet preload.
_ACTION_BY_CODE = {action.value: action for action in DVSAction}

# Channel-effect kinds for the canonical signature (what a decision
# actually does to the shared channel state; dropped requests and
# accepted no-ops are both NONE — they differ only in the per-member
# drop counter, which the coordinator carries separately).
_EFFECT_NONE = 0
_EFFECT_STEP = 1
_EFFECT_SLEEP = 2
_EFFECT_WAKE = 3


class BatchedEngine:
    """Runs N lockstep-compatible configurations as one copy-on-divergence
    ensemble; see the module docstring for the design.

    The public surface mirrors the scalar facade: construct with the
    member configs, call :meth:`run` once, receive one
    :class:`~repro.network.simulator.SimulationResult` per config in
    input order, each bit-identical to a scalar run of that config.
    """

    def __init__(
        self,
        configs: list[SimulationConfig],
        *,
        sanitize: bool = False,
    ):
        np = require_numpy()
        self._np = np
        configs = list(configs)
        if not configs:
            raise ConfigError("batched engine needs at least one config")
        key = compatibility_key(configs[0])
        for config in configs[1:]:
            if compatibility_key(config) != key:
                raise ConfigError(
                    "batched engine members must share a compatibility key "
                    "(same topology, link, traffic, phases and policy name; "
                    "only policy knobs may differ) — use plan_batches() to "
                    "group arbitrary sweeps"
                )
        self.configs = configs
        first = configs[0]
        self.n_members = len(configs)
        self._history_window = first.dvs.history_window
        self._warmup = first.warmup_cycles
        self._measure = first.measure_cycles
        self._dvs_enabled = first.dvs.enabled
        self._finished = False

        root = Simulator(first, sanitize=sanitize)
        self._n_channels = len(root.channels)
        table = first.link.build_table()
        self._max_level = table.max_level

        members = self.n_members
        channels = self._n_channels
        #: Per-member dropped-request counters (the only controller field
        #: that reaches SimulationResult; the class engines' own counters
        #: follow the canonical member and are discarded).
        self._drops = np.zeros(members, dtype=np.int64)
        #: Integer-femtojoule per-link energy ledger, snapshotted from the
        #: class channels at finish (identical for every member of a
        #: class, exact under integer summation).
        self._energy_fj = np.zeros((members, channels), dtype=np.int64)
        #: Diagnostics for the bench / docs honesty tables.
        self.splits = 0
        self.boundaries = 0

        self._vector_lane = self._dvs_enabled and first.dvs.policy == "history"
        self._member_policies: list[list[DVSPolicy]] = []
        if self._vector_lane:
            self._init_history_lane(np, table)
        elif self._dvs_enabled:
            # Object lane: real per-member, per-channel policy objects
            # built exactly as the engine builds them (same context, same
            # seeds), consulted by the coordinator instead of a controller.
            for config in configs:
                self._member_policies.append(
                    [
                        build_policy(
                            config.dvs,
                            PolicyBuildContext(
                                table=table,
                                channel_index=channel.spec.channel_id,
                                window_cycles=self._history_window,
                            ),
                        )
                        for channel in root.channels
                    ]
                )

        puppets = self._install_puppets(root)
        self._classes = [_ClassState(root, list(range(members)), puppets)]

    # -- construction helpers ---------------------------------------------

    def _init_history_lane(self, np, table) -> None:
        """Allocate the vectorized EWMA/decision lane for Algorithm 1."""
        members = self.n_members
        channels = self._n_channels
        shape = (members, channels)
        # Prediction registers (EWMAPredictor starts at 0.0).
        self._lu_pred = np.zeros(shape, dtype=np.float64)
        self._bu_pred = np.zeros(shape, dtype=np.float64)
        # Per-member constants, shaped (members, 1) to broadcast across
        # channels. Weight resolution goes through knob_values, exactly
        # like the registered history factory.
        weights = [knob_values(config.dvs)["ewma_weight"] for config in self.configs]
        self._weight = np.array(weights, dtype=np.float64).reshape(members, 1)
        self._weight_p1 = self._weight + 1.0
        thresholds = [config.dvs.thresholds for config in self.configs]
        column = lambda values: np.array(  # noqa: E731 - local shaping helper
            values, dtype=np.float64
        ).reshape(members, 1)
        self._congested_bu = column([t.congested_bu for t in thresholds])
        self._t_low_light = column([t.low_uncongested for t in thresholds])
        self._t_high_light = column([t.high_uncongested for t in thresholds])
        self._t_low_cong = column([t.low_congested for t in thresholds])
        self._t_high_cong = column([t.high_congested for t in thresholds])
        # Scratch buffers for the allocation-free boundary op: full-batch
        # sized, sliced per class. Names match their role in
        # _advance_history_lane.
        self._sc_prior = np.empty(shape, dtype=np.float64)
        self._sc_lu = np.empty(shape, dtype=np.float64)
        self._sc_bu = np.empty(shape, dtype=np.float64)
        self._sc_w = np.empty((members, 1), dtype=np.float64)
        self._sc_wp1 = np.empty((members, 1), dtype=np.float64)
        self._sc_col = np.empty((members, 1), dtype=np.float64)
        self._sc_light = np.empty(shape, dtype=bool)
        self._sc_heavy = np.empty(shape, dtype=bool)
        self._sc_m1 = np.empty(shape, dtype=bool)
        self._sc_m2 = np.empty(shape, dtype=bool)
        self._sc_down = np.empty(shape, dtype=bool)
        self._sc_up = np.empty(shape, dtype=bool)
        self._sc_act = np.empty(shape, dtype=np.int8)

    @staticmethod
    def _install_puppets(engine: Simulator) -> list[_PuppetPolicy]:
        puppets = []
        for controller in engine.controllers:
            puppet = _PuppetPolicy()
            controller.policy = puppet
            puppets.append(puppet)
        return puppets

    # -- public surface ----------------------------------------------------

    @property
    def class_count(self) -> int:
        """Live equivalence classes (1 == the whole batch is in lockstep)."""
        return len(self._classes)

    def member_energy_femtojoules(self):
        """Per-link energy ledger, integer femtojoules, ``[member, channel]``.

        Populated by :meth:`run`; converts back through
        :func:`repro.units.femtojoules_to_joules`.
        """
        return self._energy_fj

    def run(self) -> list[SimulationResult]:
        """Warm up, measure and summarize every member; results in order."""
        if self._finished:
            raise SimulationError("BatchedEngine.run() may only be called once")
        self._finished = True
        self._advance_phase(self._warmup)
        for cls in self._classes:
            cls.engine.begin_measurement()
        self._advance_phase(self._warmup + self._measure)
        return self._finish()

    # -- the boundary loop -------------------------------------------------

    def _advance_phase(self, end: int) -> None:
        """Advance every class to cycle *end*, intercepting boundaries.

        Classes are mutually independent, so each is driven to *end* in
        turn; classes born from mid-phase splits join the queue at their
        creation cycle. A window boundary at exactly *end* belongs to the
        next phase (it closes inside ``step(end)``), matching the scalar
        kernel's phasing.
        """
        if not self._dvs_enabled:
            for cls in self._classes:
                cls.engine.run_until(end)
            return
        window = self._history_window
        queue = list(self._classes)
        while queue:
            cls = queue.pop()
            engine = cls.engine
            while True:
                now = engine.now
                if now == 0:
                    boundary = window
                elif now % window == 0:
                    # The boundary at `now` is still pending: it closes
                    # inside step(now), which has not run yet.
                    boundary = now
                else:
                    boundary = now + (window - now % window)
                if boundary >= end:
                    engine.run_until(end)
                    break
                engine.run_until(boundary)
                queue.extend(self._close_boundary(cls))

    def _close_boundary(self, cls: _ClassState) -> list[_ClassState]:
        """Process one history-window boundary for one class.

        Equivalent to the scalar ``step(boundary)`` for every member:
        run the first half of the step (event dispatch + injection), read
        the exact decision inputs ``close_window`` would compute, decide
        per member, split the class where effects diverge, preload the
        puppets with each group's canonical decision, and run the second
        half (the real controller dispatch plus router stepping).
        Returns the classes split off, already advanced past the boundary.
        """
        np = self._np
        engine = cls.engine
        now = engine.now
        self.boundaries += 1
        engine.begin_boundary_step()

        controllers = engine.controllers
        channels = self._n_channels
        members = cls.members
        count = len(members)

        # Class-level decision inputs: exactly the expressions
        # PortDVSController.close_window evaluates (same float ops in the
        # same order), read without mutating the controller registers —
        # close_window itself updates them in finish_boundary_step below.
        lu = [0.0] * channels
        bu = [0.0] * channels
        level = [0] * channels
        steady = [False] * channels
        asleep = [False] * channels
        demand = [False] * channels
        sleep_ok = [False] * channels
        for j, controller in enumerate(controllers):
            channel = controller.channel
            busy = channel.busy_cycles_total - controller._last_busy_total
            lu[j] = min(1.0, busy / controller.window_cycles)
            occupancy = (
                controller.occupancy_source.cumulative_integral(now)
                - controller._last_occupancy_integral
            )
            bu[j] = min(
                1.0,
                occupancy / (controller.window_cycles * controller.buffer_capacity),
            )
            level[j] = channel.level
            steady[j] = channel.is_steady
            asleep[j] = channel.sleeping
            demand[j] = channel.sleep_demand
            sleep_ok[j] = channel.sleep_permitted(now)

        # Per-member decisions: signed DVSAction codes [member, channel].
        replay = np.zeros((count, channels), dtype=np.int64)
        if self._vector_lane:
            idx = np.asarray(members, dtype=np.intp)
            lu_row = np.asarray(lu, dtype=np.float64)
            bu_row = np.asarray(bu, dtype=np.float64)
            act = self._advance_history_lane(idx, lu_row, bu_row)
        else:
            act = np.zeros((count, channels), dtype=np.int8)
            for i, member in enumerate(members):
                policies = self._member_policies[member]
                for j in range(channels):
                    policy = policies[j]
                    action = policy.decide(
                        PolicyInputs(
                            link_utilization=lu[j],
                            buffer_utilization=bu[j],
                            level=level[j],
                            max_level=self._max_level,
                            cycle=now,
                            asleep=asleep[j],
                            sleep_demand=demand[j],
                        )
                    )
                    act[i, j] = action.value
                    if policy.has_replay:
                        replay[i, j] = policy.consume_replay_flits()

        # Canonical channel effects + per-member drop accounting. The
        # predicates mirror DVSChannel.request_level / request_sleep /
        # request_wake acceptance exactly (see those methods).
        level_arr = np.asarray(level, dtype=np.int64)
        steady_arr = np.asarray(steady, dtype=bool)
        sleep_ok_arr = np.asarray(sleep_ok, dtype=bool)
        asleep_arr = np.asarray(asleep, dtype=bool)
        step_mask = np.abs(act) == 1
        target = np.clip(level_arr + act, 0, self._max_level)
        effect_step = step_mask & steady_arr & (target != level_arr)
        effect_sleep = (act == DVSAction.SLEEP.value) & sleep_ok_arr
        effect_wake = (act == DVSAction.WAKE.value) & asleep_arr
        dropped = (
            (step_mask & ~steady_arr)
            | ((act == DVSAction.SLEEP.value) & ~sleep_ok_arr)
            | ((act == DVSAction.WAKE.value) & ~asleep_arr)
        )
        member_rows = np.asarray(members, dtype=np.intp)
        np.add.at(self._drops, member_rows, dropped.sum(axis=1, dtype=np.int64))

        kind = (
            effect_step * _EFFECT_STEP
            + effect_sleep * _EFFECT_SLEEP
            + effect_wake * _EFFECT_WAKE
        ).astype(np.int64)
        signature = (
            (kind << 48) | (np.where(effect_step, target, 0) << 32) | replay
        )

        # Group members by identical effect rows (insertion order keeps
        # the grouping deterministic across backends).
        groups: dict[bytes, list[int]] = {}
        for i in range(count):
            groups.setdefault(signature[i].tobytes(), []).append(i)
        ordered = list(groups.values())

        new_classes: list[_ClassState] = []
        for rows in ordered[1:]:
            # Divergent group: clone the pre-finish engine state. The
            # deepcopy maps every internal reference (bound methods,
            # shared counters, pooled events) onto the clone; only the
            # id()-keyed transition-event index must be rebuilt, and the
            # clone's puppets re-collected from its controllers.
            clone = copy.deepcopy(engine)
            clone._channel_ids = {
                id(channel.dvs): channel.spec.channel_id
                for channel in clone.channels
            }
            puppets = [controller.policy for controller in clone.controllers]
            self._preload(puppets, act[rows[0]], replay[rows[0]])
            clone.finish_boundary_step()
            split = _ClassState(clone, [members[i] for i in rows], puppets)
            new_classes.append(split)
            self.splits += 1
        if new_classes:
            cls.members = [members[i] for i in ordered[0]]
            self._classes.extend(new_classes)

        self._preload(cls.puppets, act[ordered[0][0]], replay[ordered[0][0]])
        engine.finish_boundary_step()
        return new_classes

    @staticmethod
    def _preload(puppets: list[_PuppetPolicy], act_row, replay_row) -> None:
        for j, puppet in enumerate(puppets):
            puppet.preload(_ACTION_BY_CODE[int(act_row[j])], int(replay_row[j]))

    def _advance_history_lane(self, idx, lu_row, bu_row):  # repro-hot
        """Vectorized Algorithm 1 for one class's members at one boundary.

        One in-place numpy op per pipeline stage, every ufunc writing into
        a preallocated scratch buffer (lint rule R6 enforces the
        no-temporaries contract). Each element performs exactly the
        scalar sequence of :class:`~repro.core.history.EWMAPredictor`
        and :meth:`HistoryDVSPolicy.decide` — single-rounded IEEE-754
        multiply/add/divide and the same comparisons — so the lane is
        bit-identical to the per-port objects it replaces.

        Returns an int8 ``[len(idx), channel]`` view of signed
        :class:`~repro.core.policy.DVSAction` codes.
        """
        np = self._np
        count = idx.shape[0]
        prior = self._sc_prior[:count]
        lu = self._sc_lu[:count]
        bu = self._sc_bu[:count]
        weight = self._sc_w[:count]
        weight_p1 = self._sc_wp1[:count]
        column = self._sc_col[:count]
        light = self._sc_light[:count]
        heavy = self._sc_heavy[:count]
        mask_a = self._sc_m1[:count]
        mask_b = self._sc_m2[:count]
        down = self._sc_down[:count]
        up = self._sc_up[:count]
        act = self._sc_act[:count]

        np.take(self._weight, idx, axis=0, out=weight)
        np.take(self._weight_p1, idx, axis=0, out=weight_p1)

        # LU_pred = (W * LU + LU_pred) / (W + 1)   (paper Eq. (5))
        np.take(self._lu_pred, idx, axis=0, out=prior)
        np.multiply(weight, lu_row, out=lu)
        np.add(lu, prior, out=lu)
        np.divide(lu, weight_p1, out=lu)
        self._lu_pred[idx] = lu

        # BU_pred, same recurrence.
        np.take(self._bu_pred, idx, axis=0, out=prior)
        np.multiply(weight, bu_row, out=bu)
        np.add(bu, prior, out=bu)
        np.divide(bu, weight_p1, out=bu)
        self._bu_pred[idx] = bu

        # Threshold select (BU litmus) + compare, regime by regime so the
        # selected thresholds are the member's exact floats, never a
        # blended recomputation.
        np.take(self._congested_bu, idx, axis=0, out=column)
        np.less(bu, column, out=light)
        np.logical_not(light, out=heavy)

        np.take(self._t_low_light, idx, axis=0, out=column)
        np.less(lu, column, out=mask_a)
        np.logical_and(light, mask_a, out=mask_a)
        np.take(self._t_low_cong, idx, axis=0, out=column)
        np.less(lu, column, out=mask_b)
        np.logical_and(heavy, mask_b, out=mask_b)
        np.logical_or(mask_a, mask_b, out=down)

        np.take(self._t_high_light, idx, axis=0, out=column)
        np.greater(lu, column, out=mask_a)
        np.logical_and(light, mask_a, out=mask_a)
        np.take(self._t_high_cong, idx, axis=0, out=column)
        np.greater(lu, column, out=mask_b)
        np.logical_and(heavy, mask_b, out=mask_b)
        np.logical_or(mask_a, mask_b, out=up)

        act.fill(DVSAction.HOLD.value)
        act[down] = DVSAction.STEP_DOWN.value
        act[up] = DVSAction.STEP_UP.value
        return act

    # -- summarization -----------------------------------------------------

    def _finish(self) -> list[SimulationResult]:
        np = self._np
        results: list[SimulationResult | None] = [None] * self.n_members
        for cls in self._classes:
            engine = cls.engine
            class_result = engine.finish()
            now = engine.now
            ledger = np.empty(self._n_channels, dtype=np.int64)
            for j, channel in enumerate(engine.channels):
                channel.dvs.finalize(now)
                ledger[j] = joules_to_femtojoules(channel.dvs.total_energy_j)
            for member in cls.members:
                self._energy_fj[member, :] = ledger
                results[member] = dataclasses.replace(
                    class_result,
                    config=self.configs[member],
                    requests_dropped=int(self._drops[member]),
                )
        return results  # type: ignore[return-value]


def run_batch(
    configs: list[SimulationConfig], *, sanitize: bool = False
) -> list[SimulationResult]:
    """Convenience: one-shot batched run of *configs* (shared key required)."""
    return BatchedEngine(configs, sanitize=sanitize).run()
