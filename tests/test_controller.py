"""Tests for the per-port DVS controller."""

import pytest

from repro.core.controller import PortDVSController
from repro.core.dvs_link import DVSChannel, TransitionTiming
from repro.core.levels import PAPER_TABLE
from repro.core.policy import DVSAction, HistoryDVSPolicy, StaticLevelPolicy
from repro.core.power_model import PAPER_LINK_POWER
from repro.errors import ConfigError


class FakeOccupancy:
    """Scripted cumulative occupancy integral."""

    def __init__(self):
        self.total = 0.0

    def add(self, integral):
        self.total += integral

    def cumulative_integral(self, now):
        return self.total


def make_channel(initial_level=9):
    return DVSChannel(
        PAPER_TABLE,
        PAPER_LINK_POWER,
        timing=TransitionTiming(
            voltage_transition_s=0.5e-6, frequency_transition_link_cycles=5
        ),
        initial_level=initial_level,
    )


def make_controller(channel=None, policy=None, occupancy=None, window=200):
    channel = channel if channel is not None else make_channel()
    policy = policy if policy is not None else HistoryDVSPolicy()
    occupancy = occupancy if occupancy is not None else FakeOccupancy()
    return (
        PortDVSController(
            channel,
            policy,
            occupancy,
            window_cycles=window,
            buffer_capacity=128,
        ),
        channel,
        occupancy,
    )


class TestMeasurement:
    def test_link_utilization_from_busy_delta(self):
        controller, channel, _ = make_controller()
        for cycle in range(100):
            channel.send_flit(cycle)  # 1 cycle each at max level
        controller.close_window(200)
        assert controller.last_link_utilization == pytest.approx(0.5)

    def test_busy_counter_differenced_between_windows(self):
        controller, channel, _ = make_controller()
        for cycle in range(60):
            channel.send_flit(cycle)
        controller.close_window(200)
        controller.close_window(400)
        assert controller.last_link_utilization == 0.0

    def test_buffer_utilization_from_integral_delta(self):
        controller, _, occupancy = make_controller()
        occupancy.add(200 * 64.0)  # half the 128-slot port for a window
        controller.close_window(200)
        assert controller.last_buffer_utilization == pytest.approx(0.5)

    def test_utilizations_clamped(self):
        controller, channel, occupancy = make_controller(window=10)
        occupancy.add(1e9)
        for cycle in range(10):
            channel.send_flit(cycle)
        controller.close_window(10)
        assert controller.last_link_utilization <= 1.0
        assert controller.last_buffer_utilization == 1.0


class TestActuation:
    def test_idle_link_steps_down(self):
        controller, channel, _ = make_controller()
        action = None
        now = 0
        for _ in range(10):
            now += 200
            # The engine dispatches phase events at their exact cycle,
            # before any window closing at or after them.
            while (
                channel.pending_event_cycle is not None
                and channel.pending_event_cycle <= now
            ):
                channel.on_phase_end(channel.pending_event_cycle)
            action = controller.close_window(now)
        assert action is DVSAction.STEP_DOWN
        assert channel.level < 9

    def test_requests_dropped_mid_transition(self):
        channel = make_channel()
        controller, _, _ = make_controller(channel=channel)
        controller.close_window(200)  # starts a down transition (idle link)
        assert not channel.is_steady
        controller.close_window(400)  # link still transitioning
        assert controller.requests_dropped >= 1

    def test_static_policy_drives_to_level(self):
        channel = make_channel(initial_level=9)
        controller, _, _ = make_controller(
            channel=channel, policy=StaticLevelPolicy(7)
        )
        now = 0
        for _ in range(40):
            now += 200
            while (
                channel.pending_event_cycle is not None
                and channel.pending_event_cycle <= now
            ):
                channel.on_phase_end(channel.pending_event_cycle)
            controller.close_window(now)
        # Drain any in-flight transition.
        while channel.pending_event_cycle is not None:
            channel.on_phase_end(channel.pending_event_cycle)
        assert channel.level == 7

    def test_action_bookkeeping(self):
        controller, channel, _ = make_controller()
        controller.close_window(200)
        assert controller.windows_evaluated == 1
        assert sum(controller.actions_taken.values()) == 1


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ConfigError):
            PortDVSController(
                make_channel(), HistoryDVSPolicy(), FakeOccupancy(), window_cycles=0
            )

    def test_bad_capacity(self):
        with pytest.raises(ConfigError):
            PortDVSController(
                make_channel(),
                HistoryDVSPolicy(),
                FakeOccupancy(),
                buffer_capacity=0,
            )
