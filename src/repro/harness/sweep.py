"""Injection-rate sweeps and derived summary numbers.

The paper's latency/throughput figures are sweeps of offered load; this
module runs them, pairs DVS against baselines on identical workload seeds,
and computes the paper's summary statistics (zero-load latency increase,
average pre-saturation latency increase, throughput delta, power savings).

Sweeps execute through an :class:`~repro.harness.backends.ExecutionBackend`,
which memoizes per-config results on disk (:mod:`repro.harness.cache`):
re-running a sweep only simulates points whose exact config has never been
run under the current code epoch. Results are bit-identical either way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..config import DVSControlConfig, SimulationConfig
from ..errors import ExperimentError
from ..metrics.throughput import saturation_point
from ..network.simulator import SimulationResult
from .backends import ExecutionBackend, default_backend
from .runner import run_simulation


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One offered-load point of a sweep."""

    target_rate: float
    offered_rate: float
    accepted_rate: float
    mean_latency: float
    median_latency: float
    normalized_power: float
    savings_factor: float
    transition_count: int

    @classmethod
    def from_result(cls, target_rate: float, result: "SimulationResult") -> "SweepPoint":
        return cls(
            target_rate=target_rate,
            offered_rate=result.offered_rate,
            accepted_rate=result.accepted_rate,
            mean_latency=result.latency.mean,
            median_latency=result.latency.median,
            normalized_power=result.power.normalized,
            savings_factor=result.power.savings_factor,
            transition_count=result.power.transition_count,
        )


def rate_sweep(
    base_config: SimulationConfig,
    rates: Sequence[float],
    *,
    backend: ExecutionBackend | None = None,
) -> list[SweepPoint]:
    """Run *base_config* at each offered rate in *rates*.

    Execution goes through *backend*
    (:func:`~repro.harness.backends.default_backend` when omitted, which
    honors ``REPRO_PROCESSES``); results are identical regardless of the
    backend chosen.
    """
    if backend is None:
        backend = default_backend()
    rates = list(rates)
    results = backend.map_configs(base_config.with_rate(rate) for rate in rates)
    return [
        SweepPoint.from_result(rate, result)
        for rate, result in zip(rates, results)
    ]


def compare_policies(
    base_config: SimulationConfig,
    rates: Sequence[float],
    policies: dict[str, DVSControlConfig],
    *,
    backend: ExecutionBackend | None = None,
) -> dict[str, list[SweepPoint]]:
    """Sweep the same rates (same workload seeds) under several policies.

    All policy sweeps are submitted to *backend* as one flat batch, so a
    process pool sees ``len(policies) * len(rates)`` independent work
    items rather than one batch per policy.
    """
    if not policies:
        raise ExperimentError("need at least one policy to compare")
    if backend is None:
        backend = default_backend()
    rates = list(rates)
    results = backend.map_configs(
        base_config.with_dvs(dvs).with_rate(rate)
        for dvs in policies.values()
        for rate in rates
    )
    per_policy = iter(results)
    return {
        name: [SweepPoint.from_result(rate, next(per_policy)) for rate in rates]
        for name in policies
    }


def zero_load_latency(base_config: SimulationConfig, rate: float = 0.05) -> float:
    """Mean latency at a near-zero offered load (paper's reference point)."""
    result = run_simulation(base_config.with_rate(rate))
    if result.latency.count == 0:
        raise ExperimentError("no packets completed at the zero-load rate")
    return result.latency.mean


@dataclass(frozen=True, slots=True)
class SweepComparison:
    """Paper-style summary of a DVS sweep against a baseline sweep."""

    zero_load_increase: float
    average_presaturation_increase: float
    throughput_change: float
    max_savings: float
    average_savings: float

    def describe(self) -> str:
        return (
            f"zero-load latency {self.zero_load_increase:+.1%}, "
            f"pre-saturation latency {self.average_presaturation_increase:+.1%}, "
            f"throughput {self.throughput_change:+.1%}, "
            f"power savings up to {self.max_savings:.1f}X "
            f"({self.average_savings:.1f}X average)"
        )


def summarize_comparison(
    baseline: list[SweepPoint], dvs: list[SweepPoint]
) -> SweepComparison:
    """Compute the paper's headline numbers from paired sweeps.

    Pre-saturation points are those where the *baseline* latency is below
    twice its zero-load (first-point) latency, following the paper's
    saturation rule; savings statistics use the same points.
    """
    if len(baseline) != len(dvs) or not baseline:
        raise ExperimentError("sweeps must be non-empty and aligned")
    zero_base = baseline[0].mean_latency
    zero_dvs = dvs[0].mean_latency
    if not zero_base or math.isnan(zero_base) or math.isnan(zero_dvs):
        raise ExperimentError("zero-load points did not produce latencies")

    saturated_at = saturation_point(
        [p.offered_rate for p in baseline],
        [p.mean_latency for p in baseline],
        zero_base,
    )
    pre = slice(0, saturated_at if saturated_at > 0 else len(baseline))
    base_pre = baseline[pre]
    dvs_pre = dvs[pre]
    increases = [
        d.mean_latency / b.mean_latency - 1.0
        for b, d in zip(base_pre, dvs_pre)
        if not math.isnan(b.mean_latency) and not math.isnan(d.mean_latency)
    ]
    if not increases:
        raise ExperimentError("no pre-saturation points with latencies")
    savings = [p.savings_factor for p in dvs_pre]

    return SweepComparison(
        zero_load_increase=zero_dvs / zero_base - 1.0,
        average_presaturation_increase=sum(increases) / len(increases),
        throughput_change=(
            max(p.accepted_rate for p in dvs)
            / max(p.accepted_rate for p in baseline)
            - 1.0
        ),
        max_savings=max(savings),
        average_savings=sum(savings) / len(savings),
    )
