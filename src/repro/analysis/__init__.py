"""Static and runtime correctness tooling.

Two independent layers keep the simulator's correctness contracts from
silently rotting as the codebase grows (see ``docs/static_analysis.md``):

* :mod:`repro.analysis.lint` — **repro-lint**, a multi-pass static
  analysis framework with repo-specific rules R1-R11. Per-file AST rules
  (determinism of simulation code, fast-forward safety of observers,
  totality of the sweep-cache key) run alongside interprocedural passes
  built on the shared :mod:`~repro.analysis.model` project model:
  determinism taint (:mod:`~repro.analysis.taint`), unit/dimension
  checking (:mod:`~repro.analysis.dimensions`), and worker isolation
  (:mod:`~repro.analysis.isolation`). Known findings live in a committed
  baseline (:mod:`~repro.analysis.baseline`); repeat runs are served
  from an incremental cache (:mod:`~repro.analysis.cache`); CI consumes
  SARIF (:mod:`~repro.analysis.sarif`). Run it as
  ``python -m repro.analysis.lint src tests``.
* :mod:`repro.analysis.sanitizer` — the **network sanitizer**, an opt-in
  family of instrumentation-bus observers that assert conservation
  invariants (credits, flits, VC allocation, DVS transition legality)
  every simulated cycle. Enable with ``--sanitize`` on the CLI,
  ``sanitize=True`` on :class:`~repro.network.simulator.Simulator`, or
  ``REPRO_SANITIZE=1`` in the environment.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lint import Linter, Violation, lint_paths
    from .model import ModuleInfo, ProjectModel
    from .sanitizer import (
        ConservationSanitizer,
        DVSTransitionSanitizer,
        NetworkSanitizer,
        SanitizerObserver,
        SanitizerViolation,
        TrafficContractSanitizer,
        VCAllocationSanitizer,
    )

#: Public name -> defining submodule, resolved lazily (PEP 562) so that
#: ``python -m repro.analysis.lint`` does not import the module twice and
#: importing the package does not drag in the simulator stack.
_EXPORTS = {
    "Linter": "lint",
    "Violation": "lint",
    "lint_paths": "lint",
    "ModuleInfo": "model",
    "ProjectModel": "model",
    "ConservationSanitizer": "sanitizer",
    "DVSTransitionSanitizer": "sanitizer",
    "NetworkSanitizer": "sanitizer",
    "SanitizerObserver": "sanitizer",
    "SanitizerViolation": "sanitizer",
    "TrafficContractSanitizer": "sanitizer",
    "VCAllocationSanitizer": "sanitizer",
}


def __getattr__(name: str) -> object:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "ConservationSanitizer",
    "DVSTransitionSanitizer",
    "Linter",
    "ModuleInfo",
    "NetworkSanitizer",
    "ProjectModel",
    "SanitizerObserver",
    "SanitizerViolation",
    "TrafficContractSanitizer",
    "VCAllocationSanitizer",
    "Violation",
    "lint_paths",
]
