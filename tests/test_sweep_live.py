"""Live tests of the sweep helpers on small simulations."""

import pytest

from repro.config import DVSControlConfig
from repro.errors import ExperimentError
from repro.harness.sweep import (
    SweepPoint,
    compare_policies,
    rate_sweep,
    zero_load_latency,
)

from .conftest import small_config


class TestRateSweep:
    def test_points_align_with_rates(self):
        config = small_config(rate=0.1, measure=1_500)
        points = rate_sweep(config, (0.1, 0.5))
        assert [p.target_rate for p in points] == [0.1, 0.5]
        assert points[1].offered_rate > points[0].offered_rate

    def test_points_carry_power(self):
        config = small_config(policy="history", rate=0.1, measure=2_000)
        (point,) = rate_sweep(config, (0.1,))
        assert isinstance(point, SweepPoint)
        assert 0.0 < point.normalized_power <= 1.2
        assert point.savings_factor > 0.0


class TestZeroLoadLatency:
    def test_matches_analytic_floor(self):
        """Near-zero load: latency ~ pipeline-depth per hop + flits."""
        config = small_config(rate=0.01, measure=3_000)
        latency = zero_load_latency(config, rate=0.01)
        pipeline = config.network.pipeline_depth
        flits = config.network.flits_per_packet
        # 3x3 mesh: 1-4 hops. Bounds with injection/serialization slack.
        assert pipeline + flits <= latency <= 4 * pipeline + flits + 20

    def test_raises_when_nothing_completes(self):
        config = small_config(rate=0.0001, measure=50, warmup=0)
        with pytest.raises(ExperimentError):
            zero_load_latency(config, rate=1e-9)


class TestComparePoliciesLive:
    def test_same_offered_traffic_per_policy(self):
        """Same seed + rate means identical offered load across policies."""
        config = small_config(rate=0.3, measure=2_000)
        sweeps = compare_policies(
            config,
            (0.3,),
            {
                "none": DVSControlConfig(policy="none"),
                "static": DVSControlConfig(policy="static", static_level=5),
            },
        )
        assert (
            sweeps["none"][0].offered_rate == sweeps["static"][0].offered_rate
        )

    def test_static_level_power_between_extremes(self):
        config = small_config(rate=0.05, measure=3_000, warmup=2_000)
        sweeps = compare_policies(
            config,
            (0.05,),
            {
                "none": DVSControlConfig(policy="none"),
                "static5": DVSControlConfig(policy="static", static_level=5),
                "history": DVSControlConfig(policy="history"),
            },
        )
        none_power = sweeps["none"][0].normalized_power
        static_power = sweeps["static5"][0].normalized_power
        history_power = sweeps["history"][0].normalized_power
        assert history_power < static_power < none_power
