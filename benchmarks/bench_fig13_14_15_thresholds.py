"""Table 2 / Figures 13-15: the threshold trade-off study.

Paper shape: moving from threshold setting I to VI (less to more
aggressive down-scaling) monotonically trades latency for power — more
savings, higher latency — tracing a Pareto frontier at a fixed rate
(Figure 15, paper rate 1.7 packets/cycle).
"""

from repro.harness.experiments import (
    fig13_threshold_latency,
    fig14_threshold_power,
    fig15_pareto_curve,
)

from .common import cached_threshold_sweeps, emit, run_once, scale

RATES = (0.5, 1.1, 1.7)
SETTING_ORDER = ("I", "II", "III", "IV", "V", "VI")


def test_fig13_threshold_latency(benchmark):
    sweeps = run_once(
        benchmark, lambda: cached_threshold_sweeps(scale().name, RATES)
    )
    figure = fig13_threshold_latency(scale(), sweeps=sweeps)
    emit("fig13_threshold_latency", figure)
    assert len(figure.rows) == len(RATES)


def test_fig14_threshold_power(benchmark):
    sweeps = run_once(
        benchmark, lambda: cached_threshold_sweeps(scale().name, RATES)
    )
    figure = fig14_threshold_power(scale(), sweeps=sweeps)
    emit("fig14_threshold_power", figure)
    # More aggressive settings burn no more power, comparing the ends.
    mean_power = {
        name: sum(point.normalized_power for point in sweeps[name]) / len(sweeps[name])
        for name in SETTING_ORDER
    }
    assert mean_power["VI"] <= mean_power["I"] * 1.05


def test_fig15_pareto_curve(benchmark):
    figure = run_once(benchmark, lambda: fig15_pareto_curve(scale(), rate=1.7))
    emit("fig15_pareto", figure)
    savings = [row[4] for row in figure.rows]
    # The frontier spans a real range of savings across settings I..VI.
    assert max(savings) > min(savings)
    # The most aggressive setting is on the high-savings side.
    by_name = {row[0]: row[4] for row in figure.rows}
    assert by_name["VI"] >= by_name["I"]
