"""Credit-based flow control bookkeeping.

Two pieces live here:

* :class:`CreditState` — the upstream side's per-output-port credit
  counters and output-VC free flags. A credit is consumed when a flit is
  launched and returned when that flit later departs the downstream buffer;
  the free flag of a downstream VC is cleared at VC allocation and set when
  the credit of the packet's tail flit returns.
* :class:`OccupancyTracker` — the downstream side's input-port occupancy
  integral. Because credit counters mirror downstream occupancy exactly,
  the paper's DVS controller gets input-buffer utilization (Eq. (3)) "for
  free"; we integrate occupancy over time event-wise (occupancy x cycles)
  instead of sampling every cycle, which is exact and much cheaper.
"""

from __future__ import annotations

from ..errors import ConfigError, FlowControlError


class CreditState:
    """Upstream credit counters for one output port."""

    __slots__ = ("credits", "vc_free", "capacity_per_vc")

    def __init__(self, vcs: int, capacity_per_vc: int):
        if vcs < 1 or capacity_per_vc < 1:
            raise ConfigError("need >= 1 VC and >= 1 slot per VC")
        self.capacity_per_vc = capacity_per_vc
        self.credits = [capacity_per_vc] * vcs
        self.vc_free = [True] * vcs

    def consume(self, vc: int) -> None:
        """Spend one credit on *vc* (a flit is being launched)."""
        if self.credits[vc] <= 0:
            raise FlowControlError(f"credit underflow on VC {vc}")
        self.credits[vc] -= 1

    def restore(self, vc: int) -> None:
        """Return one credit to *vc* (a flit left the downstream buffer)."""
        if self.credits[vc] >= self.capacity_per_vc:
            raise FlowControlError(f"credit overflow on VC {vc}")
        self.credits[vc] += 1

    def outstanding(self, vc: int) -> int:
        """Credits currently spent on *vc*: flits launched but not yet
        credited back. By conservation this must equal flits in flight on
        the wire + flits in the downstream buffer + credits in flight on
        the return path (the network sanitizer checks exactly that)."""
        return self.capacity_per_vc - self.credits[vc]

    def allocate_vc(self, vc: int) -> None:
        """Claim downstream VC *vc* for a packet."""
        if not self.vc_free[vc]:
            raise FlowControlError(f"VC {vc} allocated while in use")
        self.vc_free[vc] = False

    def release_vc(self, vc: int) -> None:
        """Release downstream VC *vc* (its tail flit departed downstream)."""
        if self.vc_free[vc]:
            raise FlowControlError(f"VC {vc} released while already free")
        self.vc_free[vc] = True


class OccupancyTracker:
    """Event-wise time integral of one input port's buffer occupancy.

    The integral is **cumulative** so that any number of independent
    consumers (the upstream DVS controller, a Figure-4 profiling probe...)
    can each difference it against their own last reading.
    """

    __slots__ = ("occupied", "_integral", "_last_cycle")

    def __init__(self):
        self.occupied = 0
        self._integral = 0.0
        self._last_cycle = 0

    def _advance(self, now: int) -> None:
        if now < self._last_cycle:
            raise FlowControlError(
                f"occupancy time ran backwards: {now} < {self._last_cycle}"
            )
        if now > self._last_cycle:
            self._integral += self.occupied * (now - self._last_cycle)
            self._last_cycle = now

    # on_enqueue/on_dequeue run once per flit hop on the kernel's hot path;
    # both fold the :meth:`_advance` integration inline.

    def on_enqueue(self, now: int) -> None:  # repro-hot
        """A flit entered the port's buffers at *now*."""
        last = self._last_cycle
        if now != last:
            if now < last:
                raise FlowControlError(
                    f"occupancy time ran backwards: {now} < {last}"
                )
            self._integral += self.occupied * (now - last)
            self._last_cycle = now
        self.occupied += 1

    def on_dequeue(self, now: int) -> None:  # repro-hot
        """A flit left the port's buffers at *now*."""
        last = self._last_cycle
        if now != last:
            if now < last:
                raise FlowControlError(
                    f"occupancy time ran backwards: {now} < {last}"
                )
            self._integral += self.occupied * (now - last)
            self._last_cycle = now
        if self.occupied <= 0:
            raise FlowControlError("occupancy underflow")
        self.occupied -= 1

    def cumulative_integral(self, now: int) -> float:
        """Occupied-slots x cycles accumulated from cycle 0 through *now*."""
        self._advance(now)
        return self._integral
