"""Unit tests for the Router, driven directly without the full simulator."""

import pytest

from repro.core.dvs_link import DVSChannel, TransitionTiming
from repro.core.levels import PAPER_TABLE
from repro.core.power_model import PAPER_LINK_POWER
from repro.errors import SimulationError
from repro.network.channel import NetworkChannel
from repro.network.packet import Packet
from repro.network.router import EVENT_ARRIVAL, EVENT_CREDIT, Router
from repro.network.routing import DimensionOrderRouting
from repro.network.topology import Topology


class Harness:
    """One router in a 2-node line, with captured events."""

    def __init__(self, node=0, vcs=2, buffers_per_vc=8, pipeline_latency=3):
        self.topology = Topology(2, 1)
        self.routing = DimensionOrderRouting(self.topology, vcs)
        self.events = []
        self.ejected = []
        self.router = Router(
            node,
            self.topology,
            self.routing,
            vcs_per_port=vcs,
            buffers_per_vc=buffers_per_vc,
            credit_delay=2,
            schedule=lambda cycle, event: self.events.append((cycle, event)),
            packet_sink=lambda packet, now: self.ejected.append((packet, now)),
        )
        for port in self.topology.router_ports(node):
            spec = next(
                s
                for s in self.topology.channels
                if s.src_node == node and s.src_port == port
            )
            dvs = DVSChannel(
                PAPER_TABLE,
                PAPER_LINK_POWER,
                timing=TransitionTiming(0.2e-6, 4),
            )
            self.router.attach_channel(
                port, NetworkChannel(spec, dvs, pipeline_latency), buffers_per_vc
            )

    def place(self, flit, port=None, vc=0):
        """Enqueue *flit* directly into an input VC, bypassing on_arrival.

        White-box seeding must resynchronize the occupied-VC list the
        router's step scans (on_arrival/_inject maintain it normally).
        """
        if port is None:
            port = self.topology.local_port
        self.router.in_vcs[port][vc].buffer.enqueue(flit, 0)
        self.router.total_buffered += 1
        self.router.resync_occupancy()


class TestIdleAndInjection:
    def test_idle_initially(self):
        assert Harness().router.is_idle

    def test_offer_packet_wakes_router(self):
        harness = Harness()
        harness.router.offer_packet(Packet(0, 1, 5, 0))
        assert not harness.router.is_idle

    def test_injects_one_flit_per_cycle(self):
        harness = Harness()
        harness.router.offer_packet(Packet(0, 1, 5, 0))
        harness.router.step(0)
        assert harness.router.total_buffered == 1
        harness.router.step(1)
        assert harness.router.total_buffered >= 1  # flit 0 may already launch


class TestLaunch:
    def test_head_flit_launches_with_events(self):
        harness = Harness()
        packet = Packet(0, 1, 2, 0)
        flits = packet.make_flits()
        # Place the head directly in a network-facing... node 0 has only the
        # local port toward injection; use local input.
        harness.place(flits[0])
        harness.router.step(1)
        arrivals = [e for e in harness.events if e[1][0] == EVENT_ARRIVAL]
        assert len(arrivals) == 1
        cycle, event = arrivals[0]
        assert event[1] == 1  # destination node
        assert cycle > 1  # pipeline + serialization in the future

    def test_credit_consumed_on_launch(self):
        harness = Harness()
        packet = Packet(0, 1, 1, 0)
        (flit,) = packet.make_flits()
        harness.place(flit)
        out_port = harness.topology.plus_port(0)
        before = harness.router.credit_states[out_port].credits.copy()
        harness.router.step(1)
        after = harness.router.credit_states[out_port].credits
        assert sum(after) == sum(before) - 1

    def test_vc_released_on_tail_launch(self):
        harness = Harness()
        packet = Packet(0, 1, 1, 0)  # single flit: head and tail
        (flit,) = packet.make_flits()
        harness.place(flit)
        out_port = harness.topology.plus_port(0)
        harness.router.step(1)
        assert all(harness.router.credit_states[out_port].vc_free)

    def test_no_launch_without_credits(self):
        harness = Harness(buffers_per_vc=1)
        out_port = harness.topology.plus_port(0)
        state = harness.router.credit_states[out_port]
        for vc in range(2):
            state.consume(vc)
        packet = Packet(0, 1, 1, 0)
        (flit,) = packet.make_flits()
        harness.place(flit)
        harness.router.step(1)
        arrivals = [e for e in harness.events if e[1][0] == EVENT_ARRIVAL]
        assert not arrivals


class TestEjection:
    def test_arrived_packet_ejects(self):
        harness = Harness(node=1)
        packet = Packet(0, 1, 2, 0)
        flits = packet.make_flits()
        in_port = harness.topology.minus_port(0)  # from node 0
        harness.router.on_arrival(in_port, 0, flits[0], 10)
        harness.router.on_arrival(in_port, 0, flits[1], 11)
        harness.router.step(12)
        harness.router.step(13)
        assert harness.ejected
        ejected_packet, when = harness.ejected[0]
        assert ejected_packet is packet
        assert ejected_packet.ejected_cycle == when

    def test_ejection_returns_credits(self):
        harness = Harness(node=1)
        packet = Packet(0, 1, 1, 0)
        (flit,) = packet.make_flits()
        in_port = harness.topology.minus_port(0)
        harness.router.on_arrival(in_port, 0, flit, 10)
        harness.router.step(11)
        credits = [e for e in harness.events if e[1][0] == EVENT_CREDIT]
        assert len(credits) == 1
        cycle, event = credits[0]
        assert cycle == 11 + 2  # credit delay
        assert event[1] == 0  # upstream node
        assert event[4] is True  # tail flag


class TestCreditHandling:
    def test_on_credit_restores(self):
        harness = Harness()
        out_port = harness.topology.plus_port(0)
        state = harness.router.credit_states[out_port]
        state.consume(0)
        harness.router.on_credit(out_port, 0, is_tail=False)
        assert state.credits[0] == state.capacity_per_vc

    def test_credit_for_unattached_port(self):
        harness = Harness(node=0)
        with pytest.raises(SimulationError):
            harness.router.on_credit(harness.topology.minus_port(0), 0, False)

    def test_double_attach_rejected(self):
        harness = Harness()
        port = harness.topology.plus_port(0)
        with pytest.raises(SimulationError):
            harness.router.attach_channel(
                port, harness.router.channels[port], 8
            )
