"""Out-of-scope helper whose taint R9 must chase across the call graph.

This file lives outside the simulation-semantics paths, so R1 does not
apply here — which is exactly the hole R9 closes: the wall-clock read
below taints ``jitter_seed``, and any in-scope caller is reported at its
call site with the witness chain (see ``repro/network/leaky_metrics.py``).
"""

import time


def jitter_seed() -> float:
    return time.time()
