"""Measurement machinery: latency, throughput, utilization profiles.

These collectors implement the paper's metrics (Section 4.2): packet
latency from first-flit creation (source queueing included) to last-flit
ejection; throughput as accepted packets per cycle; the 2x-zero-load
saturation rule; and the LU/BU/BA window profiles of Figures 3-5.
"""

from .histogram import Histogram
from .latency import LatencyCollector, LatencyStats
from .levels import LevelOccupancyCollector, channel_level_map
from .throughput import saturation_point, saturation_throughput
from .timeseries import WindowedSeries
from .utilization import UtilizationProbe

__all__ = [
    "Histogram",
    "LatencyCollector",
    "LatencyStats",
    "LevelOccupancyCollector",
    "channel_level_map",
    "saturation_point",
    "saturation_throughput",
    "WindowedSeries",
    "UtilizationProbe",
]
