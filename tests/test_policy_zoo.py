"""Unit tests for the competitor policies (error correction, shutdown, oracle)."""

import pytest

from repro.core.levels import PAPER_TABLE
from repro.core.policy import DVSAction, PolicyInputs
from repro.core.policy_zoo import (
    ErrorCorrectionPolicy,
    LinkShutdownPolicy,
    OraclePolicy,
)
from repro.errors import ConfigError


def inputs(
    lu=0.0,
    bu=0.0,
    level=9,
    max_level=9,
    cycle=0,
    asleep=False,
    sleep_demand=False,
):
    return PolicyInputs(
        link_utilization=lu,
        buffer_utilization=bu,
        level=level,
        max_level=max_level,
        cycle=cycle,
        asleep=asleep,
        sleep_demand=sleep_demand,
    )


class TestErrorCorrectionPolicy:
    def test_ctor_validation(self):
        with pytest.raises(ConfigError):
            ErrorCorrectionPolicy(error_rate=1.5)
        with pytest.raises(ConfigError):
            ErrorCorrectionPolicy(error_growth=0.5)
        with pytest.raises(ConfigError):
            ErrorCorrectionPolicy(probe_windows=0)
        with pytest.raises(ConfigError):
            ErrorCorrectionPolicy(replay_flits=0)

    def test_no_errors_at_top_level(self):
        policy = ErrorCorrectionPolicy(error_rate=1.0, probe_windows=1)
        # Full margin: the error model cannot fire, only probe downward.
        action = policy.decide(inputs(lu=1.0, level=9))
        assert action is DVSAction.STEP_DOWN
        assert policy.errors_observed == 0

    def test_probes_down_after_clean_probation(self):
        policy = ErrorCorrectionPolicy(error_rate=0.0, probe_windows=3)
        actions = [policy.decide(inputs(lu=0.5, level=5)) for _ in range(3)]
        assert actions == [DVSAction.HOLD, DVSAction.HOLD, DVSAction.STEP_DOWN]

    def test_never_probes_below_level_zero(self):
        policy = ErrorCorrectionPolicy(error_rate=0.0, probe_windows=1)
        assert policy.decide(inputs(lu=0.5, level=0)) is DVSAction.HOLD

    def test_error_fires_replay_and_backoff(self):
        # error_rate 1.0 with undervolt margin and LU 1.0 => p = 1.0.
        policy = ErrorCorrectionPolicy(
            error_rate=1.0, probe_windows=1, backoff_windows=2, replay_flits=5
        )
        assert policy.decide(inputs(lu=1.0, level=5)) is DVSAction.STEP_UP
        assert policy.errors_observed == 1
        assert policy.consume_replay_flits() == 5
        assert policy.consume_replay_flits() == 0  # drained
        # Backoff: hold for two windows (error-free at full margin).
        assert policy.decide(inputs(lu=0.0, level=6)) is DVSAction.HOLD
        assert policy.decide(inputs(lu=0.0, level=6)) is DVSAction.HOLD
        assert policy.decide(inputs(lu=0.0, level=6)) is DVSAction.STEP_DOWN

    def test_idle_link_never_errors(self):
        policy = ErrorCorrectionPolicy(error_rate=1.0, probe_windows=1)
        # LU 0: no flits crossed the wire, nothing to corrupt.
        assert policy.decide(inputs(lu=0.0, level=3)) is DVSAction.STEP_DOWN
        assert policy.errors_observed == 0

    def test_deterministic_under_fixed_seed(self):
        def trace(policy):
            out = []
            for i in range(200):
                out.append(policy.decide(inputs(lu=0.8, level=4, cycle=i)))
            return out

        a = ErrorCorrectionPolicy(error_rate=0.2, seed=7)
        b = ErrorCorrectionPolicy(error_rate=0.2, seed=7)
        assert trace(a) == trace(b)

    def test_channel_index_decorrelates_streams(self):
        # One level of undervolt, p ~ 0.9 * 0.1 * 4 = 0.36 per window:
        # decisions genuinely depend on the draw (p=1 would saturate).
        a = ErrorCorrectionPolicy(error_rate=0.1, seed=7, channel_index=0)
        b = ErrorCorrectionPolicy(error_rate=0.1, seed=7, channel_index=1)
        trace_a = [a.decide(inputs(lu=0.9, level=8)) for _ in range(100)]
        trace_b = [b.decide(inputs(lu=0.9, level=8)) for _ in range(100)]
        assert trace_a != trace_b

    def test_reset_replays_identical_decisions(self):
        policy = ErrorCorrectionPolicy(error_rate=0.3, seed=3)
        first = [policy.decide(inputs(lu=0.8, level=4)) for _ in range(50)]
        policy.reset()
        assert policy.errors_observed == 0
        second = [policy.decide(inputs(lu=0.8, level=4)) for _ in range(50)]
        assert first == second


class TestLinkShutdownPolicy:
    def test_ctor_validation(self):
        with pytest.raises(ConfigError):
            LinkShutdownPolicy(sleep_lu=1.5)
        with pytest.raises(ConfigError):
            LinkShutdownPolicy(sleep_patience=0)
        with pytest.raises(ConfigError):
            LinkShutdownPolicy(max_sleep_windows=-1)

    def test_sleeps_after_patience_idle_windows_at_level_zero(self):
        policy = LinkShutdownPolicy(sleep_lu=0.05, sleep_patience=3)
        actions = [policy.decide(inputs(lu=0.0, level=0)) for _ in range(3)]
        assert actions[:2] == [DVSAction.STEP_DOWN, DVSAction.STEP_DOWN]
        assert actions[2] is DVSAction.SLEEP

    def test_no_sleep_above_level_zero(self):
        policy = LinkShutdownPolicy(sleep_lu=0.05, sleep_patience=1)
        assert policy.decide(inputs(lu=0.0, level=1)) is DVSAction.STEP_DOWN

    def test_busy_window_resets_patience(self):
        policy = LinkShutdownPolicy(sleep_lu=0.05, sleep_patience=2)
        policy.decide(inputs(lu=0.0, level=0))
        policy.decide(inputs(lu=0.9, level=0))  # traffic: counter resets
        assert policy.decide(inputs(lu=0.0, level=0)) is not DVSAction.SLEEP

    def test_holds_while_asleep_without_demand(self):
        policy = LinkShutdownPolicy()
        assert policy.decide(inputs(asleep=True)) is DVSAction.HOLD

    def test_wakes_on_demand(self):
        policy = LinkShutdownPolicy()
        action = policy.decide(inputs(asleep=True, sleep_demand=True))
        assert action is DVSAction.WAKE

    def test_wakes_at_sleep_cap(self):
        policy = LinkShutdownPolicy(max_sleep_windows=3)
        naps = [policy.decide(inputs(asleep=True)) for _ in range(3)]
        assert naps == [DVSAction.HOLD, DVSAction.HOLD, DVSAction.WAKE]

    def test_ewma_frozen_during_sleep(self):
        policy = LinkShutdownPolicy(sleep_lu=0.05, sleep_patience=1)
        policy.decide(inputs(lu=0.0, level=0))  # SLEEP; EWMA saw only 0
        before = policy.predicted_link_utilization
        policy.decide(inputs(asleep=True))
        assert policy.predicted_link_utilization == before

    def test_awake_path_matches_history_thresholds(self):
        policy = LinkShutdownPolicy()
        # High LU at a mid level: prediction jumps above T_high.
        assert policy.decide(inputs(lu=1.0, level=5)) is DVSAction.STEP_UP

    def test_reset_clears_counters(self):
        policy = LinkShutdownPolicy(sleep_lu=0.05, sleep_patience=2)
        policy.decide(inputs(lu=0.0, level=0))
        policy.reset()
        # After reset the patience counter starts over.
        assert policy.decide(inputs(lu=0.0, level=0)) is not DVSAction.SLEEP


class TestOraclePolicy:
    def test_ctor_validation(self):
        with pytest.raises(ConfigError):
            OraclePolicy(PAPER_TABLE, headroom=0.0)
        with pytest.raises(ConfigError):
            OraclePolicy(PAPER_TABLE, headroom=1.2)

    def test_idle_targets_bottom_level(self):
        policy = OraclePolicy(PAPER_TABLE)
        assert policy.target_level(inputs(lu=0.0, level=9)) == 0

    def test_saturated_targets_top_level(self):
        policy = OraclePolicy(PAPER_TABLE)
        assert policy.target_level(inputs(lu=1.0, level=9)) == 9

    def test_target_math_with_headroom(self):
        policy = OraclePolicy(PAPER_TABLE, headroom=0.9)
        # Demand = LU * f(level); target is the cheapest level whose
        # bandwidth*0.9 covers it.
        demand_inputs = inputs(lu=0.5, level=9)
        demand = 0.5 * PAPER_TABLE.frequency(9)
        target = policy.target_level(demand_inputs)
        assert PAPER_TABLE.frequency(target) * 0.9 >= demand
        assert (
            target == 0
            or PAPER_TABLE.frequency(target - 1) * 0.9 < demand
        )

    def test_steps_one_level_per_window(self):
        policy = OraclePolicy(PAPER_TABLE)
        assert policy.decide(inputs(lu=0.0, level=9)) is DVSAction.STEP_DOWN
        assert policy.decide(inputs(lu=1.0, level=0)) is DVSAction.STEP_UP

    def test_holds_at_target(self):
        policy = OraclePolicy(PAPER_TABLE)
        assert policy.decide(inputs(lu=0.0, level=0)) is DVSAction.HOLD

    def test_pure_and_stateless(self):
        policy = OraclePolicy(PAPER_TABLE)
        same = inputs(lu=0.4, level=5)
        assert policy.decide(same) is policy.decide(same)
        policy.reset()  # no state to clear; must not raise
