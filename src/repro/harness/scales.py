"""Experiment scale presets.

The paper simulates 10M cycles per point with 10 us voltage ramps and 1 ms
task sessions — a hierarchy of timescales (history window 200 << transition
~10k << task 1M << horizon 10M) that a pure-Python simulator cannot afford
per sweep point. A scale preset shrinks the three long timescales by a
common factor so the *control dynamics* (how many windows per transition,
transitions per task, tasks per run) stay paper-like:

* ``PAPER_SCALE`` — the paper's own numbers; use for one-off validation
  runs (minutes per point).
* ``DEFAULT_SCALE`` — 10x shrink: 1 us ramps, 10-link-cycle locks, 100 us
  tasks, 100k-cycle points. The benchmark suite default.
* ``SMOKE_SCALE`` — 50x shrink on a small mesh for tests and quick looks.

EXPERIMENTS.md discusses which observables are scale-sensitive.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from ..config import (
    DVSControlConfig,
    LinkConfig,
    NetworkConfig,
    SimulationConfig,
    WorkloadConfig,
)
from ..errors import ExperimentError


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """A coherent set of shrunk timescales plus sweep sizing."""

    name: str
    radix: int
    warmup_cycles: int
    measure_cycles: int
    voltage_transition_s: float
    frequency_transition_link_cycles: int
    average_task_duration_s: float
    onoff_sources_per_task: int
    sweep_rates: tuple[float, ...]

    def network(self, **overrides: object) -> NetworkConfig:
        return NetworkConfig(radix=self.radix, dimensions=2, **overrides)

    def link(self, **overrides: object) -> LinkConfig:
        params = dict(
            voltage_transition_s=self.voltage_transition_s,
            frequency_transition_link_cycles=self.frequency_transition_link_cycles,
        )
        params.update(overrides)
        return LinkConfig(**params)

    def workload(self, injection_rate: float, **overrides: object) -> WorkloadConfig:
        params = dict(
            kind="two_level",
            injection_rate=injection_rate,
            average_tasks=100,
            average_task_duration_s=self.average_task_duration_s,
            onoff_sources_per_task=self.onoff_sources_per_task,
            seed=1,
        )
        params.update(overrides)
        return WorkloadConfig(**params)

    def simulation(
        self,
        injection_rate: float,
        *,
        policy: str = "history",
        dvs: DVSControlConfig | None = None,
        workload_overrides: dict | None = None,
        network_overrides: dict | None = None,
        link_overrides: dict | None = None,
    ) -> SimulationConfig:
        """A full simulation config at this scale."""
        if dvs is None:
            dvs = DVSControlConfig(policy=policy)
        return SimulationConfig(
            network=self.network(**(network_overrides or {})),
            link=self.link(**(link_overrides or {})),
            dvs=dvs,
            workload=self.workload(injection_rate, **(workload_overrides or {})),
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
        )

    def shrink(self, factor: float) -> "ExperimentScale":
        """A further-shrunk copy (for extra-cheap variants of one figure)."""
        if factor <= 0.0 or factor > 1.0:
            raise ExperimentError("shrink factor must be in (0, 1]")
        return replace(
            self,
            warmup_cycles=max(1000, int(self.warmup_cycles * factor)),
            measure_cycles=max(2000, int(self.measure_cycles * factor)),
        )


PAPER_SCALE = ExperimentScale(
    name="paper",
    radix=8,
    warmup_cycles=200_000,
    measure_cycles=800_000,
    voltage_transition_s=10.0e-6,
    frequency_transition_link_cycles=100,
    average_task_duration_s=1.0e-3,
    onoff_sources_per_task=128,
    sweep_rates=(0.2, 0.5, 0.8, 1.1, 1.4, 1.7, 2.0),
)

DEFAULT_SCALE = ExperimentScale(
    name="default",
    radix=8,
    warmup_cycles=10_000,
    measure_cycles=30_000,
    voltage_transition_s=1.0e-6,
    frequency_transition_link_cycles=10,
    average_task_duration_s=100.0e-6,
    onoff_sources_per_task=64,
    sweep_rates=(0.3, 0.7, 1.1, 1.5, 1.9),
)

SMOKE_SCALE = ExperimentScale(
    name="smoke",
    radix=4,
    warmup_cycles=2_000,
    measure_cycles=6_000,
    voltage_transition_s=0.2e-6,
    frequency_transition_link_cycles=4,
    average_task_duration_s=20.0e-6,
    onoff_sources_per_task=16,
    sweep_rates=(0.2, 0.6, 1.0),
)

_SCALES = {scale.name: scale for scale in (PAPER_SCALE, DEFAULT_SCALE, SMOKE_SCALE)}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Look up a scale preset by name.

    With no argument, honors the ``REPRO_SCALE`` environment variable and
    falls back to ``default`` — so ``REPRO_SCALE=paper pytest benchmarks/``
    reruns the whole suite at paper fidelity.
    """
    if name is None:
        name = os.environ.get("REPRO_SCALE", "default")
    try:
        return _SCALES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None
