"""Tests for the VF table (repro.core.levels)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.levels import PAPER_TABLE, VFOperatingPoint, VFTable
from repro.errors import ConfigError


class TestVFOperatingPoint:
    def test_valid(self):
        point = VFOperatingPoint(1.0e9, 2.5)
        assert point.frequency_hz == 1.0e9
        assert point.voltage_v == 2.5

    @pytest.mark.parametrize("freq,volt", [(0.0, 1.0), (-1.0, 1.0), (1e9, 0.0), (1e9, -0.5)])
    def test_invalid(self, freq, volt):
        with pytest.raises(ConfigError):
            VFOperatingPoint(freq, volt)


class TestPaperTable:
    def test_ten_levels(self):
        assert len(PAPER_TABLE) == 10

    def test_endpoints(self):
        assert PAPER_TABLE.frequency(0) == pytest.approx(125.0e6)
        assert PAPER_TABLE.voltage(0) == pytest.approx(0.9)
        assert PAPER_TABLE.frequency(9) == pytest.approx(1.0e9)
        assert PAPER_TABLE.voltage(9) == pytest.approx(2.5)

    def test_frequencies_strictly_increasing(self):
        freqs = [p.frequency_hz for p in PAPER_TABLE]
        assert freqs == sorted(freqs)
        assert len(set(freqs)) == len(freqs)

    def test_voltages_non_decreasing(self):
        volts = [p.voltage_v for p in PAPER_TABLE]
        assert volts == sorted(volts)

    def test_max_level(self):
        assert PAPER_TABLE.max_level == 9

    def test_serialization_ratio_endpoints(self):
        # 1 router cycle per flit at the top, 8 at the bottom (paper 4.2).
        assert PAPER_TABLE.serialization_ratio(9, 1.0e9) == pytest.approx(1.0)
        assert PAPER_TABLE.serialization_ratio(0, 1.0e9) == pytest.approx(8.0)

    def test_clamp(self):
        assert PAPER_TABLE.clamp(-3) == 0
        assert PAPER_TABLE.clamp(42) == 9
        assert PAPER_TABLE.clamp(5) == 5

    def test_indexing_out_of_range(self):
        with pytest.raises(ConfigError):
            PAPER_TABLE[10]
        with pytest.raises(ConfigError):
            PAPER_TABLE[-1]

    def test_level_for_frequency(self):
        assert PAPER_TABLE.level_for_frequency(125.0e6) == 0
        assert PAPER_TABLE.level_for_frequency(1.0e9) == 9
        assert PAPER_TABLE.level_for_frequency(500.0e6) in (3, 4)
        assert PAPER_TABLE.level_for_frequency(99.0e9) == 9

    def test_describe_mentions_all_levels(self):
        text = PAPER_TABLE.describe()
        assert "125.0" in text and "1000.0" in text
        assert len(text.splitlines()) == 11  # header + 10 levels


class TestVFTableValidation:
    def test_needs_two_levels(self):
        with pytest.raises(ConfigError):
            VFTable([VFOperatingPoint(1e9, 2.5)])

    def test_rejects_non_increasing_frequency(self):
        with pytest.raises(ConfigError, match="strictly increasing"):
            VFTable([VFOperatingPoint(1e9, 1.0), VFOperatingPoint(1e9, 2.0)])

    def test_rejects_decreasing_voltage(self):
        with pytest.raises(ConfigError, match="non-decreasing"):
            VFTable([VFOperatingPoint(1e8, 2.0), VFOperatingPoint(2e8, 1.0)])

    def test_from_endpoints_validation(self):
        with pytest.raises(ConfigError):
            VFTable.from_endpoints(levels=1)
        with pytest.raises(ConfigError):
            VFTable.from_endpoints(min_frequency_hz=2e9, max_frequency_hz=1e9)
        with pytest.raises(ConfigError):
            VFTable.from_endpoints(min_voltage_v=3.0, max_voltage_v=2.5)

    @given(levels=st.integers(min_value=2, max_value=32))
    def test_from_endpoints_level_count(self, levels):
        table = VFTable.from_endpoints(levels=levels)
        assert len(table) == levels
        assert table.frequency(0) == pytest.approx(125.0e6)
        assert table.frequency(table.max_level) == pytest.approx(1.0e9)

    @given(
        levels=st.integers(min_value=2, max_value=16),
        level_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_voltage_tracks_frequency_linearly(self, levels, level_frac):
        table = VFTable.from_endpoints(levels=levels)
        level = min(levels - 1, int(level_frac * levels))
        point = table[level]
        expected_voltage = 0.9 + (point.frequency_hz - 125.0e6) / 875.0e6 * 1.6
        assert point.voltage_v == pytest.approx(expected_voltage)
