"""Retry policies, per-point failure records, and the failure report."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ExperimentError, SweepExecutionError
from repro.harness.resilience import (
    DEFAULT_RETRY_POLICY,
    FailureReport,
    PointFailure,
    RetryPolicy,
    run_chunk,
    run_point,
)

from .conftest import small_config


def _config(rate: float = 0.2):
    return small_config(rate=rate, warmup=100, measure=300)


class _FlakyRunner:
    """Raises for the first *failures* calls, then returns a sentinel."""

    def __init__(self, failures: int, result: str = "ok"):
        self.failures = failures
        self.result = result
        self.calls = 0

    def __call__(self, config):
        self.calls += 1
        if self.calls <= self.failures:
            raise ValueError(f"flaky failure #{self.calls}")
        return self.result


class TestRetryPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.5},
            {"timeout_s": 0.0},
            {"timeout_s": -1.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ExperimentError):
            RetryPolicy(**kwargs)

    def test_retry_number_is_one_based(self):
        with pytest.raises(ExperimentError):
            DEFAULT_RETRY_POLICY.delay_s("abc", 0)


class TestBackoffDeterminism:
    def test_no_jitter_is_pure_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff_base_s=0.1, jitter=0.0)
        assert policy.delay_s("fp", 1) == pytest.approx(0.1)
        assert policy.delay_s("fp", 2) == pytest.approx(0.2)
        assert policy.delay_s("fp", 3) == pytest.approx(0.4)

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(backoff_base_s=1.0, jitter=0.5, jitter_seed=7)
        first = policy.delay_s("fingerprint-a", 1)
        assert first == policy.delay_s("fingerprint-a", 1)
        assert 0.5 <= first <= 1.0
        # Different points decorrelate; different seeds re-roll.
        assert first != policy.delay_s("fingerprint-b", 1)
        reseeded = RetryPolicy(backoff_base_s=1.0, jitter=0.5, jitter_seed=8)
        assert first != reseeded.delay_s("fingerprint-a", 1)


class TestRunPoint:
    def test_clean_first_attempt(self):
        runner = _FlakyRunner(failures=0)
        result, failure = run_point(_config(), runner=runner, sleep=lambda s: None)
        assert result == "ok"
        assert failure is None
        assert runner.calls == 1

    def test_retry_recovers_and_reports_an_incident(self):
        runner = _FlakyRunner(failures=1)
        delays: list[float] = []
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.25)
        result, incident = run_point(
            _config(), policy, runner=runner, sleep=delays.append
        )
        assert result == "ok"
        assert runner.calls == 2
        assert incident is not None
        assert incident.recovered
        assert incident.attempts == 2
        assert incident.outcome == "raised"
        assert "flaky failure #1" in incident.error
        fingerprint = _config().fingerprint()
        assert delays == [policy.delay_s(fingerprint, 1)]

    def test_exhausted_retries_return_a_failure(self):
        runner = _FlakyRunner(failures=10)
        result, failure = run_point(
            _config(),
            RetryPolicy(max_attempts=3, backoff_base_s=0.0),
            runner=runner,
            sleep=lambda s: None,
        )
        assert result is None
        assert runner.calls == 3
        assert not failure.recovered
        assert failure.attempts == 3
        assert failure.fingerprint == _config().fingerprint()
        assert "ValueError" in failure.error

    @pytest.mark.parametrize("interrupt", [KeyboardInterrupt, SystemExit])
    def test_interrupts_are_never_retried(self, interrupt):
        calls = []

        def runner(config):
            calls.append(config)
            raise interrupt()

        with pytest.raises(interrupt):
            run_point(_config(), runner=runner, sleep=lambda s: None)
        assert len(calls) == 1

    def test_timeout_trips_and_is_reported(self):
        def stall(config):
            time.sleep(5.0)
            return "too late"

        result, failure = run_point(
            _config(),
            RetryPolicy(max_attempts=1, timeout_s=0.05),
            runner=stall,
            sleep=lambda s: None,
        )
        assert result is None
        assert failure.outcome == "timeout"
        assert "0.05" in failure.error

    def test_timeout_retry_can_recover(self):
        calls = []

        def slow_once(config):
            calls.append(config)
            if len(calls) == 1:
                time.sleep(5.0)
            return "recovered"

        result, incident = run_point(
            _config(),
            RetryPolicy(max_attempts=2, backoff_base_s=0.0, timeout_s=0.05),
            runner=slow_once,
            sleep=lambda s: None,
        )
        assert result == "recovered"
        assert incident.recovered
        assert incident.outcome == "timeout"

    def test_run_chunk_is_per_point(self):
        configs = [_config(0.2), _config(0.3)]
        policy = RetryPolicy(max_attempts=1, backoff_base_s=0.0)
        outcomes = run_chunk(configs, policy)
        assert len(outcomes) == 2
        for result, failure in outcomes:
            # Real simulations: both points run clean.
            assert failure is None
            assert result is not None


class TestFailureReport:
    def _failure(self, **overrides):
        values = dict(
            fingerprint="f" * 64, outcome="raised", attempts=2,
            error="ValueError('x')",
        )
        values.update(overrides)
        return PointFailure(**values)

    def test_record_routes_by_recovered_flag(self):
        report = FailureReport()
        report.record(self._failure())
        report.record(self._failure(recovered=True))
        assert len(report.failures) == 1
        assert len(report.incidents) == 1
        assert not report.ok

    def test_ok_with_only_incidents(self):
        report = FailureReport()
        report.record(self._failure(recovered=True))
        assert report.ok
        report.raise_if_failures()  # must not raise

    def test_merge_combines_both_lists(self):
        left, right = FailureReport(), FailureReport()
        left.record(self._failure())
        right.record(self._failure(recovered=True))
        right.record(self._failure(outcome="timeout"))
        left.merge(right)
        assert len(left.failures) == 2
        assert len(left.incidents) == 1

    def test_raise_if_failures_is_structured(self):
        report = FailureReport()
        report.record(self._failure(points=3, outcome="worker-crash"))
        with pytest.raises(SweepExecutionError) as excinfo:
            report.raise_if_failures(total=10)
        assert "3 of 10" in str(excinfo.value)
        assert excinfo.value.failures == tuple(report.failures)

    def test_describe_lists_failures_and_incidents(self):
        import hashlib

        report = FailureReport()
        assert report.describe() == ""
        report.record(self._failure())
        report.record(self._failure(recovered=True, outcome="timeout"))
        text = report.describe()
        assert "1 point(s) failed" in text
        assert "1 incident(s) recovered" in text
        short = hashlib.sha256(("f" * 64).encode()).hexdigest()[:12]
        assert short in text

    def test_point_failure_describe(self):
        lost = self._failure(points=4, outcome="worker-crash")
        assert "4 points" in lost.describe()
        assert "failed (worker-crash)" in lost.describe()
        saved = self._failure(recovered=True)
        assert "recovered" in saved.describe()


class TestFailureReportMergeEdgeCases:
    """Merge semantics the distributed coordinator leans on: per-shard
    reports concatenate without deduplication or reordering."""

    def _failure(self, fingerprint: str, **overrides) -> PointFailure:
        values = dict(
            fingerprint=fingerprint, outcome="raised", attempts=1,
            error="ValueError('x')",
        )
        values.update(overrides)
        return PointFailure(**values)

    def test_merging_an_empty_report_is_identity_both_ways(self):
        report = FailureReport()
        report.record(self._failure("a" * 64))
        report.record(self._failure("b" * 64, recovered=True))
        before = (list(report.failures), list(report.incidents))
        report.merge(FailureReport())
        assert (report.failures, report.incidents) == before

        fresh = FailureReport()
        fresh.merge(report)
        assert (fresh.failures, fresh.incidents) == before
        assert FailureReport().ok  # and two empties merge to an empty
        empty = FailureReport()
        empty.merge(FailureReport())
        assert not empty.failures and not empty.incidents

    def test_overlapping_fingerprints_keep_every_record(self):
        """The same point can fail in two shards (a stolen chunk whose
        original and thief both died): merge must not collapse them —
        each record carries its own outcome and attempt count."""
        fingerprint = "f" * 64
        left, right = FailureReport(), FailureReport()
        left.record(self._failure(fingerprint, outcome="timeout"))
        right.record(self._failure(fingerprint, outcome="raised", attempts=2))
        right.record(self._failure(fingerprint, recovered=True,
                                   outcome="host-lost"))
        left.merge(right)
        assert len(left.failures) == 2
        assert {f.outcome for f in left.failures} == {"timeout", "raised"}
        assert all(f.fingerprint == fingerprint for f in left.failures)
        assert len(left.incidents) == 1
        assert not left.ok

    def test_merge_preserves_incident_ordering(self):
        """Receiver's records stay first, source's follow in their own
        order — so a campaign-level report reads chronologically."""
        left, right = FailureReport(), FailureReport()
        left.record(self._failure("a" * 64, recovered=True))
        left.record(self._failure("b" * 64, recovered=True))
        right.record(self._failure("c" * 64, recovered=True))
        right.record(self._failure("d" * 64, recovered=True))
        left.merge(right)
        assert [i.fingerprint[0] for i in left.incidents] == ["a", "b", "c", "d"]
        # A second merge appends again; merge is not idempotent by design.
        left.merge(right)
        assert [i.fingerprint[0] for i in left.incidents] == [
            "a", "b", "c", "d", "c", "d",
        ]


def _in_thread(fn):
    """Run *fn* on a fresh non-main thread, re-raising what it raised."""
    box: dict = {}

    def target():
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    thread = threading.Thread(target=target)
    thread.start()
    thread.join(timeout=30)
    assert not thread.is_alive()
    if "error" in box:
        raise box["error"]
    return box["value"]


class TestOffMainThreadTimeout:
    """timeout_s away from the main thread: SIGALRM cannot be armed
    there, so the watchdog fallback must enforce the deadline instead
    (distributed workers run chunks inside an asyncio executor thread)."""

    def test_timeout_trips_in_a_worker_thread(self):
        def stall(config):
            time.sleep(5.0)
            return "too late"

        result, failure = _in_thread(
            lambda: run_point(
                _config(),
                RetryPolicy(max_attempts=1, timeout_s=0.05),
                runner=stall,
                sleep=lambda s: None,
            )
        )
        assert result is None
        assert failure.outcome == "timeout"
        assert "0.05" in failure.error

    def test_timeout_retry_recovers_in_a_worker_thread(self):
        calls: list = []

        def slow_once(config):
            calls.append(config)
            if len(calls) == 1:
                time.sleep(5.0)
            return "recovered"

        result, incident = _in_thread(
            lambda: run_point(
                _config(),
                RetryPolicy(max_attempts=2, backoff_base_s=0.0, timeout_s=0.05),
                runner=slow_once,
                sleep=lambda s: None,
            )
        )
        assert result == "recovered"
        assert incident.recovered and incident.outcome == "timeout"

    def test_fast_point_is_not_interrupted_and_watchdog_disarms(self):
        def quick(config):
            return "done"

        result, failure = _in_thread(
            lambda: run_point(
                _config(),
                RetryPolicy(max_attempts=1, timeout_s=5.0),
                runner=quick,
                sleep=lambda s: None,
            )
        )
        assert (result, failure) == ("done", None)
        # The watchdog timer was cancelled: nothing fires later.
        time.sleep(0.05)

    def test_missing_watchdog_support_fails_loudly(self, monkeypatch):
        """No SIGALRM (off-main) and no async-exception machinery: the
        deadline refuses to run unprotected instead of silently
        dropping timeout enforcement."""
        from repro.errors import ConfigError
        from repro.harness import resilience

        monkeypatch.setattr(resilience, "_HAS_ASYNC_EXC", False)

        def protected():
            with resilience._deadline(0.1):
                return "ran"

        with pytest.raises(ConfigError, match="cannot be enforced"):
            _in_thread(protected)
