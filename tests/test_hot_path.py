"""White-box tests for the saturated hot path's scheduling structures.

Covers the calendar-queue ring/spill split, event-record and flit pool
recycling, the ``legacy_scan`` A/B toggle's state resynchronization, and
the routers' direct (fast-queue) binding to the kernel's calendar ring.
The bit-identity companion tests live in ``test_fast_forward.py``; here
the assertions are structural — the right events in the right container,
the same objects reused rather than reallocated, and exact bookkeeping
equality between the modern kernel and a run that detoured through the
legacy shape.
"""

from __future__ import annotations

import math

from repro.network.router import EVENT_ARRIVAL, EVENT_CREDIT, EVENT_PHASE
from repro.network.simulator import Simulator

from .conftest import small_config


def _credit_target(engine):
    """A valid (node, out_port, credits) triple for hand-built events."""
    spec = engine.channels[0].spec
    credits = engine.routers[spec.src_node].credit_states[spec.src_port].credits
    return spec.src_node, spec.src_port, credits


class TestCalendarQueue:
    def test_near_events_ride_the_ring_far_events_spill(self):
        simulator = Simulator(small_config(rate=0.0))
        mask = simulator._ring_mask
        node, port, credits = _credit_target(simulator)
        near = simulator.now + 3
        far = simulator.now + mask + 10
        simulator.schedule(near, [EVENT_CREDIT, node, port, 0, None])
        simulator.schedule(far, [EVENT_CREDIT, node, port, 0, None])
        assert len(simulator._ring[near & mask]) == 1
        assert simulator._ring_count == 1
        assert list(simulator._spill) == [far]
        assert simulator._spill_min == far
        assert simulator._pending_transport == 2

        before = credits[0]
        simulator.run_until(near)
        assert credits[0] == before  # dispatches *during* step(near)
        simulator.run_until(near + 1)
        assert credits[0] == before + 1
        assert simulator._ring_count == 0
        simulator.run_until(far + 1)
        assert credits[0] == before + 2
        assert simulator._spill == {}
        assert simulator._spill_min == math.inf
        assert simulator._pending_transport == 0
        # Both events sat inside otherwise dead air; the horizon saw them.
        assert simulator.idle_cycles_skipped > 0

    def test_spill_min_retracks_to_the_next_bucket(self):
        simulator = Simulator(small_config(rate=0.0))
        mask = simulator._ring_mask
        node, port, _ = _credit_target(simulator)
        far1 = simulator.now + mask + 5
        far2 = simulator.now + 4 * (mask + 1)
        simulator.schedule(far2, [EVENT_CREDIT, node, port, 0, None])
        simulator.schedule(far1, [EVENT_CREDIT, node, port, 1, None])
        assert simulator._spill_min == far1
        simulator.run_until(far1 + 1)
        assert simulator._spill_min == far2
        simulator.run_until(far2 + 1)
        assert simulator._spill_min == math.inf

    def test_transport_never_touches_the_spill(self):
        """The ring's near horizon covers pipeline latency + worst-case
        serialization + credit delay, so under live traffic only far-future
        DVS phase boundaries may spill — ARRIVAL/CREDIT events never do."""
        config = small_config(policy="history", rate=0.9, measure=1_200)
        simulator = Simulator(config)
        saw_spill = 0
        for target in (100, 300, 700, 1_100):
            simulator.run_until(target)
            for cycle in sorted(simulator._spill):
                for event in simulator._spill[cycle]:
                    saw_spill += 1
                    assert event[0] == EVENT_PHASE
            assert simulator._ring_count == sum(
                len(bucket) for bucket in simulator._ring
            )
        assert saw_spill > 0  # DVS transitions actually spilled


class TestPoolRecycling:
    def test_event_records_are_recycled_into_new_schedules(self):
        simulator = Simulator(small_config(rate=0.8), fast_forward=False)
        simulator.run_until(400)
        while not simulator._event_pool:
            simulator.step()
        pool_ids = {id(record) for record in simulator._event_pool}
        simulator.run_until(simulator.now + 100)
        live_ids = {id(event) for _, event in simulator.iter_scheduled_events()}
        # Records freed by dispatch came back as newly scheduled events.
        assert pool_ids & live_ids

    def test_flits_are_recycled_through_the_pool(self):
        simulator = Simulator(small_config(rate=0.8), fast_forward=False)
        simulator.run_until(400)
        while not simulator._flit_pool:
            simulator.step()
        released = {id(flit) for flit in simulator._flit_pool}
        simulator.run_until(simulator.now + 100)
        buffered = {
            id(flit)
            for router in simulator.routers
            for _, _, vcstate in router.iter_vc_states()
            for flit in vcstate.flits
        }
        in_flight = {
            id(event[4])
            for _, event in simulator.iter_scheduled_events()
            if event[0] == EVENT_ARRIVAL
        }
        # Flits released at ejection re-entered the network at injection.
        assert released & (buffered | in_flight)


class TestLegacyScanToggle:
    def test_toggle_unbinds_pools_and_fast_queue_then_rebinds(self):
        simulator = Simulator(small_config(rate=0.5), fast_forward=False)
        simulator.run_until(300)
        simulator.legacy_scan = True
        for router in simulator.routers:
            assert router.event_pool is None
            assert router.flit_pool is None
            assert router._fast_ring is None
        # Legacy scheduling bypasses the ring: one bucket per cycle in the
        # spill dict, exactly the old bucket map.
        node, port, _ = _credit_target(simulator)
        target = simulator.now + 2
        slot_before = len(simulator._ring[target & simulator._ring_mask])
        simulator.schedule(target, (EVENT_CREDIT, node, port, 0, False))
        assert len(simulator._ring[target & simulator._ring_mask]) == slot_before
        assert target in simulator._spill

        simulator.legacy_scan = False
        for router in simulator.routers:
            assert router.event_pool is simulator._event_pool
            assert router.flit_pool is simulator._flit_pool
            assert router._fast_ring is simulator._ring
            assert router._fast_counters is simulator._counters
        # Tuple records scheduled while legacy converted to 5-slot lists.
        for _, event in simulator.iter_scheduled_events():
            assert type(event) is list
            assert len(event) == 5

    def test_toggle_resyncs_the_occupied_vc_list(self):
        simulator = Simulator(small_config(rate=0.6), fast_forward=False)
        simulator.legacy_scan = True
        simulator.run_until(400)
        simulator.legacy_scan = False
        busy = 0
        for router in simulator.routers:
            expected = sorted(
                vcstate.rid
                for _, _, vcstate in router.iter_vc_states()
                if vcstate.flits
            )
            assert router._occ_list == expected
            busy += len(expected)
            for _, _, vcstate in router.iter_vc_states():
                assert vcstate.in_occ == bool(vcstate.flits)
        assert busy > 0  # the run left flits buffered, so the resync did work

    def test_midrun_toggle_matches_a_pure_modern_run(self):
        """Run the first half under the legacy kernel shape, toggle back,
        finish under the modern one — every kernel-observable counter must
        equal a run that never left the modern shape."""
        config = small_config(policy="history", rate=0.4, measure=1_500)
        toggled = Simulator(config, fast_forward=False)
        toggled.legacy_scan = True
        toggled.run_until(700)
        toggled.legacy_scan = False
        toggled.run_until(1_400)
        pure = Simulator(config, fast_forward=False)
        pure.run_until(1_400)
        assert [r.flits_launched for r in toggled.routers] == [
            r.flits_launched for r in pure.routers
        ]
        assert [r.packets_ejected for r in toggled.routers] == [
            r.packets_ejected for r in pure.routers
        ]
        assert toggled._active_list == pure._active_list
        assert toggled._pending_transport == pure._pending_transport
        assert toggled.pending_source_packets() == pure.pending_source_packets()
        assert sorted(
            (cycle, event[0]) for cycle, event in toggled.iter_scheduled_events()
        ) == sorted(
            (cycle, event[0]) for cycle, event in pure.iter_scheduled_events()
        )
        for toggled_router, pure_router in zip(toggled.routers, pure.routers, strict=False):
            assert toggled_router._occ_list == pure_router._occ_list


class TestFastQueueBinding:
    def test_routers_share_the_kernels_ring_and_counters(self):
        simulator = Simulator(small_config(rate=0.3))
        for router in simulator.routers:
            assert router._fast_ring is simulator._ring
            assert router._fast_mask == simulator._ring_mask
            assert router._fast_counters is simulator._counters

    def test_unbound_routers_fall_back_to_schedule_bit_identically(self):
        """With the fast queue unbound the routers launch through the
        engine's schedule() callback instead — same events, same counters,
        same simulation."""
        config = small_config(policy="history", rate=0.4, measure=1_200)
        unbound = Simulator(config, fast_forward=False)
        for router in unbound.routers:
            router.bind_fast_queue(None, 0, None)
        bound = Simulator(config, fast_forward=False)
        unbound.run_until(900)
        bound.run_until(900)
        assert [r.flits_launched for r in unbound.routers] == [
            r.flits_launched for r in bound.routers
        ]
        assert [r.packets_ejected for r in unbound.routers] == [
            r.packets_ejected for r in bound.routers
        ]
        assert unbound._counters == bound._counters
        assert sorted(
            (cycle, event[0]) for cycle, event in unbound.iter_scheduled_events()
        ) == sorted(
            (cycle, event[0]) for cycle, event in bound.iter_scheduled_events()
        )
