"""Tests for the link power and transition-energy models."""

import pytest
from hypothesis import given, strategies as st

from repro.core.levels import PAPER_TABLE, VFOperatingPoint, VFTable
from repro.core.power_model import (
    PAPER_LINK_POWER,
    LinkPowerModel,
    RegulatorModel,
    transition_energy,
)
from repro.errors import ConfigError


class TestTransitionEnergy:
    def test_paper_example(self):
        # Full swing 0.9 V -> 2.5 V with C = 5 uF, eta = 0.9 (paper Eq. 1).
        energy = transition_energy(0.9, 2.5)
        expected = 0.1 * 5.0e-6 * (2.5**2 - 0.9**2)
        assert energy == pytest.approx(expected)

    def test_symmetric(self):
        assert transition_energy(0.9, 2.5) == pytest.approx(
            transition_energy(2.5, 0.9)
        )

    def test_zero_for_no_change(self):
        assert transition_energy(1.5, 1.5) == 0.0

    def test_perfect_regulator_free(self):
        assert transition_energy(0.9, 2.5, efficiency=0.0) == pytest.approx(
            5.0e-6 * (2.5**2 - 0.9**2)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"filter_capacitance_f": 0.0},
            {"filter_capacitance_f": -1.0},
            {"efficiency": 1.0},
            {"efficiency": -0.1},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigError):
            transition_energy(0.9, 2.5, **kwargs)

    def test_invalid_voltages(self):
        with pytest.raises(ConfigError):
            transition_energy(0.0, 2.5)

    @given(
        v1=st.floats(min_value=0.5, max_value=3.0),
        v2=st.floats(min_value=0.5, max_value=3.0),
    )
    def test_non_negative(self, v1, v2):
        assert transition_energy(v1, v2) >= 0.0

    @given(
        v1=st.floats(min_value=0.5, max_value=3.0),
        v2=st.floats(min_value=0.5, max_value=3.0),
        v3=st.floats(min_value=0.5, max_value=3.0),
    )
    def test_triangle_multi_step_never_cheaper(self, v1, v2, v3):
        """Going v1 -> v2 -> v3 costs at least as much as v1 -> v3 directly
        when v2 is outside [v1, v3]; equal when between (|a-b| telescopes
        on squared voltages)."""
        direct = transition_energy(v1, v3)
        stepped = transition_energy(v1, v2) + transition_energy(v2, v3)
        assert stepped >= direct - 1e-18


class TestRegulatorModel:
    def test_defaults_match_paper(self):
        regulator = RegulatorModel()
        assert regulator.filter_capacitance_f == 5.0e-6
        assert regulator.efficiency == 0.9

    def test_transition_energy_delegates(self):
        regulator = RegulatorModel()
        assert regulator.transition_energy_j(0.9, 2.5) == pytest.approx(
            transition_energy(0.9, 2.5)
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            RegulatorModel(filter_capacitance_f=-1.0)
        with pytest.raises(ConfigError):
            RegulatorModel(efficiency=1.5)


class TestLinkPowerModel:
    def test_hits_paper_anchors(self):
        low = PAPER_LINK_POWER.power_w(VFOperatingPoint(125.0e6, 0.9))
        high = PAPER_LINK_POWER.power_w(VFOperatingPoint(1.0e9, 2.5))
        assert low == pytest.approx(23.6e-3, rel=1e-9)
        assert high == pytest.approx(200.0e-3, rel=1e-9)

    def test_coefficients_positive(self):
        assert PAPER_LINK_POWER.switching_coefficient > 0.0
        assert PAPER_LINK_POWER.bias_coefficient > 0.0

    def test_monotone_over_table(self):
        powers = PAPER_LINK_POWER.level_powers_w(PAPER_TABLE)
        assert list(powers) == sorted(powers)
        assert len(powers) == 10

    def test_max_min_ratio_close_to_paper(self):
        powers = PAPER_LINK_POWER.level_powers_w(PAPER_TABLE)
        assert powers[-1] / powers[0] == pytest.approx(200.0 / 23.6, rel=1e-9)

    def test_channel_power_at_max(self):
        # 8 lanes x 200 mW = 1.6 W per channel (used in the paper's 409.6 W).
        assert PAPER_LINK_POWER.channel_power_w(PAPER_TABLE, 9) == pytest.approx(1.6)

    def test_channel_power_needs_lanes(self):
        with pytest.raises(ConfigError):
            PAPER_LINK_POWER.channel_power_w(PAPER_TABLE, 9, lanes=0)

    def test_rejects_inverted_anchors(self):
        with pytest.raises(ConfigError):
            LinkPowerModel(low_power_w=0.3, high_power_w=0.2)

    def test_rejects_nonpositive_anchor_power(self):
        with pytest.raises(ConfigError):
            LinkPowerModel(low_power_w=0.0)

    def test_describe(self):
        text = PAPER_LINK_POWER.describe(PAPER_TABLE)
        assert "23.60" in text
        assert "200.00" in text

    @given(level=st.integers(min_value=0, max_value=9))
    def test_power_between_anchors(self, level):
        power = PAPER_LINK_POWER.level_power_w(PAPER_TABLE, level)
        assert 23.6e-3 - 1e-12 <= power <= 200.0e-3 + 1e-12

    def test_custom_table_consistency(self):
        table = VFTable.from_endpoints(levels=4)
        powers = PAPER_LINK_POWER.level_powers_w(table)
        assert powers[0] == pytest.approx(23.6e-3)
        assert powers[-1] == pytest.approx(200.0e-3)
