"""Tests for k-ary n-cube topology construction."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TopologyError
from repro.network.topology import Topology


class TestMesh8x8:
    @pytest.fixture(scope="class")
    def topo(self):
        return Topology(8, 2)

    def test_node_count(self, topo):
        assert topo.node_count == 64

    def test_channel_count(self, topo):
        # 2 * 2 * 8 * 7 directed channels in an 8x8 mesh.
        assert topo.channel_count == 224

    def test_coords_round_trip(self, topo):
        for node in range(topo.node_count):
            assert topo.node_at(topo.coords(node)) == node

    def test_corner_has_two_neighbors(self, topo):
        corner = topo.node_at((0, 0))
        assert len(topo.router_ports(corner)) == 2

    def test_center_has_four_neighbors(self, topo):
        center = topo.node_at((3, 3))
        assert len(topo.router_ports(center)) == 4

    def test_neighbor_symmetry(self, topo):
        # dst_port is an input port; the reverse channel leaves through the
        # same-numbered output port back to the source.
        for spec in topo.channels:
            assert topo.neighbor(spec.dst_node, spec.dst_port) == spec.src_node

    def test_distance_matches_manhattan(self, topo):
        a = topo.node_at((1, 2))
        b = topo.node_at((5, 7))
        assert topo.distance(a, b) == 4 + 5

    def test_average_distance(self, topo):
        # 2 * (k^2 - 1) / (3k) per dimension for a k-mesh under uniform pairs
        # ... computed exactly: for k=8 per-dim mean over distinct pairs is
        # different; just check a sane range and symmetry.
        avg = topo.average_distance()
        assert 5.0 < avg < 5.7

    def test_nodes_within(self, topo):
        center = topo.node_at((3, 3))
        within1 = topo.nodes_within(center, 1)
        assert len(within1) == 4
        within2 = topo.nodes_within(center, 2)
        assert len(within2) == 12

    def test_local_port_index(self, topo):
        assert topo.local_port == 4
        assert topo.ports_per_router == 4


class TestTorus:
    def test_wraparound_neighbors(self):
        topo = Topology(4, 2, wraparound=True)
        edge = topo.node_at((3, 1))
        wrapped = topo.neighbor(edge, Topology.plus_port(0))
        assert wrapped == topo.node_at((0, 1))

    def test_all_routers_full_degree(self):
        topo = Topology(4, 2, wraparound=True)
        for node in range(topo.node_count):
            assert len(topo.router_ports(node)) == 4

    def test_channel_count(self):
        topo = Topology(4, 2, wraparound=True)
        assert topo.channel_count == 4 * 16  # every port attached

    def test_torus_distance_wraps(self):
        topo = Topology(8, 2, wraparound=True)
        a = topo.node_at((0, 0))
        b = topo.node_at((7, 0))
        assert topo.distance(a, b) == 1

    def test_radix2_torus_degrades_to_mesh(self):
        topo = Topology(2, 2, wraparound=True)
        assert not topo.wraparound


class TestOtherShapes:
    def test_ring(self):
        topo = Topology(5, 1, wraparound=True)
        assert topo.node_count == 5
        assert topo.channel_count == 10

    def test_3d_mesh(self):
        topo = Topology(3, 3)
        assert topo.node_count == 27
        assert topo.ports_per_router == 6
        center = topo.node_at((1, 1, 1))
        assert len(topo.router_ports(center)) == 6

    def test_opposite_port(self):
        assert Topology.opposite_port(0) == 1
        assert Topology.opposite_port(1) == 0
        assert Topology.opposite_port(4) == 5


class TestValidation:
    def test_bad_radix(self):
        with pytest.raises(TopologyError):
            Topology(1, 2)

    def test_bad_dimensions(self):
        with pytest.raises(TopologyError):
            Topology(4, 0)

    def test_bad_node(self):
        topo = Topology(3, 2)
        with pytest.raises(TopologyError):
            topo.coords(9)
        with pytest.raises(TopologyError):
            topo.neighbor(-1, 0)

    def test_bad_coords(self):
        topo = Topology(3, 2)
        with pytest.raises(TopologyError):
            topo.node_at((0, 3))
        with pytest.raises(TopologyError):
            topo.node_at((1,))

    def test_bad_port(self):
        topo = Topology(3, 2)
        with pytest.raises(TopologyError):
            topo.neighbor(0, 7)

    def test_negative_radius(self):
        topo = Topology(3, 2)
        with pytest.raises(TopologyError):
            topo.nodes_within(0, -1)


class TestNetworkx:
    def test_export(self):
        topo = Topology(3, 2)
        graph = topo.to_networkx()
        assert graph.number_of_nodes() == 9
        assert graph.number_of_edges() == topo.channel_count
        import networkx as nx

        assert nx.is_strongly_connected(graph)


@given(
    radix=st.integers(min_value=2, max_value=6),
    dimensions=st.integers(min_value=1, max_value=3),
    wrap=st.booleans(),
)
def test_channel_enumeration_consistent(radix, dimensions, wrap):
    topo = Topology(radix, dimensions, wraparound=wrap)
    ids = [spec.channel_id for spec in topo.channels]
    assert ids == list(range(len(ids)))
    for spec in topo.channels:
        assert topo.neighbor(spec.src_node, spec.src_port) == spec.dst_node
        assert spec.dst_port == Topology.opposite_port(spec.src_port)
