"""HTTP front end promoting the sweep cache to a shared result store.

``repro cache-server`` serves a content-addressed result directory over
two verbs::

    GET  /entry/<sha256-key>   -> 200 + entry bytes | 404
    PUT  /entry/<sha256-key>   -> 204 (stored atomically)
    GET  /stats                -> 200 + JSON {"entries": N, "bytes": M}

Keys are exactly the sweep cache's keys — ``sha256(epoch + "\\n" +
fingerprint)`` — so the server needs no knowledge of epochs or configs:
clients (:class:`~repro.harness.cache.RemoteResultStore`) compute keys,
validate payloads, and treat the server as a dumb, durable byte store.
Any previously computed ``(epoch, config)`` point uploaded by one host
is a cache hit for every other host and every later campaign.

Robustness mirrors the on-disk cache: PUTs land via temp file + atomic
``os.replace``, so two workers storing the same key concurrently never
interleave partial writes and a crashed upload leaves no torn entry
behind; bodies that do not match their declared ``Content-Length`` are
rejected before anything touches disk. The server never *validates*
pickles — a byte-level corrupt entry is detected (and ignored) by the
reading client, which recomputes and re-uploads a clean copy.

Built on stdlib ``http.server`` (threading variant): no dependencies,
good enough for a lab-scale fabric. It is an internal, trusted-network
service — there is no authentication, and clients unpickle what they
fetch (after content addressing limits damage to stale-but-wellformed
entries under the same key).
"""

from __future__ import annotations

import json
import os
import tempfile
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional

#: Length of a hex sha256 key.
_KEY_HEX_LEN = 64

#: Upper bound on one uploaded entry; a pickled SimulationResult is far
#: below this, so anything larger is abuse, not data.
MAX_ENTRY_BYTES = 256 * 1024 * 1024


def _key_of(path: str) -> Optional[str]:
    """The validated sha256 key in an ``/entry/<key>`` path, else None."""
    prefix = "/entry/"
    if not path.startswith(prefix):
        return None
    key = path[len(prefix):]
    if len(key) != _KEY_HEX_LEN:
        return None
    if any(c not in "0123456789abcdef" for c in key):
        return None
    return key


class ResultStoreHandler(BaseHTTPRequestHandler):
    """One request against the shared result store."""

    server: "ResultStoreServer"
    #: Quiet by default; the CLI flips this for foreground serving.
    log_requests = False
    protocol_version = "HTTP/1.1"

    def _entry_path(self, key: str) -> Path:
        return self.server.root / key[:2] / f"{key}.pkl"

    def _reply(self, status: int, body: bytes = b"",
               content_type: str = "application/octet-stream") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/stats":
            self._reply(
                200,
                json.dumps(self.server.stats()).encode("utf-8"),
                content_type="application/json",
            )
            return
        key = _key_of(self.path)
        if key is None:
            self._reply(400, b"bad path; expected /entry/<sha256>")
            return
        try:
            body = self._entry_path(key).read_bytes()
        except FileNotFoundError:
            self._reply(404)
            return
        except OSError:
            self._reply(500, b"entry unreadable")
            return
        self.server.served += 1
        self._reply(200, body)

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        key = _key_of(self.path)
        if key is None:
            self._reply(400, b"bad path; expected /entry/<sha256>")
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._reply(411, b"Content-Length required")
            return
        if not 0 < length <= MAX_ENTRY_BYTES:
            self._reply(413, b"entry size out of bounds")
            return
        body = self.rfile.read(length)
        if len(body) != length:
            # Torn upload: the connection died mid-body. Nothing touches
            # disk, so a concurrent reader can never observe the tear.
            self._reply(400, b"short body")
            return
        path = self._entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(body)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self._reply(507, b"store failed")
            return
        self.server.stored += 1
        self._reply(204)

    def log_message(self, format: str, *args: object) -> None:
        if self.log_requests:
            super().log_message(format, *args)


class ResultStoreServer(ThreadingHTTPServer):
    """A shared result store over *root*; one thread per connection."""

    daemon_threads = True

    def __init__(self, root: str | Path, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.served = 0
        self.stored = 0
        super().__init__((host, port), ResultStoreHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def stats(self) -> dict[str, int]:
        """Entry count and total bytes currently on disk."""
        entries = 0
        size = 0
        try:
            for path in self.root.glob("*/*.pkl"):
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    pass
        except OSError:
            pass
        return {"entries": entries, "bytes": size}


def serve_result_store(root: str | Path, host: str = "127.0.0.1",
                       port: int = 8750, *, verbose: bool = True) -> None:
    """Blocking entry point behind ``repro cache-server``."""
    server = ResultStoreServer(root, host, port)
    if verbose:
        ResultStoreHandler.log_requests = True
        stats = server.stats()
        print(
            f"result store serving {server.root} at {server.url} "
            f"({stats['entries']} entries, {stats['bytes']} bytes)"
        )
    try:
        server.serve_forever()
    finally:
        server.server_close()
