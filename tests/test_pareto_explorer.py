"""The cross-policy Pareto frontier explorer (repro.harness.pareto).

The acceptance campaign at the bottom is the PR's proof obligation: a
frontier over >= 4 registered policies on the 8x8 mesh that is
bit-identical between the Serial and ProcessPool backends and replays
simulation-free from the sweep cache.
"""

import csv
import json
import math

import pytest

from repro.errors import ExperimentError
from repro.harness import cache as cache_mod
from repro.harness.backends import make_backend
from repro.harness.pareto import (
    PARETO_COLUMNS,
    ParetoPoint,
    frontier,
    mark_frontier,
    pareto_configs,
    pareto_grid,
    run_pareto,
    write_pareto_csv,
    write_pareto_json,
)
from repro.harness.scales import DEFAULT_SCALE


def point(
    policy="p",
    label=None,
    rate=0.5,
    latency=100.0,
    power=0.5,
    params=None,
):
    return ParetoPoint(
        policy=policy,
        label=label if label is not None else policy,
        params=dict(params or {}),
        target_rate=rate,
        offered_rate=rate,
        accepted_rate=rate,
        mean_latency=latency,
        median_latency=latency,
        normalized_power=power,
        savings_factor=1.0 / power if power else math.inf,
        transition_count=0,
        fingerprint_sha256="0" * 64,
    )


class TestFrontierMath:
    def test_dominated_point_excluded(self):
        good = point("a", latency=50.0, power=0.4)
        bad = point("b", latency=60.0, power=0.5)  # worse on both axes
        marked = mark_frontier([good, bad])
        assert [p.on_frontier for p in marked] == [True, False]

    def test_strictly_better_on_one_axis_dominates_ties_on_other(self):
        cheap = point("a", latency=50.0, power=0.4)
        same_latency_pricier = point("b", latency=50.0, power=0.6)
        marked = mark_frontier([cheap, same_latency_pricier])
        assert [p.on_frontier for p in marked] == [True, False]

    def test_exact_ties_are_both_kept(self):
        twin_a = point("a", latency=50.0, power=0.4)
        twin_b = point("b", latency=50.0, power=0.4)
        marked = mark_frontier([twin_a, twin_b])
        assert [p.on_frontier for p in marked] == [True, True]

    def test_tradeoff_points_coexist(self):
        fast_hungry = point("a", latency=40.0, power=0.9)
        slow_frugal = point("b", latency=90.0, power=0.2)
        marked = mark_frontier([fast_hungry, slow_frugal])
        assert all(p.on_frontier for p in marked)

    def test_nan_latency_never_joins_frontier(self):
        dead = point("a", latency=math.nan, power=0.0)
        live = point("b", latency=200.0, power=0.9)
        marked = mark_frontier([dead, live])
        assert [p.on_frontier for p in marked] == [False, True]

    def test_frontiers_are_per_target_rate(self):
        # Dominated in absolute terms, but by a point at another rate:
        # different offered loads are never compared.
        low = point("a", rate=0.1, latency=50.0, power=0.2)
        high = point("b", rate=0.9, latency=80.0, power=0.7)
        marked = mark_frontier([low, high])
        assert all(p.on_frontier for p in marked)

    def test_input_order_preserved_and_originals_untouched(self):
        pts = [point("a", latency=60.0), point("b", latency=50.0, power=0.3)]
        marked = mark_frontier(pts)
        assert [p.policy for p in marked] == ["a", "b"]
        assert all(not p.on_frontier for p in pts)  # frozen inputs copied

    def test_frontier_filters_marked_points(self):
        marked = mark_frontier(
            [point("a", latency=50.0, power=0.4), point("b", latency=60.0, power=0.5)]
        )
        assert [p.policy for p in frontier(marked)] == ["a"]


class TestCampaignShape:
    def test_default_grid_covers_every_registered_policy(self):
        from repro.core.registry import registered_policies

        grid = pareto_grid()
        assert {name for name, _ in grid} == set(registered_policies())

    def test_policy_grid_is_the_declared_sweep(self):
        grid = pareto_grid(["static"])
        assert {g["static_level"] for _, g in grid} == {0, 3, 6, 9}

    def test_grid_overrides_replace_declared_sweep(self):
        grid = pareto_grid(
            ["static", "oracle"],
            grid_overrides={"static": [{"static_level": 7}]},
        )
        static_rows = [g for name, g in grid if name == "static"]
        assert static_rows == [{"static_level": 7}]
        assert any(name == "oracle" for name, _ in grid)

    def test_configs_are_grid_outer_rates_inner(self):
        base = DEFAULT_SCALE.shrink(0.1).simulation(0.5)
        rates = (0.1, 0.9)
        grid, configs = pareto_configs(
            base,
            rates,
            ["none", "oracle"],
            grid_overrides={"none": [{}], "oracle": [{}]},
        )
        assert len(configs) == len(grid) * len(rates)
        expected = [
            (name, rate) for name, _ in grid for rate in rates
        ]
        got = [
            (c.dvs.policy, c.workload.injection_rate) for c in configs
        ]
        assert got == expected

    def test_empty_rates_rejected(self):
        base = DEFAULT_SCALE.shrink(0.1).simulation(0.5)
        with pytest.raises(ExperimentError, match="rate"):
            pareto_configs(base, ())

    def test_empty_grid_rejected(self):
        base = DEFAULT_SCALE.shrink(0.1).simulation(0.5)
        with pytest.raises(ExperimentError, match="policy"):
            pareto_configs(base, (0.5,), policies=())


# --- Acceptance campaign -------------------------------------------------
#
# Four policies, one default knob assignment each, one rate, on the 8x8
# mesh at a 10x-shrunk default scale. Run once (serial, through a tmp
# cache) by the module fixture; the tests below reuse those points.

ACCEPTANCE_POLICIES = ("history", "error_correction", "link_shutdown", "oracle")
ACCEPTANCE_PIN = {name: [{}] for name in ACCEPTANCE_POLICIES}
ACCEPTANCE_RATE = 0.3


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    # The conftest autouse fixture re-disables REPRO_CACHE per test, so
    # the campaign run here (module setup precedes function fixtures)
    # populates the cache dir, and cache-dependent tests below opt back
    # in by pointing REPRO_CACHE at it again.
    cache_dir = str(tmp_path_factory.mktemp("pareto-cache"))
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CACHE", cache_dir)
    cache_mod.reset_cache()
    try:
        base = DEFAULT_SCALE.shrink(0.1).simulation(
            ACCEPTANCE_RATE, workload_overrides={"seed": 11}
        )
        points = run_pareto(
            base,
            (ACCEPTANCE_RATE,),
            ACCEPTANCE_POLICIES,
            backend=make_backend(1),
            grid_overrides=ACCEPTANCE_PIN,
        )
        yield base, points, cache_dir
    finally:
        mp.undo()
        cache_mod.reset_cache()


class TestAcceptanceCampaign:
    def test_covers_at_least_four_policies_on_8x8(self, campaign):
        base, points, _ = campaign
        assert base.network.radix == 8
        assert {p.policy for p in points} == set(ACCEPTANCE_POLICIES)
        assert frontier(points)  # a non-empty non-dominated set
        assert all(len(p.fingerprint_sha256) == 64 for p in points)

    def test_processpool_is_bit_identical_to_serial(self, campaign):
        base, serial_points, _ = campaign
        # The autouse conftest fixture already has REPRO_CACHE off here,
        # so the pool genuinely re-simulates every point.
        cache_mod.reset_cache()
        try:
            pool_points = run_pareto(
                base,
                (ACCEPTANCE_RATE,),
                ACCEPTANCE_POLICIES,
                backend=make_backend(2),
                grid_overrides=ACCEPTANCE_PIN,
            )
        finally:
            cache_mod.reset_cache()
        assert pool_points == serial_points

    def test_cache_resume_replays_simulation_free(self, campaign, monkeypatch):
        base, first, cache_dir = campaign
        monkeypatch.setenv("REPRO_CACHE", cache_dir)
        cache_mod.reset_cache()

        def boom(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("cached pareto re-run simulated a config")

        monkeypatch.setattr("repro.harness.backends.run_simulation", boom)
        second = run_pareto(
            base,
            (ACCEPTANCE_RATE,),
            ACCEPTANCE_POLICIES,
            backend=make_backend(1),
            resume=True,
            grid_overrides=ACCEPTANCE_PIN,
        )
        assert second == first

    def test_json_artifact_has_provenance(self, campaign, tmp_path):
        _, points, _ = campaign
        path = tmp_path / "pareto.json"
        write_pareto_json(points, str(path))
        payload = json.loads(path.read_text())
        assert payload["columns"] == list(PARETO_COLUMNS)
        assert len(payload["points"]) == len(points)
        by_label = {p["label"]: p for p in payload["points"]}
        for p in points:
            assert by_label[p.label]["fingerprint_sha256"] == p.fingerprint_sha256
        assert payload["frontier_labels"] == [
            f"{p.label} @ {p.target_rate:g}" for p in frontier(points)
        ]

    def test_csv_artifact_round_trips(self, campaign, tmp_path):
        _, points, _ = campaign
        path = tmp_path / "pareto.csv"
        write_pareto_csv(points, str(path))
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(PARETO_COLUMNS)
        assert len(rows) == len(points) + 1
        assert [r[0] for r in rows[1:]] == [p.policy for p in points]
        assert [r[-2] for r in rows[1:]] == [str(int(p.on_frontier)) for p in points]
