"""The pure cycle kernel.

:class:`SimulationEngine` owns exactly three things: topology construction
(routers, DVS channels, per-port controllers, traffic), the event queue,
and the per-cycle step. It holds **no measurement state** — every
observable (latency, power, series, profiles, traces) attaches through the
:class:`~repro.instrument.bus.InstrumentBus` passed at construction, and
the measurement-phase facade lives in
:class:`~repro.network.simulator.Simulator`.

Time base: the router clock (1 cycle = 1 ns at the paper's 1 GHz). Each
cycle the kernel

1. dispatches scheduled events — flit arrivals into input buffers, credit
   returns, DVS channel phase boundaries (emitting ``on_transition`` bus
   events at the boundaries);
2. polls the traffic source and enqueues new packets in source queues
   (emitting ``on_packet_offered``);
3. closes DVS history windows when due (every H cycles) and runs the
   per-port controllers; schedules any transition phase boundaries they
   start;
4. dispatches ``on_window_close`` to windowed observers and ``on_cycle``
   to per-cycle observers;
5. steps every *active* router (ejection, routing/VC allocation, switch
   allocation, injection); tail-flit ejections reach observers through
   ``on_packet_ejected``.

Three scheduling structures make the kernel event-driven and allocation-
free where the workload allows, without changing a single simulated bit
(see ``docs/performance.md`` for the bit-identity argument of each):

* **Calendar-queue event dispatch.** Nearly every ARRIVAL/CREDIT event
  lands within a small bounded horizon (pipeline latency + worst-case
  serialization + credit delay), so events live in a power-of-two ring of
  reusable lists indexed by ``cycle & ring_mask`` — no per-cycle dict
  hash/pop/allocation. Far-future events (DVS phase boundaries at slow
  levels) go to a spill dict whose minimum key is tracked in
  ``_spill_min``, making the per-cycle spill probe one integer compare.
  For any target cycle, every spill-scheduled event was scheduled at an
  earlier ``now`` than every ring-scheduled event (``now`` is monotonic),
  so dispatching the spill bucket first reproduces the old single-bucket
  insertion order exactly.
* **Incremental active-router list.** Routers join the active list when
  they gain work (a flit arrival or a source-queue offer — the only
  engine-visible ways a router becomes non-idle) and leave it when their
  own step empties them. Membership is a flags ``bytearray``; order is an
  insertion-maintained ascending node list, compacted in place during the
  stepping loop — exactly the order of the old full scan over all N
  routers, with no per-cycle ``sorted()``.
* **Quiescence fast-forward.** When the active list is empty, nothing can
  happen before the next *event horizon*: the earliest of the next
  scheduled event (ring or spill), the next traffic injection
  (:meth:`~repro.traffic.base.TrafficSource.next_injection_cycle`), the
  next DVS history-window boundary, and the next observer window
  boundary. The kernel jumps ``now`` straight there, notifying
  ``on_idle_span`` observers of the skipped range. Observers that need
  every cycle (``on_cycle`` without ``on_idle_span``) disable skipping.

Steady-state stepping allocates ~zero objects: event records are 5-slot
lists drawn from a free list and recycled after dispatch, and
:class:`~repro.network.packet.Flit` objects are pooled (released on
ejection, reacquired at injection). Setting :attr:`legacy_scan` restores
the PR-3 kernel shape — dict-bucket events, full router scan, no pooling —
for in-process A/B benchmarks.

The kernel additionally maintains outstanding-event counters (transport
events, arrivals, and source-queue packets), updated at
schedule/dispatch/offer/inject, so drain-progress checks are O(1) instead
of walking every pending bucket and router. Inter-router flit traversal is
"emulated with message passing" exactly as in the paper: a launched flit
becomes an arrival event ``pipeline latency + serialization`` cycles
later, so slow links lengthen hops and throttle bandwidth.
"""

from __future__ import annotations

import math
from bisect import insort

from ..config import SimulationConfig
from ..core.controller import PortDVSController
from ..core.dvs_link import DVSChannel
from ..core.registry import PolicyBuildContext, build_policy
from ..errors import SimulationError
from ..instrument.bus import InstrumentBus, TransitionEvent
from .channel import NetworkChannel
from .packet import Packet
from .router import EVENT_ARRIVAL, EVENT_CREDIT, EVENT_PHASE, Router
from .routing import make_routing
from .topology import Topology

#: Sentinel "no spill events": compares greater than any real cycle.
_NEVER = math.inf


class SimulationEngine:
    """One fully wired network: the simulated hardware, nothing else."""

    def __init__(
        self,
        config: SimulationConfig,
        *,
        traffic=None,
        bus: InstrumentBus | None = None,
        fast_forward: bool = True,
        sanitize: bool = False,
    ):
        self.config = config
        self.bus = bus if bus is not None else InstrumentBus()
        #: Allow quiescence skipping (bit-identical either way; set False
        #: to force cycle-by-cycle stepping, e.g. for A/B benchmarks).
        self.fast_forward = fast_forward
        self._legacy_scan = False
        # Per-cycle constants, prebound so step() skips the config
        # attribute chains (kept in sync by the legacy_scan setter).
        self._dispatch_fn = self._dispatch
        self._flits_per_packet = config.network.flits_per_packet
        self._history_window = config.dvs.history_window
        #: Diagnostics: cycles and spans elided by quiescence skipping.
        self.idle_cycles_skipped = 0
        self.idle_spans = 0
        net = config.network
        link = config.link

        self.topology = Topology(net.radix, net.dimensions, wraparound=net.wraparound)
        self.routing = make_routing(net.routing, self.topology, net.vcs_per_port)

        table = link.build_table()
        power_model = link.build_power_model()
        regulator = link.build_regulator()
        timing = link.build_timing()

        # Calendar queue: a ring slot per near-future cycle, spill dict
        # beyond. The ring must cover the worst-case transport horizon —
        # pipeline latency plus level-0 serialization plus the credit
        # delay — so steady-state traffic never touches the spill dict.
        slowest_serialization = math.ceil(
            table.serialization_ratio(0, net.router_clock_hz)
        )
        near_horizon = net.pipeline_latency + slowest_serialization + net.credit_delay
        ring_size = 32
        while ring_size <= near_horizon:
            ring_size *= 2
        self._ring: list[list] = [[] for _ in range(ring_size)]
        self._ring_mask = ring_size - 1
        #: cycle -> events, for targets at least ring_size cycles out.
        self._spill: dict[int, list] = {}
        self._spill_min: int | float = _NEVER
        #: Free lists for 5-slot event records and Flit objects; shared
        #: with every router. Recycled records may keep a stale payload
        #: reference alive until reuse — bounded by the pool size, and the
        #: flits they point at are themselves pooled.
        self._event_pool: list[list] = []
        self._flit_pool: list = []

        self.now = 0
        # Outstanding-event counters ``[transport, arrivals, ring_count]``,
        # maintained at schedule/dispatch so drain checks never walk the
        # event queue. A shared mutable list rather than three attributes
        # so fast-queue-bound routers (see Router.bind_fast_queue) can
        # maintain them without calling back into the engine; read them
        # through the _pending_transport/_pending_arrivals/_ring_count
        # properties.
        self._counters = [0, 0, 0]
        # Source-queue packets not yet fully in the network, maintained at
        # offer/inject so drain checks never walk the routers.
        self._pending_source = 0
        #: Active-router scheduler state: ``_active_flags[node]`` is 1
        #: exactly when *node* is in ``_active_list``, which is kept in
        #: ascending node order == exactly the non-idle routers (they gain
        #: work only through engine-visible arrivals and offers, and lose
        #: it only in their own step).
        self._active_flags = bytearray(self.topology.node_count)
        self._active_list: list[int] = []

        self.routers = [
            Router(
                node,
                self.topology,
                self.routing,
                vcs_per_port=net.vcs_per_port,
                buffers_per_vc=net.buffers_per_vc,
                credit_delay=net.credit_delay,
                schedule=self.schedule,
                packet_sink=self._on_packet_ejected,
                injected_sink=self._on_packet_injected,
                event_pool=self._event_pool,
                flit_pool=self._flit_pool,
            )
            for node in range(self.topology.node_count)
        ]
        for router in self.routers:
            router.bind_fast_queue(self._ring, self._ring_mask, self._counters)

        if config.dvs.enabled and config.dvs.initial_level is not None:
            initial_level = config.dvs.initial_level
        else:
            initial_level = table.max_level

        self.channels: list[NetworkChannel] = []
        for spec in self.topology.channels:
            dvs_channel = DVSChannel(
                table,
                power_model,
                regulator,
                lanes=link.lanes,
                router_clock_hz=net.router_clock_hz,
                timing=timing,
                initial_level=initial_level,
                retention_voltage_v=link.sleep_retention_voltage_v,
                wake_lockout_cycles=link.sleep_wake_lockout_cycles,
            )
            channel = NetworkChannel(spec, dvs_channel, net.pipeline_latency)
            self.routers[spec.src_node].attach_channel(
                spec.src_port, channel, net.buffers_per_vc
            )
            self.channels.append(channel)
        #: DVS channel -> topology channel id, for transition events.
        self._channel_ids = {
            id(channel.dvs): channel.spec.channel_id for channel in self.channels
        }

        self.controllers: list[PortDVSController] = []
        if config.dvs.enabled:
            for channel in self.channels:
                spec = channel.spec
                tracker = self.routers[spec.dst_node].occupancy[spec.dst_port]
                if tracker is None:
                    raise SimulationError("network input port lacks a tracker")
                context = PolicyBuildContext(
                    table=table,
                    channel_index=spec.channel_id,
                    window_cycles=config.dvs.history_window,
                )
                self.controllers.append(
                    PortDVSController(
                        channel.dvs,
                        build_policy(config.dvs, context),
                        tracker,
                        window_cycles=config.dvs.history_window,
                        buffer_capacity=net.buffers_per_port,
                    )
                )

        if traffic is None:
            from ..traffic.base import make_traffic

            traffic = make_traffic(self.topology, config.workload)
        self.traffic = traffic

        #: The attached :class:`~repro.analysis.sanitizer.NetworkSanitizer`
        #: when ``sanitize=True``, else None. Lazily imported so the kernel
        #: has no analysis dependency unless asked for one.
        self.sanitizer = None
        if sanitize:
            from ..analysis.sanitizer import NetworkSanitizer

            self.sanitizer = NetworkSanitizer(self).attach()

    # ------------------------------------------------------------------
    # Kernel variants (benchmark A/B)
    # ------------------------------------------------------------------

    @property
    def legacy_scan(self) -> bool:
        """Benchmark escape hatch: emulate the PR-3 kernel shape.

        When True the kernel scans all N routers every cycle, keeps every
        event in the spill dict (one bucket per cycle, exactly the old
        bucket map), and disables event-record and flit pooling — the
        in-process baseline for the calendar-queue/pooling speedups.
        """
        return self._legacy_scan

    @legacy_scan.setter
    def legacy_scan(self, value: bool) -> None:
        self._legacy_scan = bool(value)
        legacy = self._legacy_scan
        self._dispatch_fn = self._dispatch_legacy if legacy else self._dispatch
        event_pool = None if legacy else self._event_pool
        flit_pool = None if legacy else self._flit_pool
        for router in self.routers:
            router.event_pool = event_pool
            router.flit_pool = flit_pool
            if legacy:
                router.bind_fast_queue(None, 0, None)
            else:
                router.bind_fast_queue(self._ring, self._ring_mask, self._counters)
            # The legacy pipeline fills buffers without maintaining the
            # occupied-VC list; rebuild it on every toggle.
            router.resync_occupancy()
        if not legacy:
            # Events scheduled while legacy was set are plain tuples; the
            # modern dispatch assumes every record is a pooled 5-slot
            # list, so convert stragglers up front.
            spill = self._spill
            for cycle in sorted(spill):
                self._listify_records(spill[cycle])
            for bucket in self._ring:
                if bucket:
                    self._listify_records(bucket)

    @staticmethod
    def _listify_records(bucket: list) -> None:
        """Convert tuple event records in *bucket* to 5-slot lists."""
        for i, event in enumerate(bucket):
            if type(event) is not list:
                record = list(event)
                while len(record) < 5:
                    record.append(None)
                bucket[i] = record

    # Outstanding-event counters (see _counters above). Read-only:
    # schedule/dispatch and fast-queue-bound routers mutate the list.

    @property
    def _pending_transport(self) -> int:
        return self._counters[0]

    @property
    def _pending_arrivals(self) -> int:
        return self._counters[1]

    @property
    def _ring_count(self) -> int:
        """Events currently buffered across all ring slots."""
        return self._counters[2]

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def schedule(self, cycle: int, event) -> None:
        """Queue *event* for dispatch at *cycle* (strictly in the future)."""
        now = self.now
        if cycle <= now:
            raise SimulationError(
                f"event scheduled for cycle {cycle} at cycle {now}; "
                "the kernel only dispatches future cycles"
            )
        kind = event[0]
        counters = self._counters
        if kind != EVENT_PHASE:
            counters[0] += 1
            if kind == EVENT_ARRIVAL:
                counters[1] += 1
        if cycle - now <= self._ring_mask and not self._legacy_scan:
            self._ring[cycle & self._ring_mask].append(event)
            counters[2] += 1
        else:
            bucket = self._spill.get(cycle)
            if bucket is None:
                self._spill[cycle] = [event]
                if cycle < self._spill_min:
                    self._spill_min = cycle
            else:
                bucket.append(event)

    def _phase_event(self, channel: DVSChannel):
        """A fresh or recycled event record for a DVS phase boundary."""
        if self._legacy_scan:
            return (EVENT_PHASE, channel)
        pool = self._event_pool
        if pool:
            record = pool.pop()
            record[0] = EVENT_PHASE
            record[1] = channel
            record[2] = None
            record[3] = None
            record[4] = None
            return record
        return [EVENT_PHASE, channel, None, None, None]

    def iter_scheduled_events(self):
        """Yield every pending ``(cycle, event)`` pair, unordered.

        A read-only view over the union of the calendar ring and the spill
        dict, for diagnostics and the network sanitizer's conservation
        checks; callers must not mutate the event records or
        schedule/dispatch while iterating. A ring slot's cycle is
        recovered from its offset relative to ``now`` (each slot holds
        events for exactly one cycle in ``[now, now + ring_size)``).
        """
        for cycle, bucket in self._spill.items():
            for event in bucket:
                yield cycle, event
        if self._ring_count:
            now = self.now
            mask = self._ring_mask
            for slot, bucket in enumerate(self._ring):
                if bucket:
                    cycle = now + ((slot - now) & mask)
                    for event in bucket:
                        yield cycle, event

    def iter_active_routers(self):
        """Yield the active routers in ascending node order (zero-copy).

        A read-only view over the incremental active list for diagnostics
        and the network sanitizer: a router outside the list performed no
        work last cycle, so checker state derived from it is unchanged.
        """
        routers = self.routers
        for node in self._active_list:
            yield routers[node]

    def _on_packet_ejected(self, packet: Packet, now: int) -> None:
        for observer in self.bus.ejected_hooks:
            observer.on_packet_ejected(packet, now)

    def _on_packet_injected(self) -> None:
        self._pending_source -= 1

    def _emit_transition(self, channel: DVSChannel, now: int, kind: str) -> None:
        event = TransitionEvent(
            cycle=now,
            channel=self._channel_ids[id(channel)],
            kind=kind,
            phase=channel.phase.value,
            level=channel.level,
            voltage_level=channel.voltage_level,
            target_level=channel.target_level,
        )
        for observer in self.bus.transition_hooks:
            observer.on_transition(event)

    # ------------------------------------------------------------------
    # The cycle loop
    # ------------------------------------------------------------------

    def _dispatch(self, events: list, now: int) -> None:  # repro-hot
        """Dispatch one cycle bucket's events, in scheduling order.

        The ARRIVAL and CREDIT bodies are :meth:`Router.on_arrival` and
        :meth:`Router.on_credit` inlined (keep them in sync — the router
        methods remain the reference implementation for standalone
        callers), minus their defensive checks: buffer overflow and credit
        overflow are structurally impossible under credit flow control (a
        flit is only launched against a positive credit, credits mirror
        downstream slots exactly, and every credit return matches one
        departed flit), and the opt-in network sanitizer re-verifies both
        invariants end to end. Every record here is a pooled 5-slot list
        (the ``legacy_scan`` toggle converts stragglers), recycled in the
        same pass; the outstanding-event counters are settled once per
        bucket rather than per event.
        """
        routers = self.routers
        active_flags = self._active_flags
        active_list = self._active_list
        pool = self._event_pool
        arrivals = 0
        phases = 0
        for event in events:
            kind = event[0]
            if kind == EVENT_ARRIVAL:
                arrivals += 1
                node = event[1]
                router = routers[node]
                vcstate = router.in_vcs[event[2]][event[3]]
                flit = event[4]
                flit.buffer_arrival_cycle = now
                vcstate.flits.append(flit)
                if not vcstate.in_occ:
                    vcstate.in_occ = True
                    insort(router._occ_list, vcstate.rid)
                tracker = vcstate.tracker
                if tracker is not None:
                    # OccupancyTracker.on_enqueue, inlined (time cannot run
                    # backwards under the monotonic dispatch clock).
                    last = tracker._last_cycle
                    if now != last:
                        tracker._integral += tracker.occupied * (now - last)
                        tracker._last_cycle = now
                    tracker.occupied += 1
                router.total_buffered += 1
                if not active_flags[node]:
                    active_flags[node] = 1
                    insort(active_list, node)
            elif kind == EVENT_CREDIT:
                routers[event[1]].credit_states[event[2]].credits[event[3]] += 1
            else:  # EVENT_PHASE
                phases += 1
                channel = event[1]
                ramps_before = channel.transition_count
                next_cycle = channel.on_phase_end(now)
                if next_cycle is not None:
                    self.schedule(next_cycle, self._phase_event(channel))
                transition_hooks = self.bus.transition_hooks
                if transition_hooks:
                    self._emit_transition(channel, now, "phase_end")
                    if channel.transition_count > ramps_before:
                        self._emit_transition(channel, now, "ramp_start")
            pool.append(event)
        counters = self._counters
        counters[0] -= len(events) - phases
        counters[1] -= arrivals

    def _dispatch_legacy(self, events: list, now: int) -> None:
        """The PR-3 dispatch loop: one event-handler method call per
        event, exactly as the seed kernel paid for it (the in-process A/B
        baseline — do not optimize)."""
        routers = self.routers
        active_flags = self._active_flags
        active_list = self._active_list
        counters = self._counters
        transition_hooks = self.bus.transition_hooks
        for event in events:
            kind = event[0]
            if kind == EVENT_ARRIVAL:
                counters[0] -= 1
                counters[1] -= 1
                node = event[1]
                routers[node].on_arrival(event[2], event[3], event[4], now)
                if not active_flags[node]:
                    active_flags[node] = 1
                    insort(active_list, node)
            elif kind == EVENT_CREDIT:
                counters[0] -= 1
                routers[event[1]].on_credit(event[2], event[3], event[4])
            else:  # EVENT_PHASE
                channel = event[1]
                ramps_before = channel.transition_count
                next_cycle = channel.on_phase_end(now)
                if next_cycle is not None:
                    self.schedule(next_cycle, self._phase_event(channel))
                if transition_hooks:
                    self._emit_transition(channel, now, "phase_end")
                    if channel.transition_count > ramps_before:
                        self._emit_transition(channel, now, "ramp_start")

    def step(self) -> None:  # repro-hot
        """Advance the simulation by one router cycle."""
        now = self.now
        routers = self.routers
        bus = self.bus

        # Event dispatch: for a given cycle, spill-resident events were
        # necessarily scheduled earlier (from a smaller ``now``) than
        # ring-resident ones, so spill-first equals the old single-bucket
        # insertion order.
        dispatch = self._dispatch_fn
        if now == self._spill_min:
            spill = self._spill
            events = spill.pop(now)
            self._spill_min = min(spill) if spill else _NEVER
            dispatch(events, now)
        ring_bucket = self._ring[now & self._ring_mask]
        if ring_bucket:
            # Recycled records re-enter the ring only at future slots
            # (schedule targets are strictly after now), so clearing the
            # bucket after dispatch cannot drop a reused record.
            self._counters[2] -= len(ring_bucket)
            dispatch(ring_bucket, now)
            del ring_bucket[:]

        pairs = self.traffic.injections(now)
        if pairs:
            flits_per_packet = self._flits_per_packet
            offered_hooks = bus.offered_hooks
            active_flags = self._active_flags
            active_list = self._active_list
            for src, dst in pairs:
                packet = Packet(src, dst, flits_per_packet, now)
                routers[src].offer_packet(packet)
                if not active_flags[src]:
                    active_flags[src] = 1
                    insort(active_list, src)
                self._pending_source += 1
                if offered_hooks:
                    for observer in offered_hooks:
                        observer.on_packet_offered(packet, now)

        if now:
            if self.controllers and now % self._history_window == 0:
                transition_hooks = bus.transition_hooks
                for controller in self.controllers:
                    channel = controller.channel
                    pending_before = channel.pending_event_cycle
                    ramps_before = channel.transition_count
                    controller.close_window(now)
                    pending_after = channel.pending_event_cycle
                    if pending_after is not None and pending_after != pending_before:
                        self.schedule(pending_after, self._phase_event(channel))
                    if transition_hooks and channel.transition_count > ramps_before:
                        self._emit_transition(channel, now, "ramp_start")
            window_hooks = bus.window_hooks
            if window_hooks:
                for observer in window_hooks:
                    if now % observer.window_cycles == 0:
                        observer.on_window_close(now)

        cycle_hooks = bus.cycle_hooks
        if cycle_hooks:
            for observer in cycle_hooks:
                observer.on_cycle(now)

        active_list = self._active_list
        if self._legacy_scan:
            # PR-3 behavior for A/B benchmarks: probe all N routers with
            # the seed's inline emptiness predicate and run the legacy
            # router pipeline, then resynchronize the scheduler state
            # (order is identical — both scans step non-idle routers in
            # ascending node order).
            for router in routers:
                if router.total_buffered or router.inj_flits or router.inj_queue:
                    router.step_legacy(now)
            active_flags = self._active_flags
            del active_list[:]
            for node, router in enumerate(routers):
                if router.total_buffered or router.inj_flits or router.inj_queue:
                    active_flags[node] = 1
                    active_list.append(node)
                else:
                    active_flags[node] = 0
        elif active_list:
            # No router is *added* during this loop (arrivals and offers
            # happened in the phases above) and only the router being
            # stepped can become idle, so compacting in place preserves
            # the ascending order with no allocation.
            active_flags = self._active_flags
            count = len(active_list)
            write = 0
            read = 0
            while read < count:
                node = active_list[read]
                read += 1
                # step() returns its own not-idle indicator (the inverse
                # of Router.is_idle) — the innermost loop of the simulator
                # re-probing three attributes per stepped router is real.
                if routers[node].step(now):
                    active_list[write] = node
                    write += 1
                else:
                    active_flags[node] = 0
            if write != count:
                del active_list[write:]

        self.now = now + 1

    # ------------------------------------------------------------------
    # Boundary-step seams (batched kernel coordination)
    # ------------------------------------------------------------------
    #
    # begin_boundary_step() + finish_boundary_step() together are exactly
    # one step(): the first half runs event dispatch and traffic
    # injection, the second half runs the controller window-close loop,
    # observer hooks, and router stepping. The split exists so a
    # coordinator (repro.network.batched) can read each controller's
    # decision inputs *after* this cycle's events have landed but *before*
    # the windows close — the precise point inside step() where
    # close_window() computes them. Both bodies are verbatim copies of the
    # corresponding step() phases; keep all three in sync (step() remains
    # the reference and the hot path — these seams are only used at
    # history-window boundaries, a 1-in-H cycle).

    def begin_boundary_step(self) -> None:
        """First half of :meth:`step`: event dispatch + traffic injection.

        Must be followed by exactly one :meth:`finish_boundary_step`
        before any other stepping call; ``now`` does not advance until
        the finish half runs.
        """
        now = self.now
        routers = self.routers
        bus = self.bus

        dispatch = self._dispatch_fn
        if now == self._spill_min:
            spill = self._spill
            events = spill.pop(now)
            self._spill_min = min(spill) if spill else _NEVER
            dispatch(events, now)
        ring_bucket = self._ring[now & self._ring_mask]
        if ring_bucket:
            self._counters[2] -= len(ring_bucket)
            dispatch(ring_bucket, now)
            del ring_bucket[:]

        pairs = self.traffic.injections(now)
        if pairs:
            flits_per_packet = self._flits_per_packet
            offered_hooks = bus.offered_hooks
            active_flags = self._active_flags
            active_list = self._active_list
            for src, dst in pairs:
                packet = Packet(src, dst, flits_per_packet, now)
                routers[src].offer_packet(packet)
                if not active_flags[src]:
                    active_flags[src] = 1
                    insort(active_list, src)
                self._pending_source += 1
                if offered_hooks:
                    for observer in offered_hooks:
                        observer.on_packet_offered(packet, now)

    def finish_boundary_step(self) -> None:
        """Second half of :meth:`step`: window close, hooks, router steps."""
        now = self.now
        routers = self.routers
        bus = self.bus

        if now:
            if self.controllers and now % self._history_window == 0:
                transition_hooks = bus.transition_hooks
                for controller in self.controllers:
                    channel = controller.channel
                    pending_before = channel.pending_event_cycle
                    ramps_before = channel.transition_count
                    controller.close_window(now)
                    pending_after = channel.pending_event_cycle
                    if pending_after is not None and pending_after != pending_before:
                        self.schedule(pending_after, self._phase_event(channel))
                    if transition_hooks and channel.transition_count > ramps_before:
                        self._emit_transition(channel, now, "ramp_start")
            window_hooks = bus.window_hooks
            if window_hooks:
                for observer in window_hooks:
                    if now % observer.window_cycles == 0:
                        observer.on_window_close(now)

        cycle_hooks = bus.cycle_hooks
        if cycle_hooks:
            for observer in cycle_hooks:
                observer.on_cycle(now)

        active_list = self._active_list
        if self._legacy_scan:
            for router in routers:
                if router.total_buffered or router.inj_flits or router.inj_queue:
                    router.step_legacy(now)
            active_flags = self._active_flags
            del active_list[:]
            for node, router in enumerate(routers):
                if router.total_buffered or router.inj_flits or router.inj_queue:
                    active_flags[node] = 1
                    active_list.append(node)
                else:
                    active_flags[node] = 0
        elif active_list:
            active_flags = self._active_flags
            count = len(active_list)
            write = 0
            read = 0
            while read < count:
                node = active_list[read]
                read += 1
                if routers[node].step(now):
                    active_list[write] = node
                    write += 1
                else:
                    active_flags[node] = 0
            if write != count:
                del active_list[write:]

        self.now = now + 1

    def run_cycles(self, cycles: int) -> None:
        """Run *cycles* more cycles (fast-forwarding quiescent spans)."""
        self.run_until(self.now + cycles)

    def run_until(self, target: int) -> None:
        """Advance until ``now == target`` (fast-forwarding where possible)."""
        if not self.fast_forward:
            while self.now < target:
                self.step()
            return
        while self.now < target:
            self._advance_chunk(target)

    def _advance_chunk(self, target: int) -> None:
        """Advance at least one cycle toward *target*: skip or step.

        With an empty active list, every cycle strictly before the event
        horizon is provably a no-op — no events dispatch, the traffic
        source neither emits nor mutates, no window closes, no router
        steps — and all time-dependent accounting (link energy, occupancy
        integrals, idle-power accrual) is lazily integrated and therefore
        jump-safe. Skipping those cycles is bit-identical to stepping
        them.
        """
        if self.fast_forward and not self._active_list:
            horizon = self._quiescent_horizon()
            end = horizon if horizon < target else target
            now = self.now
            if end > now:
                span_hooks = self.bus.idle_span_hooks
                if span_hooks:
                    for observer in span_hooks:
                        observer.on_idle_span(now, end)
                self.idle_cycles_skipped += end - now
                self.idle_spans += 1
                self.now = end
                return
        self.step()

    def _quiescent_horizon(self) -> int | float:
        """Earliest cycle >= now at which anything could happen.

        Only meaningful while the active list is empty. Returns ``now``
        itself when fast-forward is not permitted (an attached observer
        needs every cycle, or the traffic source cannot predict its next
        injection), which makes the caller fall back to a plain step.
        """
        now = self.now
        bus = self.bus
        if bus.unskippable_cycle_hooks:
            return now
        next_injection = self.traffic.next_injection_cycle(now)
        if next_injection is None:
            return now
        horizon: int | float = next_injection
        first_event: int | float = self._spill_min
        if self._ring_count:
            ring = self._ring
            mask = self._ring_mask
            for offset in range(mask + 1):
                if ring[(now + offset) & mask]:
                    cycle = now + offset
                    if cycle < first_event:
                        first_event = cycle
                    break
        if first_event < horizon:
            horizon = first_event
        if self.controllers:
            window = self.config.dvs.history_window
            # Next cycle with now % window == 0. A boundary at `now` itself
            # is still pending (it closes inside step(now)) and correctly
            # forces a plain step — except cycle 0, where nothing closes.
            boundary = now + (-now % window)
            if boundary == 0:
                boundary = window
            if boundary < horizon:
                horizon = boundary
        for observer in bus.window_hooks:
            window = observer.window_cycles
            boundary = now + (-now % window)
            if boundary == 0:
                boundary = window
            if boundary < horizon:
                horizon = boundary
        return horizon

    # ------------------------------------------------------------------
    # Drain diagnostics
    # ------------------------------------------------------------------

    def flits_in_network(self) -> int:
        """Flits buffered in routers plus flits in flight on the wires."""
        buffered = sum(router.total_buffered for router in self.routers)
        return buffered + self._pending_arrivals

    def pending_source_packets(self) -> int:
        """Packets waiting in source queues (plus partially injected ones).

        O(1): the counter is incremented when a packet is offered and
        decremented when its tail flit enters the local input buffers
        (the router's ``injected_sink`` seam).
        """
        return self._pending_source

    def drain(self, max_cycles: int = 100_000) -> int:
        """Run with traffic as-is until the network empties; returns cycles.

        Intended for conservation tests: callers typically swap in an
        exhausted traffic source first. Raises if the network fails to
        drain within *max_cycles* (a deadlock or livelock).

        The emptiness probe is O(1) end-to-end: outstanding transport
        events, source-queue packets, and buffered flits are all tracked
        by counters (an empty active list implies every router buffer and
        injection queue is empty). The probe only needs evaluating at
        fast-forward chunk boundaries because nothing it reads can change
        across a skipped quiescent span.
        """
        start = self.now
        deadline = start + max_cycles
        while self.now < deadline:
            if (
                self._pending_transport == 0
                and not self._active_list
                and self._pending_source == 0
                and self.traffic.pending_injections() == 0
            ):
                return self.now - start
            if self.fast_forward:
                self._advance_chunk(deadline)
            else:
                self.step()
        raise SimulationError(f"network failed to drain within {max_cycles} cycles")
