"""Tests for per-VC state."""

from repro.network.packet import Packet
from repro.network.vc import UNROUTED, InputVC


class TestInputVC:
    def test_initial_state(self):
        vc = InputVC(8)
        assert vc.out_port == UNROUTED
        assert vc.out_vc == UNROUTED
        assert vc.route_options is None
        assert not vc.active
        assert not vc.needs_route

    def test_needs_route_with_head_at_front(self):
        vc = InputVC(8)
        flits = Packet(0, 1, 3, 0).make_flits()
        vc.buffer.enqueue(flits[0], 0)
        assert vc.needs_route

    def test_no_route_needed_for_body(self):
        vc = InputVC(8)
        flits = Packet(0, 1, 3, 0).make_flits()
        vc.buffer.enqueue(flits[1], 0)  # body flit (malformed stream)
        assert not vc.needs_route

    def test_active_after_assignment(self):
        vc = InputVC(8)
        vc.out_port = 2
        vc.out_vc = 1
        assert vc.active
        assert not vc.needs_route or vc.buffer.is_empty

    def test_reset_route(self):
        vc = InputVC(8)
        vc.out_port = 2
        vc.out_vc = 1
        vc.route_options = [(2, (0, 1))]
        vc.reset_route()
        assert vc.out_port == UNROUTED
        assert vc.out_vc == UNROUTED
        assert vc.route_options is None
