"""The paper's primary contribution: DVS links and the history-based policy.

This subpackage is self-contained: it models the voltage/frequency operating
points of a DVS link (:mod:`repro.core.levels`), the link power and
transition-energy model (:mod:`repro.core.power_model`), the channel-level
DVS state machine with the paper's transition sequencing
(:mod:`repro.core.dvs_link`), the utilization sampling and EWMA prediction
machinery (:mod:`repro.core.history`), the history-based policy itself plus
baselines (:mod:`repro.core.policy`), the per-port controller that wires
measurement to actuation (:mod:`repro.core.controller`), the published
threshold presets (:mod:`repro.core.thresholds`), and the hardware cost
model of Section 3.3 (:mod:`repro.core.hardware`).
"""

from .controller import PortDVSController
from .dvs_link import ChannelPhase, DVSChannel, TransitionTiming
from .hardware import ControllerHardwareModel
from .history import EWMAPredictor, WindowSampler
from .levels import VFOperatingPoint, VFTable
from .policy import (
    AdaptiveThresholdPolicy,
    AlwaysMaxPolicy,
    DVSAction,
    DVSPolicy,
    HistoryDVSPolicy,
    LinkUtilizationOnlyPolicy,
    PolicyInputs,
    StaticLevelPolicy,
)
from .power_model import LinkPowerModel, RegulatorModel, transition_energy
from .thresholds import TABLE1_DEFAULT, TABLE2_SETTINGS, ThresholdSet

__all__ = [
    "VFOperatingPoint",
    "VFTable",
    "LinkPowerModel",
    "RegulatorModel",
    "transition_energy",
    "ChannelPhase",
    "DVSChannel",
    "TransitionTiming",
    "EWMAPredictor",
    "WindowSampler",
    "DVSAction",
    "DVSPolicy",
    "PolicyInputs",
    "HistoryDVSPolicy",
    "AlwaysMaxPolicy",
    "StaticLevelPolicy",
    "LinkUtilizationOnlyPolicy",
    "AdaptiveThresholdPolicy",
    "PortDVSController",
    "ThresholdSet",
    "TABLE1_DEFAULT",
    "TABLE2_SETTINGS",
    "ControllerHardwareModel",
]
