"""Simulation state auditing.

:func:`audit` cross-checks the redundant state the simulator maintains —
credit counters against actual downstream buffer occupancy plus in-flight
flits and credits, occupancy trackers against buffer lengths, VC ownership
flags against packet state — and returns a list of human-readable
violations (empty when the state is consistent).

This is a debugging and testing aid, deliberately O(network + event queue)
per call; the test suite runs it at random points of randomized
simulations, turning the whole simulator into a property under test.
"""

from __future__ import annotations

from ..core.dvs_link import ChannelPhase
from .engine import SimulationEngine
from .router import EVENT_ARRIVAL, EVENT_CREDIT, EVENT_PHASE
from .vc import UNROUTED


def audit(simulator: SimulationEngine) -> list[str]:
    """Return all invariant violations found in *simulator*'s state."""
    violations: list[str] = []
    violations.extend(_audit_occupancy(simulator))
    violations.extend(_audit_credits(simulator))
    violations.extend(_audit_vc_state(simulator))
    violations.extend(_audit_channels(simulator))
    violations.extend(_audit_event_counters(simulator))
    return violations


def _in_flight(simulator: SimulationEngine):
    """(arrivals, credits) keyed by their destination coordinates."""
    arrivals: dict[tuple[int, int, int], int] = {}
    credits: dict[tuple[int, int, int], int] = {}
    for _cycle, event in simulator.iter_scheduled_events():
        if event[0] == EVENT_ARRIVAL:
            key = (event[1], event[2], event[3])  # node, port, vc
            arrivals[key] = arrivals.get(key, 0) + 1
        elif event[0] == EVENT_CREDIT:
            key = (event[1], event[2], event[3])  # node, out_port, vc
            credits[key] = credits.get(key, 0) + 1
    return arrivals, credits


def _audit_occupancy(simulator: SimulationEngine) -> list[str]:
    violations = []
    for router in simulator.routers:
        for port, tracker in enumerate(router.occupancy):
            if tracker is None:
                continue
            actual = sum(len(vc.buffer) for vc in router.in_vcs[port])
            if tracker.occupied != actual:
                violations.append(
                    f"node {router.node} port {port}: occupancy tracker says "
                    f"{tracker.occupied}, buffers hold {actual}"
                )
        buffered = sum(
            len(vc.buffer) for port_vcs in router.in_vcs for vc in port_vcs
        )
        if router.total_buffered != buffered:
            violations.append(
                f"node {router.node}: total_buffered {router.total_buffered} "
                f"!= actual {buffered}"
            )
    return violations


def _audit_credits(simulator: SimulationEngine) -> list[str]:
    """credits + downstream occupancy + in-flight flits + in-flight credits
    must equal the buffer capacity, per (channel, VC)."""
    violations = []
    arrivals, credit_events = _in_flight(simulator)
    for channel in simulator.channels:
        spec = channel.spec
        upstream = simulator.routers[spec.src_node]
        downstream = simulator.routers[spec.dst_node]
        state = upstream.credit_states[spec.src_port]
        for vc in range(upstream.vcs_per_port):
            held = len(downstream.in_vcs[spec.dst_port][vc].buffer)
            flying = arrivals.get((spec.dst_node, spec.dst_port, vc), 0)
            returning = credit_events.get((spec.src_node, spec.src_port, vc), 0)
            total = state.credits[vc] + held + flying + returning
            if total != state.capacity_per_vc:
                violations.append(
                    f"channel {spec.src_node}:{spec.src_port}->"
                    f"{spec.dst_node}:{spec.dst_port} vc {vc}: credits "
                    f"{state.credits[vc]} + held {held} + flying {flying} + "
                    f"returning {returning} != capacity {state.capacity_per_vc}"
                )
    return violations


def _audit_vc_state(simulator: SimulationEngine) -> list[str]:
    violations = []
    for router in simulator.routers:
        for port_vcs in router.in_vcs:
            for vc in port_vcs:
                if vc.out_port != UNROUTED and vc.out_port != router.local_port:
                    if vc.out_vc == UNROUTED:
                        violations.append(
                            f"node {router.node}: routed VC without output VC"
                        )
                if vc.out_port == UNROUTED and vc.buffer.flits:
                    head = vc.buffer.flits[0]
                    if not head.is_head:
                        violations.append(
                            f"node {router.node}: body flit at head of an "
                            "unrouted VC"
                        )
    return violations


def _audit_channels(simulator: SimulationEngine) -> list[str]:
    violations = []
    for channel in simulator.channels:
        dvs = channel.dvs
        if not 0 <= dvs.level <= dvs.table.max_level:
            violations.append(f"{channel!r}: level out of range")
        if dvs.is_steady and dvs.voltage_level != dvs.level:
            violations.append(
                f"{channel!r}: steady but voltage level {dvs.voltage_level} "
                f"!= frequency level {dvs.level}"
            )
        if dvs.locked != (dvs.phase is ChannelPhase.FREQUENCY_LOCK):
            violations.append(f"{channel!r}: locked flag out of sync with phase")
    return violations


def _audit_event_counters(simulator: SimulationEngine) -> list[str]:
    """The O(1) drain counters must agree with a full event-queue scan."""
    violations = []
    transport = arrivals = 0
    for _cycle, event in simulator.iter_scheduled_events():
        if event[0] != EVENT_PHASE:
            transport += 1
            if event[0] == EVENT_ARRIVAL:
                arrivals += 1
    if simulator._pending_transport != transport:
        violations.append(
            f"pending-transport counter {simulator._pending_transport} != "
            f"scanned {transport}"
        )
    if simulator._pending_arrivals != arrivals:
        violations.append(
            f"pending-arrival counter {simulator._pending_arrivals} != "
            f"scanned {arrivals}"
        )
    return violations
