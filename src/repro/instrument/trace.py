"""Structured event-trace recorder (JSONL).

Proof of the kernel/instrumentation seam: a new observable — a structured
log of every DVS state-machine boundary plus harness lifecycle marks —
added without touching :class:`~repro.network.engine.SimulationEngine`.
Attach it through the public API::

    simulator = Simulator(config)
    recorder = simulator.bus.attach(TraceRecorder("run.jsonl"))
    simulator.run()
    recorder.close()

or from the shell: ``python -m repro run --trace run.jsonl``.

Each line is one JSON object. ``{"event": "transition", "kind":
"ramp_start", ...}`` records a voltage ramp beginning (exactly the
transitions the power accountant counts); ``"kind": "phase_end"`` records
a ramp settling or a frequency re-lock completing; ``{"event": "mark"}``
records measurement-phase boundaries.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ConfigError
from .bus import Observer, TransitionEvent


class TraceRecorder(Observer):
    """Logs DVS transitions and lifecycle marks to JSONL (or memory).

    With ``path=None`` the records are only kept in :attr:`records`,
    which is handy for tests and interactive use; with a path they are
    additionally written one JSON object per line on :meth:`close` (or
    when leaving a ``with`` block).
    """

    __slots__ = ("path", "records", "_closed")

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        if self.path is not None and not self.path.parent.is_dir():
            # Fail before the simulation runs, not at close() afterwards.
            raise ConfigError(
                f"trace directory does not exist: {self.path.parent}"
            )
        self.records: list[dict] = []
        self._closed = False

    # -- bus hooks -------------------------------------------------------

    def on_transition(self, event: TransitionEvent) -> None:
        self.records.append(
            {
                "event": "transition",
                "kind": event.kind,
                "cycle": event.cycle,
                "channel": event.channel,
                "phase": event.phase,
                "level": event.level,
                "voltage_level": event.voltage_level,
                "target_level": event.target_level,
            }
        )

    def on_mark(self, label: str, cycle: int) -> None:
        self.records.append({"event": "mark", "label": label, "cycle": cycle})

    # -- convenience -----------------------------------------------------

    def ramp_starts(self) -> list[dict]:
        """The recorded voltage-ramp starts (the accountant's transitions)."""
        return [r for r in self.records if r.get("kind") == "ramp_start"]

    def close(self) -> None:
        """Write the JSONL file (if a path was given); idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.path is None:
            return
        with self.path.open("w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record) + "\n")

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """Load a JSONL trace back into a list of records."""
        records = []
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if line.strip():
                records.append(json.loads(line))
        return records
