"""Decorator-based DVS policy registry.

Every policy the simulator can run is described by one
:class:`PolicySpec`: a name, a human-readable description, a tuple of
:class:`PolicyKnob` parameter declarations (bounds, defaults and the
knob-sweep grid the Pareto explorer uses), and a factory that builds the
per-port policy object from a :class:`~repro.config.DVSControlConfig`
plus a :class:`PolicyBuildContext`.

The registry is the single source of truth for "which policies exist":

* :class:`~repro.config.DVSControlConfig` validates its ``policy`` name
  and per-policy ``params`` against the registered schema at construction
  time (no more hardcoded ``POLICY_NAMES`` tuple, no more mid-run
  failures for an out-of-range static level);
* :class:`~repro.network.engine.SimulationEngine` builds per-port policy
  objects through :func:`build_policy` instead of an if/else ladder;
* the CLI derives its ``--policy`` choices, the ``repro policies``
  listing and the Pareto knob grids from :func:`registered_policies` /
  :func:`policy_sweep_grid`;
* output tables and figure legends derive their labels from
  :func:`policy_label`.

Builtin policies register themselves on import of
:mod:`repro.core.policy` (the paper's policies) and
:mod:`repro.core.policy_zoo` (the competitor policies); both imports are
performed lazily by :func:`_ensure_builtins` so this module stays free of
import cycles with :mod:`repro.config`.

Third-party plugins register the same way::

    from repro.core.registry import PolicyKnob, register_policy

    @register_policy(
        "my_policy",
        description="...",
        knobs=(PolicyKnob("gain", default=1.0, minimum=0.0, sweep=(0.5, 2.0)),),
    )
    def _build_my_policy(dvs, context):
        return MyPolicy(gain=knob_values(dvs)["gain"])

See ``docs/policies.md`` for the full plugin how-to, including the purity
rules enforced by lint rule R8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..config import DVSControlConfig
    from .levels import VFTable
    from .policy import DVSPolicy


@dataclass(frozen=True, slots=True)
class PolicyKnob:
    """One JSON-serializable scalar parameter of a policy.

    Attributes:
        name: Knob name; doubles as the key in
            ``DVSControlConfig.params`` and, for the paper's policies, as
            the legacy config attribute it aliases (e.g. ``static_level``).
        default: Value used when neither ``params`` nor a legacy config
            attribute provides one.
        minimum: Inclusive lower bound, or ``None`` for unbounded.
        maximum: Inclusive upper bound, or ``None`` for unbounded.
        integer: Whether the knob must hold an integral value.
        level_indexed: Whether the knob indexes the V/F table — validated
            against the actual table size at
            :class:`~repro.config.SimulationConfig` construction.
        sweep: The knob-grid values the Pareto explorer sweeps; an empty
            tuple pins the knob to its default during sweeps.
        description: One-line human description for listings and docs.
    """

    name: str
    default: float = 0.0
    minimum: float | None = None
    maximum: float | None = None
    integer: bool = False
    level_indexed: bool = False
    sweep: tuple[float, ...] = ()
    description: str = ""

    def validate(self, policy: str, value: float, *, levels: int | None = None) -> None:
        """Raise :class:`ConfigError` when *value* is illegal for this knob."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigError(
                f"policy {policy!r} knob {self.name!r} must be a number, "
                f"got {value!r}"
            )
        if self.integer and float(value) != int(value):
            raise ConfigError(
                f"policy {policy!r} knob {self.name!r} must be an integer, "
                f"got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise ConfigError(
                f"policy {policy!r} knob {self.name!r} = {value!r} below "
                f"minimum {self.minimum!r}"
            )
        if self.maximum is not None and value > self.maximum:
            raise ConfigError(
                f"policy {policy!r} knob {self.name!r} = {value!r} above "
                f"maximum {self.maximum!r}"
            )
        if self.level_indexed and levels is not None and value > levels - 1:
            raise ConfigError(
                f"policy {policy!r} knob {self.name!r} = {value!r} outside "
                f"the {levels}-level V/F table [0, {levels - 1}]"
            )

    def describe(self) -> str:
        bounds = ""
        if self.minimum is not None or self.maximum is not None:
            low = "-inf" if self.minimum is None else f"{self.minimum:g}"
            high = "+inf" if self.maximum is None else f"{self.maximum:g}"
            bounds = f" in [{low}, {high}]"
        return f"{self.name}={self.default:g}{bounds}"


@dataclass(frozen=True, slots=True)
class PolicyBuildContext:
    """What the engine knows at policy-construction time.

    Attributes:
        table: The channel's V/F table (``None`` in table-free unit tests;
            factories needing it must handle the fallback).
        channel_index: Topology channel id of the port this policy will
            control — lets seeded policies decorrelate their streams per
            port while staying deterministic across backends.
        window_cycles: The controller's history-window length in router
            cycles.
    """

    table: "VFTable | None" = None
    channel_index: int = 0
    window_cycles: int = 200


PolicyFactory = Callable[["DVSControlConfig", PolicyBuildContext], "DVSPolicy"]


@dataclass(frozen=True, slots=True)
class PolicySpec:
    """Registry entry describing one DVS policy plugin."""

    name: str
    description: str
    knobs: tuple[PolicyKnob, ...] = ()
    factory: PolicyFactory | None = None
    #: Whether the policy reads ``DVSControlConfig.thresholds``.
    uses_thresholds: bool = False
    #: Whether the policy may issue SLEEP/WAKE actions (the CI smoke runs
    #: these under the sanitizer's sleep-state checks).
    controls_sleep: bool = False

    def knob(self, name: str) -> PolicyKnob | None:
        for knob in self.knobs:
            if knob.name == name:
                return knob
        return None

    def describe(self) -> str:
        knobs = ", ".join(knob.describe() for knob in self.knobs) or "no knobs"
        return f"{self.name}({knobs})"


_REGISTRY: dict[str, PolicySpec] = {}
_BUILTINS_LOADED = False


def register_policy(
    name: str,
    *,
    description: str,
    knobs: tuple[PolicyKnob, ...] = (),
    uses_thresholds: bool = False,
    controls_sleep: bool = False,
) -> Callable[[PolicyFactory], PolicyFactory]:
    """Decorator registering *factory* as the builder for policy *name*."""
    seen = set()
    for knob in knobs:
        if knob.name in seen:
            raise ConfigError(f"policy {name!r} declares knob {knob.name!r} twice")
        seen.add(knob.name)

    def decorate(factory: PolicyFactory) -> PolicyFactory:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.factory is not factory:
            qual = getattr(factory, "__qualname__", None)
            existing_qual = getattr(existing.factory, "__qualname__", None)
            if qual is None or qual != existing_qual:
                raise ConfigError(f"policy {name!r} is already registered")
        _REGISTRY[name] = PolicySpec(
            name=name,
            description=description,
            knobs=knobs,
            factory=factory,
            uses_thresholds=uses_thresholds,
            controls_sleep=controls_sleep,
        )
        return factory

    return decorate


def register_null_policy(name: str, *, description: str) -> None:
    """Register a policy name that builds no controller at all (``none``)."""
    if name not in _REGISTRY:
        _REGISTRY[name] = PolicySpec(name=name, description=description)


def _ensure_builtins() -> None:
    """Import the builtin policy modules exactly once (registration side
    effect); deferred so ``config -> registry -> policy`` stays acyclic."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from . import policy as _policy  # noqa: F401
        from . import policy_zoo as _policy_zoo  # noqa: F401


def registered_policies() -> tuple[str, ...]:
    """All registered policy names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_policy_spec(name: str) -> PolicySpec:
    """The spec for *name*, or a :class:`ConfigError` listing the registry."""
    _ensure_builtins()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigError(
            f"unknown policy {name!r}; registered policies:\n{describe_registry()}"
        )
    return spec


def describe_registry() -> str:
    """One line per registered policy: name, knobs (with bounds), summary."""
    _ensure_builtins()
    lines = []
    for name in sorted(_REGISTRY):
        spec = _REGISTRY[name]
        lines.append(f"  {spec.describe()} — {spec.description}")
    return "\n".join(lines)


def knob_values(dvs: "DVSControlConfig") -> dict[str, float]:
    """Resolved knob values for *dvs*: ``params`` override, then the legacy
    config attribute of the same name, then the knob default."""
    spec = get_policy_spec(dvs.policy)
    values: dict[str, float] = {}
    for knob in spec.knobs:
        if knob.name in dvs.params:
            value = dvs.params[knob.name]
        else:
            value = getattr(dvs, knob.name, knob.default)
        values[knob.name] = int(value) if knob.integer else float(value)
    return values


def validate_dvs_config(dvs: "DVSControlConfig", *, levels: int | None = None) -> None:
    """Validate *dvs* against the registry schema.

    Called from ``DVSControlConfig.__post_init__`` (``levels=None``: knob
    bounds only) and again from ``SimulationConfig.__post_init__`` with
    the actual link table size so level-indexed knobs are rejected at
    config time rather than mid-run.
    """
    spec = get_policy_spec(dvs.policy)
    known = {knob.name for knob in spec.knobs}
    for name in sorted(dvs.params):
        if name not in known:
            knobs = ", ".join(sorted(known)) or "none"
            raise ConfigError(
                f"policy {dvs.policy!r} has no knob {name!r} "
                f"(declared knobs: {knobs}); registered policies:\n"
                f"{describe_registry()}"
            )
    # Validate the raw values, not the resolved ones: knob_values()
    # int-casts integer knobs, which would let 2.5 truncate to 2 here.
    for knob in spec.knobs:
        if knob.name in dvs.params:
            value = dvs.params[knob.name]
        else:
            value = getattr(dvs, knob.name, knob.default)
        knob.validate(dvs.policy, value, levels=levels)


def build_policy(
    dvs: "DVSControlConfig",
    context: PolicyBuildContext | None = None,
) -> "DVSPolicy":
    """Build the per-port policy object for *dvs* via its registered factory."""
    spec = get_policy_spec(dvs.policy)
    if spec.factory is None:
        raise ConfigError(f"policy {dvs.policy!r} builds no controller")
    if context is None:
        context = PolicyBuildContext()
    return spec.factory(dvs, context)


def policy_label(dvs: "DVSControlConfig") -> str:
    """Short display label: policy name plus its non-default knob values.

    ``history`` stays ``history``; a static policy pinned at level 3
    renders as ``static(static_level=3)``. Output tables and figure
    legends use this instead of hardcoded strings, so new plugins render
    correctly without touching harness or CLI code.
    """
    spec = get_policy_spec(dvs.policy)
    values = knob_values(dvs)
    parts = []
    for knob in spec.knobs:
        value = values[knob.name]
        if value != knob.default:
            rendered = f"{int(value)}" if knob.integer else f"{value:g}"
            parts.append(f"{knob.name}={rendered}")
    if not parts:
        return spec.name
    return f"{spec.name}({', '.join(parts)})"


def policy_sweep_grid(name: str) -> list[dict[str, float]]:
    """The declared knob grid for *name*: the cartesian product of every
    knob's ``sweep`` values (knobs without a sweep stay at their default).

    Always non-empty — a knob-free policy contributes the single default
    assignment ``{}``.
    """
    spec = get_policy_spec(name)
    grid: list[dict[str, float]] = [{}]
    for knob in spec.knobs:
        if not knob.sweep:
            continue
        grid = [
            {**assignment, knob.name: value}
            for assignment in grid
            for value in knob.sweep
        ]
    return grid


def _reset_registry_for_tests(
    snapshot: Mapping[str, PolicySpec] | None = None,
) -> dict[str, PolicySpec]:
    """Swap the registry content (test helper); returns the previous state."""
    previous = dict(_REGISTRY)
    if snapshot is not None:
        _REGISTRY.clear()
        _REGISTRY.update(snapshot)
    return previous


# ``field`` is re-exported for plugin modules that declare knob tuples in
# dataclasses of their own; referencing it here also keeps linters honest
# about the import.
__all__ = [
    "PolicyKnob",
    "PolicyBuildContext",
    "PolicyFactory",
    "PolicySpec",
    "register_policy",
    "register_null_policy",
    "registered_policies",
    "get_policy_spec",
    "describe_registry",
    "knob_values",
    "validate_dvs_config",
    "build_policy",
    "policy_label",
    "policy_sweep_grid",
    "field",
]
