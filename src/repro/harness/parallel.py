"""Multi-process sweep execution.

Rate sweeps and policy comparisons are embarrassingly parallel — every
point is an independent simulation — and the pure-Python simulator is
single-core, so a process pool cuts wall-clock nearly linearly. This
module mirrors :mod:`repro.harness.sweep`'s interface with a
``processes`` knob; since the backend unification both modules share the
same :class:`~repro.harness.backends.ExecutionBackend` machinery, so
these wrappers only translate the knob into a backend.

Determinism: each point is fully described by its (picklable, frozen)
:class:`~repro.config.SimulationConfig`, so parallel results are
bit-identical to serial ones, point for point.

Resilience: the pool isolates worker crashes (the lost chunks are
resubmitted to a respawned pool), retries raising points under *retry*
(a :class:`~repro.harness.resilience.RetryPolicy`), and checkpoints each
completed chunk to the sweep cache, so an interrupted parallel campaign
resumes from disk — see :mod:`repro.harness.resilience`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import DVSControlConfig, SimulationConfig
from ..errors import ExperimentError
from .backends import make_backend
from .resilience import FailureReport, RetryPolicy
from .sweep import SweepPoint, compare_policies, rate_sweep


def parallel_rate_sweep(
    base_config: SimulationConfig,
    rates: Sequence[float],
    *,
    processes: int = 4,
    chunksize: int | None = None,
    retry: Optional[RetryPolicy] = None,
    resume: bool = False,
    failures: Optional[FailureReport] = None,
) -> list[SweepPoint]:
    """:func:`repro.harness.sweep.rate_sweep`, across processes."""
    if processes < 1:
        raise ExperimentError("need at least one process")
    backend = make_backend(processes, chunksize=chunksize, retry=retry)
    return rate_sweep(
        base_config, rates, backend=backend, resume=resume, failures=failures
    )


def parallel_compare_policies(
    base_config: SimulationConfig,
    rates: Sequence[float],
    policies: dict[str, DVSControlConfig],
    *,
    processes: int = 4,
    chunksize: int | None = None,
    retry: Optional[RetryPolicy] = None,
    resume: bool = False,
    failures: Optional[FailureReport] = None,
) -> dict[str, list[SweepPoint]]:
    """:func:`repro.harness.sweep.compare_policies`, across processes."""
    if processes < 1:
        raise ExperimentError("need at least one process")
    if not policies:
        raise ExperimentError("need at least one policy")
    backend = make_backend(processes, chunksize=chunksize, retry=retry)
    return compare_policies(
        base_config,
        rates,
        policies,
        backend=backend,
        resume=resume,
        failures=failures,
    )
