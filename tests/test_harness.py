"""Tests for the harness: scales, tables, serialization, sweeps."""

import dataclasses
import json

import pytest

from repro.errors import ExperimentError
from repro.harness.scales import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    get_scale,
)
from repro.harness.serialization import to_json, write_json
from repro.harness.sweep import (
    SweepComparison,
    SweepPoint,
    summarize_comparison,
)
from repro.harness.tables import render_table


class TestScales:
    def test_presets_exist(self):
        assert PAPER_SCALE.voltage_transition_s == 10.0e-6
        assert PAPER_SCALE.frequency_transition_link_cycles == 100
        assert PAPER_SCALE.average_task_duration_s == 1.0e-3
        assert DEFAULT_SCALE.radix == 8
        assert SMOKE_SCALE.radix == 4

    def test_timescale_hierarchy_preserved(self):
        """Each preset keeps window << transition << task << horizon."""
        for scale in (PAPER_SCALE, DEFAULT_SCALE, SMOKE_SCALE):
            transition = scale.voltage_transition_s * 1.0e9  # cycles at 1 GHz
            task = scale.average_task_duration_s * 1.0e9
            assert 200 <= transition
            assert transition < task
            assert task <= scale.measure_cycles * 10

    def test_get_scale(self):
        assert get_scale("paper") is PAPER_SCALE
        assert get_scale("default") is DEFAULT_SCALE
        with pytest.raises(ExperimentError):
            get_scale("huge")

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale() is SMOKE_SCALE

    def test_simulation_builder(self):
        config = SMOKE_SCALE.simulation(0.5)
        assert config.network.radix == 4
        assert config.workload.injection_rate == 0.5
        assert config.dvs.policy == "history"

    def test_simulation_overrides(self):
        config = SMOKE_SCALE.simulation(
            0.5,
            policy="none",
            workload_overrides={"average_tasks": 7},
            link_overrides={"voltage_transition_s": 5.0e-6},
        )
        assert config.dvs.policy == "none"
        assert config.workload.average_tasks == 7
        assert config.link.voltage_transition_s == 5.0e-6

    def test_shrink(self):
        smaller = DEFAULT_SCALE.shrink(0.5)
        assert smaller.measure_cycles == DEFAULT_SCALE.measure_cycles // 2
        with pytest.raises(ExperimentError):
            DEFAULT_SCALE.shrink(2.0)


class TestRenderTable:
    def test_basic(self):
        text = render_table(["a", "b"], [(1, 2.5), (10, 0.001)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_nan(self):
        text = render_table(["x"], [(float("nan"),)])
        assert "nan" in text

    def test_width_mismatch(self):
        with pytest.raises(ExperimentError):
            render_table(["a"], [(1, 2)])

    def test_no_columns(self):
        with pytest.raises(ExperimentError):
            render_table([], [])


class TestSerialization:
    def test_dataclass_round_trip(self, tmp_path):
        point = SweepPoint(
            target_rate=1.0,
            offered_rate=0.9,
            accepted_rate=0.85,
            mean_latency=float("nan"),
            median_latency=40.0,
            normalized_power=0.25,
            savings_factor=4.0,
            transition_count=17,
        )
        path = write_json(point, tmp_path / "point.json")
        loaded = json.loads(path.read_text())
        assert loaded["target_rate"] == 1.0
        assert loaded["mean_latency"] == "nan"
        assert loaded["transition_count"] == 17

    def test_nested_structures(self):
        data = {"list": [1, (2, 3)], "inf": float("inf"), "none": None}
        converted = to_json(data)
        assert converted == {"list": [1, [2, 3]], "inf": "inf", "none": None}

    def test_exotic_leaf_reprs(self):
        converted = to_json({"obj": object()})
        assert isinstance(converted["obj"], str)


def make_point(rate, latency, accepted, savings=3.0):
    return SweepPoint(
        target_rate=rate,
        offered_rate=rate,
        accepted_rate=accepted,
        mean_latency=latency,
        median_latency=latency,
        normalized_power=1.0 / savings,
        savings_factor=savings,
        transition_count=0,
    )


class TestSummarizeComparison:
    def test_headline_numbers(self):
        baseline = [
            make_point(0.1, 50.0, 0.1, savings=1.0),
            make_point(0.5, 60.0, 0.5, savings=1.0),
            make_point(1.0, 300.0, 0.8, savings=1.0),
        ]
        dvs = [
            make_point(0.1, 55.0, 0.1, savings=5.0),
            make_point(0.5, 75.0, 0.5, savings=4.0),
            make_point(1.0, 500.0, 0.75, savings=3.0),
        ]
        summary = summarize_comparison(baseline, dvs)
        assert summary.zero_load_increase == pytest.approx(0.1)
        # Pre-saturation points: indexes 0 and 1 (baseline saturates at 2).
        assert summary.average_presaturation_increase == pytest.approx(
            (0.1 + 0.25) / 2
        )
        assert summary.throughput_change == pytest.approx(0.75 / 0.8 - 1.0)
        assert summary.max_savings == 5.0
        assert summary.average_savings == pytest.approx(4.5)

    def test_describe(self):
        baseline = [make_point(0.1, 50.0, 0.1, 1.0), make_point(0.5, 60.0, 0.5, 1.0)]
        dvs = [make_point(0.1, 60.0, 0.1, 4.0), make_point(0.5, 80.0, 0.5, 4.0)]
        text = summarize_comparison(baseline, dvs).describe()
        assert "power savings" in text

    def test_misaligned(self):
        with pytest.raises(ExperimentError):
            summarize_comparison([make_point(0.1, 50.0, 0.1)], [])

    def test_comparison_is_dataclass(self):
        assert dataclasses.is_dataclass(SweepComparison)

    def test_nan_zero_load_rejected(self):
        baseline = [make_point(0.1, float("nan"), 0.1)]
        dvs = [make_point(0.1, 50.0, 0.1)]
        with pytest.raises(ExperimentError):
            summarize_comparison(baseline, dvs)
