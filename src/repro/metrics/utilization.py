"""LU / BU / BA profiling probes (Figures 3, 4 and 5).

A :class:`UtilizationProbe` watches one channel and the input port it
feeds, sampling link utilization and input-buffer utilization every
``window_cycles`` (the paper profiles with H=50) and collecting the buffer
ages of departing flits. It reads the same cumulative counters the DVS
controller uses, so it can coexist with (or replace) a controller on the
same channel without interference.
"""

from __future__ import annotations

from ..core.dvs_link import DVSChannel
from ..errors import ConfigError
from ..network.flowcontrol import OccupancyTracker
from .histogram import Histogram


class UtilizationProbe:
    """Windowed LU/BU sampler plus a buffer-age tap for one channel."""

    __slots__ = (
        "channel",
        "tracker",
        "window_cycles",
        "buffer_capacity",
        "lu_samples",
        "bu_samples",
        "ages",
        "_last_busy",
        "_last_integral",
    )

    def __init__(
        self,
        channel: DVSChannel,
        tracker: OccupancyTracker,
        *,
        window_cycles: int = 50,
        buffer_capacity: int = 128,
    ):
        if window_cycles <= 0:
            raise ConfigError("probe window must be positive")
        if buffer_capacity <= 0:
            raise ConfigError("buffer capacity must be positive")
        self.channel = channel
        self.tracker = tracker
        self.window_cycles = window_cycles
        self.buffer_capacity = buffer_capacity
        self.lu_samples: list[float] = []
        self.bu_samples: list[float] = []
        self.ages: list[int] = []
        self._last_busy = 0.0
        self._last_integral = 0.0

    def on_age(self, age: int) -> None:
        """Router age hook: a flit of this port departed after *age* cycles."""
        self.ages.append(age)

    def close_window(self, now: int) -> None:
        """Record this window's LU and BU samples."""
        busy_total = self.channel.busy_cycles_total
        busy = busy_total - self._last_busy
        self._last_busy = busy_total
        self.lu_samples.append(min(1.0, busy / self.window_cycles))

        integral_total = self.tracker.cumulative_integral(now)
        integral = integral_total - self._last_integral
        self._last_integral = integral_total
        self.bu_samples.append(
            min(1.0, integral / (self.window_cycles * self.buffer_capacity))
        )

    def reset(self) -> None:
        """Drop collected samples (counters stay aligned)."""
        self.lu_samples.clear()
        self.bu_samples.clear()
        self.ages.clear()

    # -- summaries -------------------------------------------------------

    def lu_histogram(self, bins: int = 10) -> Histogram:
        histogram = Histogram(bins)
        for sample in self.lu_samples:
            histogram.add(sample)
        return histogram

    def bu_histogram(self, bins: int = 10) -> Histogram:
        histogram = Histogram(bins)
        for sample in self.bu_samples:
            histogram.add(sample)
        return histogram

    def age_histogram(self, bins: int = 10, max_age: int = 200) -> Histogram:
        histogram = Histogram(bins, low=0.0, high=float(max_age))
        for age in self.ages:
            histogram.add(float(age))
        return histogram

    def mean_lu(self) -> float:
        return sum(self.lu_samples) / len(self.lu_samples) if self.lu_samples else 0.0

    def mean_bu(self) -> float:
        return sum(self.bu_samples) / len(self.bu_samples) if self.bu_samples else 0.0

    def mean_age(self) -> float:
        return sum(self.ages) / len(self.ages) if self.ages else 0.0
