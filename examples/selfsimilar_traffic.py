#!/usr/bin/env python3
"""Explore the paper's two-level self-similar workload model.

Generates the Section 4.3 workload standalone (no network simulation),
shows its spatial variance across nodes (Figure 8), its temporal
burstiness at one router (Figure 9), and estimates the Hurst exponent to
confirm long-range dependence — contrasting it with Poisson traffic.

Run:  python examples/selfsimilar_traffic.py
"""

import random

from repro import Topology, WorkloadConfig
from repro.traffic.selfsim import hurst_rs, hurst_variance_time
from repro.traffic.tasks import TwoLevelWorkload
from repro.traffic.uniform import UniformRandomTraffic


def per_node_counts(workload, topology, horizon):
    counts = [0] * topology.node_count
    for now in range(horizon):
        for src, _dst in workload.injections(now):
            counts[src] += 1
    return counts


def windowed_counts(workload, node, window, windows):
    series = []
    count = 0
    for now in range(window * windows):
        count += sum(1 for src, _ in workload.injections(now) if src == node)
        if (now + 1) % window == 0:
            series.append(count)
            count = 0
    return series


def spatial_heatmap(counts, topology, horizon):
    peak = max(counts) or 1
    glyphs = " .:-=+*#%@"
    lines = []
    for y in range(topology.radix):
        row = ""
        for x in range(topology.radix):
            value = counts[topology.node_at((x, y))]
            row += glyphs[min(9, int(10 * value / (peak + 1)))] * 2
        lines.append(row)
    return "\n".join(lines)


def main() -> None:
    topology = Topology(8, 2)
    horizon = 40_000

    print("=== Spatial variance (Figure 8) ===")
    workload = TwoLevelWorkload(
        topology,
        WorkloadConfig(
            kind="two_level",
            injection_rate=1.0,
            average_tasks=50,
            average_task_duration_s=50.0e-6,
            onoff_sources_per_task=32,
            seed=11,
        ),
    )
    counts = per_node_counts(workload, topology, horizon)
    print(spatial_heatmap(counts, topology, horizon))
    mean = sum(counts) / len(counts)
    variance = sum((c - mean) ** 2 for c in counts) / len(counts)
    print(f"per-node packets: mean {mean:.0f}, std/mean {variance**0.5 / mean:.2f}\n")

    print("=== Temporal variance at the busiest node (Figure 9) ===")
    busiest = counts.index(max(counts))
    workload = TwoLevelWorkload(
        topology,
        WorkloadConfig(
            kind="two_level",
            injection_rate=1.0,
            average_tasks=50,
            average_task_duration_s=50.0e-6,
            onoff_sources_per_task=32,
            seed=11,
        ),
    )
    series = windowed_counts(workload, busiest, window=200, windows=60)
    peak = max(series) or 1
    for i in range(0, len(series), 2):
        bar = "#" * int(30 * series[i] / peak)
        print(f"cycle {i * 200:>6}: {bar}")
    print()

    print("=== Long-range dependence check ===")
    workload = TwoLevelWorkload(
        topology,
        WorkloadConfig(
            kind="two_level",
            injection_rate=1.0,
            average_tasks=50,
            average_task_duration_s=50.0e-6,
            onoff_sources_per_task=32,
            seed=3,
        ),
    )
    task_series = []
    count = 0
    for now in range(60_000):
        count += len(workload.injections(now))
        if (now + 1) % 50 == 0:
            task_series.append(count)
            count = 0

    uniform = UniformRandomTraffic(
        topology, WorkloadConfig(kind="uniform", injection_rate=1.0, seed=3)
    )
    poisson_series = []
    count = 0
    for now in range(60_000):
        count += len(uniform.injections(now))
        if (now + 1) % 50 == 0:
            poisson_series.append(count)
            count = 0

    print(f"{'':>22} {'R/S':>6} {'var-time':>9}")
    print(
        f"{'two-level workload':>22} {hurst_rs(task_series):>6.2f} "
        f"{hurst_variance_time(task_series):>9.2f}"
    )
    print(
        f"{'Poisson reference':>22} {hurst_rs(poisson_series):>6.2f} "
        f"{hurst_variance_time(poisson_series):>9.2f}"
    )
    print(
        "\nH > 0.5 marks long-range dependence: the two-level model preserves\n"
        "burstiness across time scales, as the paper's Section 4.3 requires."
    )


if __name__ == "__main__":
    main()
