"""DVS channel state machine.

Models one router-output *channel*: eight serial links sharing a single
adaptive power-supply regulator and a common frequency (paper Figure 1 and
Section 4.2). The state machine implements the paper's transition
sequencing (Section 2, Figure 2):

* **Speeding up** (level ``L`` to ``L+1``): the supply voltage ramps first
  — a slow analog ramp, 10 us per adjacent level by default — during which
  the link keeps operating at the *old* frequency. Only then does the
  frequency synthesizer retune, which takes 100 link-clock cycles during
  which the receiver re-locks and the **link is dead**.
* **Slowing down** (level ``L`` to ``L-1``): frequency first (link dead for
  the lock time, measured in *old* link clocks), then the voltage ramps
  down while the link runs at the new, lower frequency.

Commands that arrive while a transition is in flight are rejected — a
voltage ramp spans ~50 history windows at the paper's parameters, so the
controlling policy simply re-evaluates later. Multi-step retargets chain
adjacent transitions automatically.

The channel also owns its own energy bookkeeping: steady-state power is
integrated over time at the phase-appropriate level (conservatively, the
*higher* of the two voltages during a ramp) and each voltage ramp is
charged the regulator overhead of paper Eq. (1).

Energy accumulators are **integer femtojoules**: every accrual converts
its float joule increment once through
:func:`repro.units.joules_to_femtojoules` and then adds integers. Integer
addition is associative, so two channels that accrued the same increments
in different groupings hold *exactly* equal totals — the property the
batched sweep kernel's class re-merging relies on (a re-merged member's
energy is reconstructed as ``survivor_total + integer_offset``, which is
only exact because no float rounding depends on the accumulation base).
The float ``*_energy_j`` views remain as derived properties.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import ConfigError, LinkStateError
from ..units import femtojoules_to_joules, joules_to_femtojoules, seconds_to_cycles
from .levels import VFOperatingPoint, VFTable
from .power_model import LinkPowerModel, RegulatorModel


class ChannelPhase(enum.Enum):
    """Phase of the DVS channel state machine."""

    STEADY = "steady"
    #: Supply voltage ramping between adjacent levels; link functional.
    VOLTAGE_RAMP = "voltage_ramp"
    #: Frequency synthesizer retuning / receiver re-locking; link dead.
    FREQUENCY_LOCK = "frequency_lock"
    #: Shutdown state below level 0: clocks gated, rail at the retention
    #: voltage, only leakage drawn; link dead until woken.
    SLEEP = "sleep"
    #: Waking from SLEEP: rail recharging to level 0 then receiver
    #: re-locking; link dead for the combined duration.
    WAKE = "wake"


@dataclass(frozen=True, slots=True)
class TransitionTiming:
    """Transition latencies of a DVS link (paper Section 2 defaults).

    Attributes:
        voltage_transition_s: Wall-clock time of a voltage ramp between
            *adjacent* levels (paper: 10 us).
        frequency_transition_link_cycles: Receiver lock time of a frequency
            retune, in link clock cycles of the frequency in effect when the
            retune starts (paper: 100 cycles).
    """

    voltage_transition_s: float = 10.0e-6
    frequency_transition_link_cycles: int = 100

    def __post_init__(self) -> None:
        if self.voltage_transition_s < 0.0:
            raise ConfigError("voltage transition time must be non-negative")
        if self.frequency_transition_link_cycles < 0:
            raise ConfigError("frequency transition cycles must be non-negative")

    def voltage_cycles(self, router_clock_hz: float) -> int:
        """Voltage ramp duration in router cycles."""
        return seconds_to_cycles(self.voltage_transition_s, router_clock_hz)

    def frequency_cycles(self, link_frequency_hz: float, router_clock_hz: float) -> int:
        """Frequency lock duration in router cycles, for a retune starting
        while the link runs at *link_frequency_hz*."""
        if link_frequency_hz <= 0.0:
            raise ConfigError("link frequency must be positive")
        return int(
            math.ceil(
                self.frequency_transition_link_cycles
                * router_clock_hz
                / link_frequency_hz
            )
        )


class DVSChannel:
    """One DVS-capable channel: shared-regulator serial links plus state.

    The simulator drives this object with three calls:

    * :meth:`request_level` — issued by the DVS controller at history-window
      boundaries; starts a transition if the channel is steady.
    * :meth:`on_phase_end` — advances the state machine when the scheduled
      phase boundary is reached; returns the next boundary cycle, if any.
    * :meth:`send_flit` — occupies the wire for one flit's serialization
      time and maintains busy-time accounting for link utilization.
    """

    __slots__ = (
        "table",
        "power_model",
        "regulator",
        "lanes",
        "router_clock_hz",
        "timing",
        "_level",
        "_voltage_level",
        "_target_level",
        "_phase",
        "_phase_end_cycle",
        "locked",
        "busy_until",
        "busy_cycles_total",
        "busy_window",
        "flits_sent",
        "transition_count",
        "transition_energy_fj",
        "link_energy_fj",
        "dead_cycles",
        "_power_w",
        "_last_energy_cycle",
        "_serialization_cycles",
        "level_step_counts",
        "retention_voltage_v",
        "wake_lockout_cycles",
        "sleeping",
        "sleep_demand",
        "sleep_count",
        "sleep_cycles",
        "replay_count",
        "replay_energy_fj",
        "_sleep_lockout_until",
        "_sleep_started_cycle",
        "_wake_duration",
    )

    def __init__(
        self,
        table: VFTable,
        power_model: LinkPowerModel,
        regulator: RegulatorModel | None = None,
        *,
        lanes: int = 8,
        router_clock_hz: float = 1.0e9,
        timing: TransitionTiming | None = None,
        initial_level: int | None = None,
        retention_voltage_v: float = 0.3,
        wake_lockout_cycles: int = 0,
    ) -> None:
        if lanes <= 0:
            raise ConfigError("a channel needs at least one lane")
        if router_clock_hz <= 0.0:
            raise ConfigError("router clock must be positive")
        if not 0.0 < retention_voltage_v < table.voltage(0):
            raise ConfigError(
                f"retention voltage {retention_voltage_v!r} must lie in "
                f"(0, {table.voltage(0)!r}) below the level-0 rail"
            )
        if wake_lockout_cycles < 0:
            raise ConfigError("wake lockout must be non-negative")
        self.table = table
        self.power_model = power_model
        self.regulator = regulator if regulator is not None else RegulatorModel()
        self.lanes = lanes
        self.router_clock_hz = router_clock_hz
        self.timing = timing if timing is not None else TransitionTiming()

        level = table.max_level if initial_level is None else initial_level
        if not 0 <= level <= table.max_level:
            raise ConfigError(f"initial level {level} out of range")
        self._level = level
        self._voltage_level = level
        self._target_level = level
        self._phase = ChannelPhase.STEADY
        self._phase_end_cycle: int | None = None
        #: Fast-path mirror of ``phase is FREQUENCY_LOCK`` (the router's hot
        #: loop reads this plain attribute instead of the phase property).
        self.locked = False

        self.busy_until = 0.0
        self.busy_cycles_total = 0.0
        #: Busy time accrued since the owning controller's last window
        #: close (the controller reads and zeroes it). Reset-based rather
        #: than differenced so a window's utilization is computed from the
        #: same float increments whatever the channel's earlier history —
        #: the exactness the batched kernel's class re-merging needs.
        self.busy_window = 0.0
        self.flits_sent = 0
        self.transition_count = 0
        self.transition_energy_fj = 0
        self.link_energy_fj = 0
        self.dead_cycles = 0
        self._power_w = self._steady_power_w(level)
        self._last_energy_cycle = 0
        self._serialization_cycles = table.serialization_ratio(level, router_clock_hz)
        #: Count of completed adjacent steps up/down, for diagnostics.
        self.level_step_counts = {"up": 0, "down": 0}

        #: Retention rail applied while asleep (leakage-only state).
        self.retention_voltage_v = retention_voltage_v
        #: Cycles after a wake completes during which re-sleep is refused.
        self.wake_lockout_cycles = wake_lockout_cycles
        #: Fast-path mirror of ``phase is SLEEP`` (router blocked paths
        #: read this plain attribute to record wake demand).
        self.sleeping = False
        #: Set by the routers when traffic wanted this channel while it
        #: slept; read and cleared by the port controller each window.
        self.sleep_demand = False
        self.sleep_count = 0
        self.sleep_cycles = 0
        #: Razor-style replay bookkeeping (see :meth:`charge_replay`).
        self.replay_count = 0
        self.replay_energy_fj = 0
        self._sleep_lockout_until = 0
        self._sleep_started_cycle = 0
        self._wake_duration = 0

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def level(self) -> int:
        """Level whose *frequency* is currently in effect."""
        return self._level

    @property
    def voltage_level(self) -> int:
        """Level whose *voltage* is currently applied (differs mid-ramp)."""
        return self._voltage_level

    @property
    def target_level(self) -> int:
        """Level the channel is heading toward (== level when steady)."""
        return self._target_level

    @property
    def phase(self) -> ChannelPhase:
        return self._phase

    @property
    def is_steady(self) -> bool:
        return self._phase is ChannelPhase.STEADY and self._level == self._target_level

    @property
    def functional(self) -> bool:
        """Whether the link can carry flits right now."""
        return not self.locked

    @property
    def serialization_cycles(self) -> float:
        """Router cycles one flit occupies the wire at the current level."""
        return self._serialization_cycles

    @property
    def pending_event_cycle(self) -> int | None:
        """Router cycle at which :meth:`on_phase_end` must be called next."""
        return self._phase_end_cycle

    @property
    def power_w(self) -> float:
        """Instantaneous channel power (all lanes) in watts."""
        return self._power_w

    @property
    def link_energy_j(self) -> float:
        """Integrated level-based link energy in joules (float view)."""
        return femtojoules_to_joules(self.link_energy_fj)

    @property
    def transition_energy_j(self) -> float:
        """Regulator transition overhead energy in joules (float view)."""
        return femtojoules_to_joules(self.transition_energy_fj)

    @property
    def replay_energy_j(self) -> float:
        """Replay retransmission energy in joules (float view)."""
        return femtojoules_to_joules(self.replay_energy_fj)

    @property
    def total_energy_fj(self) -> int:
        """Link plus transition energy, exact integer femtojoules."""
        return self.link_energy_fj + self.transition_energy_fj

    @property
    def total_energy_j(self) -> float:
        """Link energy integrated so far plus regulator transition overheads."""
        return femtojoules_to_joules(self.total_energy_fj)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def request_level(self, target_level: int, now: int) -> bool:
        """Ask the channel to move to *target_level*.

        Returns ``True`` if the request was accepted (a transition started
        or the channel is already there), ``False`` if the channel is
        mid-transition and the request was dropped — the paper's policy
        simply retries at a later history window.
        """
        target_level = self.table.clamp(target_level)
        if not self.is_steady:
            return False
        if target_level == self._level:
            return True
        self._target_level = target_level
        self._begin_step(now)
        return True

    def sleep_permitted(self, now: int) -> bool:
        """Whether :meth:`request_sleep` at *now* would be accepted.

        True exactly when the channel sits steady at level 0 and the
        post-wake lockout has expired — the acceptance predicate of
        :meth:`request_sleep`, exposed read-only so coordinators (e.g.
        the batched sweep kernel) can mirror the decision without
        mutating channel state.
        """
        return (
            self._phase is ChannelPhase.STEADY
            and self._level == self._target_level == 0
            and now >= self._sleep_lockout_until
        )

    def request_sleep(self, now: int) -> bool:
        """Enter the shutdown state below level 0 (Tsai-style link sleep).

        Legal only when the channel sits steady at level 0 and the
        post-wake lockout has expired; returns ``False`` (request dropped)
        otherwise. Entry is immediate — the link goes dead right away and
        the rail decay to the retention voltage is charged as one Eq. (1)
        transition — while the full latency cost is paid on the wake path.
        """
        if not self.sleep_permitted(now):
            return False
        self._accrue_energy(now)
        self.transition_energy_fj += joules_to_femtojoules(
            self.regulator.transition_energy_j(
                self.table.voltage(0), self.retention_voltage_v
            )
        )
        self.transition_count += 1
        self.sleep_count += 1
        self._phase = ChannelPhase.SLEEP
        self.locked = True
        self.sleeping = True
        self.sleep_demand = False
        self._power_w = self.power_model.sleep_power_w(
            self.retention_voltage_v, self.lanes
        )
        self._phase_end_cycle = None
        self._sleep_started_cycle = now
        return True

    def request_wake(self, now: int) -> bool:
        """Start waking a slept channel back to level 0.

        The rail recharges (one voltage-ramp time) and the receiver then
        re-locks; the link stays dead for the combined duration and the
        recharge is billed as one Eq. (1) transition plus level-0 power
        for the wake window.
        """
        if self._phase is not ChannelPhase.SLEEP:
            return False
        self._accrue_energy(now)
        self.sleep_cycles += now - self._sleep_started_cycle
        self.transition_energy_fj += joules_to_femtojoules(
            self.regulator.transition_energy_j(
                self.retention_voltage_v, self.table.voltage(0)
            )
        )
        self.transition_count += 1
        self._phase = ChannelPhase.WAKE
        self.locked = True
        self.sleeping = False
        self._power_w = self._steady_power_w(0)
        self._wake_duration = (
            max(1, self.timing.voltage_cycles(self.router_clock_hz))
            + self._frequency_lock_duration()
        )
        self._phase_end_cycle = now + self._wake_duration
        return True

    def force_level(self, level: int, now: int = 0) -> None:
        """Jump instantaneously to *level* (initialization / tests only)."""
        if not self.is_steady:
            raise LinkStateError("cannot force a level during a transition")
        level = self.table.clamp(level)
        self._accrue_energy(now)
        self._level = level
        self._voltage_level = level
        self._target_level = level
        self._serialization_cycles = self.table.serialization_ratio(
            level, self.router_clock_hz
        )
        self._power_w = self._steady_power_w(level)

    def on_phase_end(self, now: int) -> int | None:
        """Advance the state machine at a phase boundary.

        Must be called exactly at :attr:`pending_event_cycle`. Returns the
        next boundary cycle if the transition continues, else ``None``.
        """
        if self._phase_end_cycle is None:
            raise LinkStateError("no phase end is pending")
        if now != self._phase_end_cycle:
            raise LinkStateError(
                f"phase end expected at cycle {self._phase_end_cycle}, got {now}"
            )
        self._accrue_energy(now)
        going_up = self._target_level > self._level

        if self._phase is ChannelPhase.VOLTAGE_RAMP:
            if going_up:
                # Voltage reached the next level; now retune the frequency
                # (link dead, timed in old link clocks).
                self._voltage_level = self._level + 1
                self._start_frequency_lock(now)
            else:
                # Downward step complete: voltage has settled at the new level.
                self._voltage_level = self._level
                self._finish_step(now, step="down")
        elif self._phase is ChannelPhase.FREQUENCY_LOCK:
            self.dead_cycles += self._frequency_lock_duration()
            if going_up:
                # Frequency now matches the already-raised voltage.
                self._level += 1
                self._finish_step(now, step="up")
            else:
                # Frequency dropped; ramp the voltage down (link functional).
                self._level -= 1
                self._serialization_cycles = self.table.serialization_ratio(
                    self._level, self.router_clock_hz
                )
                self._start_voltage_ramp(now)
        elif self._phase is ChannelPhase.WAKE:
            # Rail recharged and receiver re-locked: back to steady level 0.
            self.dead_cycles += self._wake_duration
            self._sleep_lockout_until = now + self.wake_lockout_cycles
            self._power_w = self._steady_power_w(self._level)
            self._phase = ChannelPhase.STEADY
            self.locked = False
            self._phase_end_cycle = None
        else:
            raise LinkStateError("phase end fired while channel was steady")
        return self._phase_end_cycle

    # ------------------------------------------------------------------
    # Wire occupancy
    # ------------------------------------------------------------------

    def can_accept_flit(self, now: float) -> bool:
        """Whether a flit handed over at router cycle *now* can be taken.

        The channel interface includes a one-flit output staging register:
        a flit is accepted if its serialization can *start* within this
        router cycle (``busy_until < now + 1``), so a link whose per-flit
        occupancy is fractional (e.g. 1.33 router cycles) sustains its full
        rated bandwidth despite router-clock-aligned handovers.
        """
        return self.functional and self.busy_until < now + 1

    def send_flit(self, now: float) -> float:  # repro-hot
        """Accept one flit; return the cycle its serialization completes."""
        if self.locked:  # == not functional, without the property call
            raise LinkStateError("flit sent while link is locked out")
        if self.busy_until >= now + 1:
            raise LinkStateError(
                f"flit sent at {now} while wire busy until {self.busy_until}"
            )
        start = self.busy_until if self.busy_until > now else now
        occupancy = self._serialization_cycles
        self.busy_until = start + occupancy
        self.busy_cycles_total += occupancy
        self.busy_window += occupancy
        self.flits_sent += 1
        return self.busy_until

    def charge_replay(self, flits: int, now: float) -> None:
        """Charge a Razor-style replay penalty of *flits* retransmissions.

        Error-correction policies call this when their error model fires:
        the replayed flits re-occupy the wire (extending ``busy_until``, so
        downstream traffic sees real backpressure) and their switching
        energy is billed on top of the steady-state integration, which in
        this model is activity-independent.
        """
        if flits <= 0:
            return
        occupancy = flits * self._serialization_cycles
        start = self.busy_until if self.busy_until > now else now
        self.busy_until = start + occupancy
        self.busy_cycles_total += occupancy
        self.busy_window += occupancy
        self.replay_count += flits
        energy_fj = joules_to_femtojoules(
            self._power_w * (occupancy / self.router_clock_hz)
        )
        self.replay_energy_fj += energy_fj
        self.link_energy_fj += energy_fj

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------

    def finalize(self, now: int) -> None:
        """Integrate energy up to *now* (safe to call at any cycle).

        Transition starts pre-bill energy up to the phase start, which can
        sit a few cycles in the future when a flit is mid-wire; a finalize
        landing inside that pre-billed span (e.g. a series-window close
        during a DVS transition) is a no-op rather than an error.
        """
        if now < self._last_energy_cycle:
            return
        self._accrue_energy(now)
        if self._phase is ChannelPhase.SLEEP:
            # Account sleep time for a run ending mid-sleep (idempotent:
            # the start marker advances with the accounted span).
            self.sleep_cycles += now - self._sleep_started_cycle
            self._sleep_started_cycle = now

    def average_power_w(self, now: int) -> float:
        """Mean channel power from cycle 0 to *now* (finalizes bookkeeping)."""
        if now <= 0:
            return self._power_w
        self._accrue_energy(now)
        return self.total_energy_j / (now / self.router_clock_hz)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _steady_power_w(self, level: int) -> float:
        return self.power_model.channel_power_w(self.table, level, self.lanes)

    def _accrue_energy(self, now: int) -> None:
        if now < self._last_energy_cycle:
            raise LinkStateError(
                f"time ran backwards: {now} < {self._last_energy_cycle}"
            )
        elapsed = now - self._last_energy_cycle
        if elapsed:
            self.link_energy_fj += joules_to_femtojoules(
                self._power_w * (elapsed / self.router_clock_hz)
            )
            self._last_energy_cycle = now

    def _begin_step(self, now: int) -> None:
        """Start one adjacent-level step toward the target."""
        self._accrue_energy(now)
        # Never start a phase while a flit is mid-wire.
        start = max(now, int(math.ceil(self.busy_until)))
        if self._target_level > self._level:
            self._start_voltage_ramp(start, charge_to=self._level + 1)
        else:
            self._start_frequency_lock(start)

    def _start_voltage_ramp(self, now: int, charge_to: int | None = None) -> None:
        """Begin a voltage ramp; link stays functional.

        During the ramp the channel is conservatively billed at the higher
        of the two levels' voltages (the regulator holds the rail at or
        between them; billing high keeps the savings estimate pessimistic,
        matching the paper's "very conservative assumptions").
        """
        self._accrue_energy(now)
        if charge_to is not None:
            # Upward step: voltage heads to the next level's rail.
            high_level = charge_to
            low_voltage = self.table.voltage(self._voltage_level)
            high_voltage = self.table.voltage(charge_to)
        else:
            # Downward step: voltage falls from the old level's rail.
            high_level = self._voltage_level
            low_voltage = self.table.voltage(self._level)
            high_voltage = self.table.voltage(self._voltage_level)
        self.transition_energy_fj += joules_to_femtojoules(
            self.regulator.transition_energy_j(low_voltage, high_voltage)
        )
        self.transition_count += 1
        # Bill the ramp at the higher level's power point, at the frequency
        # currently in effect.
        self._power_w = self.lanes * self.power_model.power_w(
            VFOperatingPoint(
                frequency_hz=self.table.frequency(self._level),
                voltage_v=self.table.voltage(high_level),
            )
        )
        self._phase = ChannelPhase.VOLTAGE_RAMP
        self.locked = False
        duration = max(1, self.timing.voltage_cycles(self.router_clock_hz))
        self._phase_end_cycle = now + duration

    def _frequency_lock_duration(self) -> int:
        return max(
            1,
            self.timing.frequency_cycles(
                self.table.frequency(self._level), self.router_clock_hz
            ),
        )

    def _start_frequency_lock(self, now: int) -> None:
        self._accrue_energy(now)
        self._phase = ChannelPhase.FREQUENCY_LOCK
        self.locked = True
        self._phase_end_cycle = now + self._frequency_lock_duration()

    def _finish_step(self, now: int, step: str) -> None:
        self.level_step_counts[step] += 1
        self._voltage_level = self._level
        self._serialization_cycles = self.table.serialization_ratio(
            self._level, self.router_clock_hz
        )
        self._power_w = self._steady_power_w(self._level)
        self._phase = ChannelPhase.STEADY
        self.locked = False
        if self._level != self._target_level:
            self._begin_step(now)
        else:
            self._phase_end_cycle = None
