"""Beyond the paper: the same DVS policy under different workload models.

Motivates the paper's Section 4.3 workload design: uniform random traffic
(no spatial or temporal variance) and permutations (no temporal variance)
exercise the history-based policy differently from the two-level
self-similar model.
"""

from repro.harness.experiments import workload_comparison

from .common import emit, run_once, scale


def test_workload_comparison(benchmark):
    figure = run_once(benchmark, lambda: workload_comparison(scale(), rate=1.0))
    emit("workload_comparison", figure)
    results = figure.extras["results"]
    # Every workload still saves power under DVS.
    for name, result in results.items():
        assert result.power.normalized < 0.9, name
    # The flow-structured workloads (two-level, permutation) leave more
    # links idle than uniform traffic at equal offered load, so they save
    # at least as much power.
    assert (
        results["two_level"].power.normalized
        <= results["uniform"].power.normalized * 1.25
    )
