"""R9: interprocedural determinism taint.

R1 bans *direct* unseeded-randomness and wall-clock calls in
simulation-semantics code (``repro/network/``, ``repro/traffic/``,
``repro/core/``). R9 generalizes the contract through the call graph of
the shared :class:`~repro.analysis.model.ProjectModel`:

* a function anywhere in the file set that reads a nondeterminism
  source — the shared global RNG, the wall clock, ``os.environ``, or
  the filesystem — is *tainted* with that kind;
* taint propagates callee-to-caller to a fixed point, so a seeded-RNG
  leak hidden behind one (or five) helper calls is as visible as a
  direct call;
* a finding is reported at the call site inside scoped code where the
  taint crosses in, with the full witness chain down to the concrete
  source call in the message.

Direct ``rng``/``clock`` calls inside scoped files are *not* re-reported
(R1 already owns those); direct ``env``/``filesystem`` reads in scope are
new with R9 and are reported here. Pre-existing findings are tracked in
the committed baseline (see docs/static_analysis.md) rather than
suppressed inline.
"""

from __future__ import annotations

import ast
import dataclasses

from .model import (
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    Violation,
    dotted_name,
    nondeterminism_kind,
)

#: Path fragments selecting the files whose functions must stay clean.
TAINT_SCOPE = ("repro/network/", "repro/traffic/", "repro/core/")

_KIND_LABEL = {
    "rng": "unseeded randomness",
    "clock": "wall-clock time",
    "env": "environment state",
    "filesystem": "filesystem state",
}


@dataclasses.dataclass(frozen=True, slots=True)
class TaintSource:
    """One concrete nondeterminism read: where and what."""

    kind: str
    call: str
    path: str
    line: int

    def describe(self) -> str:
        return f"{self.call} at {self.path}:{self.line}"


def _direct_sources(function: FunctionInfo) -> tuple[TaintSource, ...]:
    sources: list[TaintSource] = []
    path = function.module.display_path
    for call in function.calls:
        classified = nondeterminism_kind(call.name, call.node)
        if classified is not None:
            kind, detail = classified
            sources.append(TaintSource(kind, detail, path, call.line))
    # ``os.environ[...]`` reads are subscripts, not calls.
    for node in ast.walk(function.node):
        if isinstance(node, ast.Subscript):
            name = dotted_name(node.value)
            if name in ("os.environ", "environ"):
                sources.append(
                    TaintSource("env", "os.environ[...]", path, node.lineno)
                )
    return tuple(sources)


class TaintAnalysis:
    """Fixed-point determinism taint over the project call graph."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        #: qualname -> sources introduced directly in that function.
        self.direct: dict[str, tuple[TaintSource, ...]] = {}
        #: qualname -> one witness source per taint kind (transitive).
        self.tainted: dict[str, dict[str, TaintSource]] = {}
        #: qualname -> kind -> callee qualname that carried the taint in
        #: (empty string for directly introduced taint).
        self.carrier: dict[str, dict[str, str]] = {}
        self._solve()

    def _solve(self) -> None:
        graph = self.model.call_graph()
        callers: dict[str, list[str]] = {}
        for caller, callees in graph.items():
            for callee in callees:
                callers.setdefault(callee, []).append(caller)

        worklist: list[str] = []
        for qualname, function in self.model.functions.items():
            sources = _direct_sources(function)
            self.direct[qualname] = sources
            if sources:
                kinds: dict[str, TaintSource] = {}
                carried: dict[str, str] = {}
                for source in sources:
                    kinds.setdefault(source.kind, source)
                    carried.setdefault(source.kind, "")
                self.tainted[qualname] = kinds
                self.carrier[qualname] = carried
                worklist.append(qualname)

        while worklist:
            current = worklist.pop()
            current_kinds = self.tainted.get(current, {})
            for caller in callers.get(current, ()):
                caller_kinds = self.tainted.setdefault(caller, {})
                caller_carriers = self.carrier.setdefault(caller, {})
                changed = False
                for kind, source in current_kinds.items():
                    if kind not in caller_kinds:
                        caller_kinds[kind] = source
                        caller_carriers[kind] = current
                        changed = True
                if changed:
                    worklist.append(caller)

    def witness_chain(self, qualname: str, kind: str, limit: int = 8) -> list[str]:
        """Callee chain from *qualname* down to the direct source."""
        chain: list[str] = []
        current = qualname
        for _ in range(limit):
            carrier = self.carrier.get(current, {}).get(kind)
            if not carrier:
                break
            chain.append(carrier)
            current = carrier
        return chain


def _in_scope(module: ModuleInfo) -> bool:
    return any(fragment in module.path for fragment in TAINT_SCOPE)


def check(model: ProjectModel) -> list[Violation]:
    """Run R9 over *model*; returns sorted violations."""
    analysis = TaintAnalysis(model)
    violations: list[Violation] = []
    for module in model.iter_modules():
        if not _in_scope(module):
            continue
        for function in module.functions.values():
            violations.extend(_check_function(model, analysis, function))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def _check_function(
    model: ProjectModel, analysis: TaintAnalysis, function: FunctionInfo
) -> list[Violation]:
    violations: list[Violation] = []
    path = function.module.display_path
    where = function.local_name

    # Direct env/filesystem reads in scope are R9 findings (R1 does not
    # cover them); direct rng/clock stays R1's report.
    reported_direct: set[tuple[str, int]] = set()
    for source in analysis.direct.get(function.qualname, ()):
        if source.kind in ("env", "filesystem"):
            key = (source.kind, source.line)
            if key in reported_direct:
                continue
            reported_direct.add(key)
            violations.append(
                Violation(
                    path, source.line, function.node.col_offset, "R9",
                    f"{where} reads {_KIND_LABEL[source.kind]} directly "
                    f"({source.call}); simulation-semantics code must be a "
                    "pure function of its seeded config",
                )
            )

    # Indirect taint: a call to a helper that is (transitively) tainted.
    # Only out-of-scope callees are reported here — a tainted helper
    # *inside* scope already carries its own R1/R9 finding at the root
    # cause, and repeating it at every caller would bury the signal.
    seen_edges: set[tuple[str, str]] = set()
    for call in function.calls:
        resolved = model.resolve_call(function, call)
        if resolved is None or resolved.qualname == function.qualname:
            continue
        if _in_scope(resolved.module):
            continue
        callee_kinds = analysis.tainted.get(resolved.qualname)
        if not callee_kinds:
            continue
        for kind in sorted(callee_kinds):
            source = callee_kinds[kind]
            edge = (resolved.qualname, kind)
            if edge in seen_edges:
                continue
            seen_edges.add(edge)
            chain = [resolved.qualname] + analysis.witness_chain(
                resolved.qualname, kind
            )
            via = " -> ".join(chain)
            violations.append(
                Violation(
                    path, call.line, call.col, "R9",
                    f"{where} reaches {_KIND_LABEL[kind]} through "
                    f"{via} ({source.describe()}); taint must not leak "
                    "into simulation-semantics code",
                )
            )
    return violations
