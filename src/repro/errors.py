"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch package failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration object is invalid or internally inconsistent."""


class TopologyError(ReproError):
    """A topology request cannot be satisfied (bad radix, unknown node...)."""


class RoutingError(ReproError):
    """A routing function produced or received an illegal route."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (a bug or misuse)."""


class FlowControlError(SimulationError):
    """Credit accounting was violated (overflow / negative credits)."""


class LinkStateError(ReproError):
    """An illegal command was issued to a DVS link state machine."""


class WorkloadError(ReproError):
    """A traffic generator was configured or driven incorrectly."""


class ExperimentError(ReproError):
    """An experiment harness invocation is invalid."""


class SweepExecutionError(ExperimentError):
    """One or more sweep points failed after retries were exhausted.

    ``failures`` carries the structured per-point records
    (:class:`~repro.harness.resilience.PointFailure`) so callers can
    report exactly which configs failed and why, instead of digging
    through an opaque worker traceback.
    """

    def __init__(self, message: str, failures: "tuple | list" = ()) -> None:
        super().__init__(message)
        self.failures = tuple(failures)


class DistributedError(ExperimentError):
    """The distributed sweep fabric hit a protocol or fabric-level fault.

    Raised for malformed or digest-mismatched wire frames, invalid
    coordinator/worker configuration, and fabric misuse. Per-point and
    per-host faults never surface as this — they degrade to
    :class:`~repro.harness.resilience.PointFailure` records instead.
    """


class ChaosError(ReproError):
    """A fault injected by the chaos harness (never raised in clean runs)."""
