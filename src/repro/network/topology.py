"""k-ary n-cube topology builder.

The paper's simulator "supports k-ary n-cube network topologies"
(Section 4.1); the evaluation uses a two-dimensional 8x8 **mesh** (radix 8,
dimension 2, no wraparound). This module builds either the mesh or the
torus (wraparound) variant for any radix/dimension, assigns port indices,
and enumerates the directed inter-router channels.

Port numbering convention: dimension ``d`` owns ports ``2d`` (the *plus*
direction, toward higher coordinate) and ``2d+1`` (the *minus* direction);
the local injection/ejection port is ``2n``. A flit leaving node A's plus-d
port arrives on node B's minus-d input port and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import TopologyError

Coordinates = tuple[int, ...]


@dataclass(frozen=True, slots=True)
class ChannelSpec:
    """One directed inter-router channel."""

    channel_id: int
    src_node: int
    src_port: int
    dst_node: int
    dst_port: int


class Topology:
    """A k-ary n-cube (mesh or torus) with port-indexed channels."""

    def __init__(self, radix: int, dimensions: int, *, wraparound: bool = False):
        if radix < 2:
            raise TopologyError(f"radix must be >= 2, got {radix}")
        if dimensions < 1:
            raise TopologyError(f"dimensions must be >= 1, got {dimensions}")
        if wraparound and radix == 2:
            # A 2-ary torus would create duplicate channels between the
            # same node pair (wrap == direct); treat it as a mesh.
            wraparound = False
        self.radix = radix
        self.dimensions = dimensions
        self.wraparound = wraparound
        self.node_count = radix**dimensions
        self.ports_per_router = 2 * dimensions
        self.local_port = 2 * dimensions

        self._coords = [self._compute_coords(n) for n in range(self.node_count)]
        self._neighbors = [
            [self._compute_neighbor(n, p) for p in range(self.ports_per_router)]
            for n in range(self.node_count)
        ]
        self._channels = self._enumerate_channels()

    # -- coordinates ------------------------------------------------------

    def _compute_coords(self, node: int) -> Coordinates:
        coords = []
        for _ in range(self.dimensions):
            coords.append(node % self.radix)
            node //= self.radix
        return tuple(coords)

    def coords(self, node: int) -> Coordinates:
        """Coordinates of *node*, lowest dimension first."""
        self._check_node(node)
        return self._coords[node]

    def node_at(self, coords: Sequence[int]) -> int:
        """Node id at *coords*."""
        if len(coords) != self.dimensions:
            raise TopologyError(
                f"expected {self.dimensions} coordinates, got {len(coords)}"
            )
        node = 0
        for dim in reversed(range(self.dimensions)):
            coord = coords[dim]
            if not 0 <= coord < self.radix:
                raise TopologyError(f"coordinate {coord} out of range")
            node = node * self.radix + coord
        return node

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.node_count:
            raise TopologyError(f"node {node} out of range [0, {self.node_count})")

    # -- adjacency ---------------------------------------------------------

    @staticmethod
    def plus_port(dim: int) -> int:
        """Output port toward higher coordinate in *dim*."""
        return 2 * dim

    @staticmethod
    def minus_port(dim: int) -> int:
        """Output port toward lower coordinate in *dim*."""
        return 2 * dim + 1

    @staticmethod
    def opposite_port(port: int) -> int:
        """The input port a flit from output *port* lands on."""
        return port ^ 1

    def _compute_neighbor(self, node: int, port: int) -> int | None:
        dim, is_minus = divmod(port, 2)
        coords = list(self._coords[node])
        delta = -1 if is_minus else 1
        coord = coords[dim] + delta
        if 0 <= coord < self.radix:
            coords[dim] = coord
            return self.node_at(coords)
        if self.wraparound:
            coords[dim] = coord % self.radix
            return self.node_at(coords)
        return None

    def neighbor(self, node: int, port: int) -> int | None:
        """Neighbor reached from *node* via output *port* (None at an edge)."""
        self._check_node(node)
        if not 0 <= port < self.ports_per_router:
            raise TopologyError(f"port {port} out of range")
        return self._neighbors[node][port]

    def router_ports(self, node: int) -> list[int]:
        """Output ports of *node* that have a neighbor attached."""
        self._check_node(node)
        return [
            p
            for p in range(self.ports_per_router)
            if self._neighbors[node][p] is not None
        ]

    # -- channels ----------------------------------------------------------

    def _enumerate_channels(self) -> tuple[ChannelSpec, ...]:
        specs = []
        channel_id = 0
        for node in range(self.node_count):
            for port in range(self.ports_per_router):
                neighbor = self._neighbors[node][port]
                if neighbor is None:
                    continue
                specs.append(
                    ChannelSpec(
                        channel_id=channel_id,
                        src_node=node,
                        src_port=port,
                        dst_node=neighbor,
                        dst_port=self.opposite_port(port),
                    )
                )
                channel_id += 1
        return tuple(specs)

    @property
    def channels(self) -> tuple[ChannelSpec, ...]:
        """All directed inter-router channels."""
        return self._channels

    @property
    def channel_count(self) -> int:
        return len(self._channels)

    # -- metrics ------------------------------------------------------------

    def distance(self, src: int, dst: int) -> int:
        """Minimal hop distance between *src* and *dst*."""
        self._check_node(src)
        self._check_node(dst)
        total = 0
        for a, b in zip(self._coords[src], self._coords[dst], strict=False):
            delta = abs(a - b)
            if self.wraparound:
                delta = min(delta, self.radix - delta)
            total += delta
        return total

    def average_distance(self) -> float:
        """Mean minimal hop distance over all ordered node pairs."""
        total = 0
        pairs = 0
        for src in range(self.node_count):
            for dst in range(self.node_count):
                if src != dst:
                    total += self.distance(src, dst)
                    pairs += 1
        return total / pairs

    def nodes_within(self, center: int, radius: int) -> list[int]:
        """Nodes (excluding *center*) within hop distance *radius*."""
        self._check_node(center)
        if radius < 0:
            raise TopologyError("radius must be non-negative")
        return [
            node
            for node in range(self.node_count)
            if node != center and self.distance(center, node) <= radius
        ]

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (edges carry channel ids)."""
        import networkx as nx

        graph = nx.DiGraph(radix=self.radix, dimensions=self.dimensions)
        graph.add_nodes_from(
            (node, {"coords": self._coords[node]}) for node in range(self.node_count)
        )
        for spec in self._channels:
            graph.add_edge(spec.src_node, spec.dst_node, channel_id=spec.channel_id)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "torus" if self.wraparound else "mesh"
        return (
            f"Topology({self.radix}-ary {self.dimensions}-cube {kind}, "
            f"{self.node_count} nodes, {self.channel_count} channels)"
        )
