"""Figure 17: sensitivity to the frequency transition (receiver lock) delay.

Paper shapes: with long tasks (panel a), frequency transition time only
adds latency overhead; with short tasks (panel b), slow transitions
degrade throughput because links respond too slowly to traffic changes.
Network *power* is much less sensitive to transition rates than latency.
"""

from repro.harness.experiments import fig17_frequency_transition_sweep

from .common import emit, run_once, scale

#: See bench_fig16: two rates bracket the sweep at default scale.
RATES = (0.5, 1.7)


def test_fig17a_long_tasks(benchmark):
    figure = run_once(
        benchmark,
        lambda: fig17_frequency_transition_sweep(scale(), panel="a", rates=RATES),
    )
    emit("fig17a_frequency_transition", figure)
    sweeps = figure.extras["sweeps"]
    # Faster locks never *hurt* much at the low rate: ft_10 within 2x of
    # ft_100 latency.
    assert sweeps["ft_10"][0].mean_latency < sweeps["ft_100"][0].mean_latency * 2.0


def test_fig17b_short_tasks(benchmark):
    figure = run_once(
        benchmark,
        lambda: fig17_frequency_transition_sweep(scale(), panel="b", rates=RATES),
    )
    emit("fig17b_frequency_transition", figure)
    sweeps = figure.extras["sweeps"]
    nodvs_top = sweeps["nodvs"][-1].accepted_rate
    # Under high temporal variance every DVS variant concedes throughput.
    for points in sweeps.values():
        assert points[-1].accepted_rate <= nodvs_top * 1.05


def test_fig17_power_less_sensitive_than_latency(benchmark):
    """Paper: 'network power is much less sensitive to varying transition
    rates than network latency and throughput'."""
    figure = run_once(
        benchmark,
        lambda: fig17_frequency_transition_sweep(scale(), panel="a", rates=(1.1,)),
    )
    sweeps = figure.extras["sweeps"]
    slow = sweeps["ft_100"][0]
    fast = sweeps["ft_10"][0]
    power_spread = abs(slow.normalized_power - fast.normalized_power) / max(
        slow.normalized_power, fast.normalized_power
    )
    print(f"\nFigure 17 power spread between ft variants: {power_spread:.1%}")
    assert power_spread < 0.5
