"""Closed-loop properties of controller + policy + channel, no network.

Emulates a constant-rate traffic source feeding one DVS channel: each
history window contributes ``rate * H`` flits' worth of busy time at the
channel's *current* serialization (capped at the window), which is exactly
what a backlogged or metered link would show. The control loop must then
satisfy basic stability properties whatever the rate.
"""

from hypothesis import given, settings, strategies as st

from repro.core.controller import PortDVSController
from repro.core.dvs_link import DVSChannel, TransitionTiming
from repro.core.levels import PAPER_TABLE
from repro.core.policy import HistoryDVSPolicy
from repro.core.power_model import PAPER_LINK_POWER
from repro.core.thresholds import TABLE1_DEFAULT


class ConstantRateLoop:
    """Drives one controller with synthetic constant-rate traffic."""

    def __init__(self, rate_flits_per_cycle: float, *, window: int = 200):
        self.rate = rate_flits_per_cycle
        self.window = window
        self.channel = DVSChannel(
            PAPER_TABLE,
            PAPER_LINK_POWER,
            timing=TransitionTiming(0.5e-6, 5),
        )
        self._occupancy_total = 0.0
        self.controller = PortDVSController(
            self.channel,
            HistoryDVSPolicy(),
            self,
            window_cycles=window,
            buffer_capacity=128,
        )
        self.now = 0

    def cumulative_integral(self, now: int) -> float:
        return self._occupancy_total

    def set_buffer_utilization(self, bu: float) -> None:
        """Make the next window observe *bu* (adds the right integral)."""
        self._occupancy_total += bu * self.window * 128

    def run_windows(self, count: int, *, bu: float = 0.0) -> None:
        for _ in range(count):
            self.now += self.window
            # Offered busy time at the current serialization, capped.
            busy = min(
                float(self.window),
                self.rate * self.window * self.channel.serialization_cycles,
            )
            self.channel.busy_cycles_total += busy
            self.channel.busy_window += busy
            self.set_buffer_utilization(bu)
            # Engine ordering: phase events fire at their exact cycle,
            # before any window closing at or after them.
            while (
                self.channel.pending_event_cycle is not None
                and self.channel.pending_event_cycle <= self.now
            ):
                self.channel.on_phase_end(self.channel.pending_event_cycle)
            self.controller.close_window(self.now)


class TestConvergence:
    def test_idle_sinks_to_bottom(self):
        loop = ConstantRateLoop(0.0)
        loop.run_windows(400)
        assert loop.channel.level == 0

    def test_saturating_rate_climbs_to_top(self):
        loop = ConstantRateLoop(1.0)  # one flit per cycle: LU = ser >= 1
        loop.run_windows(600)
        assert loop.channel.level == PAPER_TABLE.max_level

    def test_moderate_rate_settles_mid_table(self):
        # rate 0.1 f/c: LU in the [0.3, 0.4] band needs ser in [3, 4].
        loop = ConstantRateLoop(0.1)
        loop.run_windows(600)
        ser = loop.channel.serialization_cycles
        assert 2.0 <= ser <= 5.0

    def test_congested_band_tolerates_higher_lu(self):
        """Under congestion (high BU) the same rate settles slower."""
        light = ConstantRateLoop(0.13)
        light.run_windows(600, bu=0.1)
        congested = ConstantRateLoop(0.13)
        congested.run_windows(600, bu=0.9)
        assert congested.channel.level <= light.channel.level

    @settings(max_examples=25, deadline=None)
    @given(rate=st.floats(min_value=0.0, max_value=1.2))
    def test_no_persistent_overload(self, rate):
        """At any constant rate the loop never parks below the load: after
        settling, either the link is at max level or its utilization
        prediction is not persistently above the step-up threshold."""
        loop = ConstantRateLoop(rate)
        loop.run_windows(800)
        if loop.channel.level < PAPER_TABLE.max_level and loop.channel.is_steady:
            policy = loop.controller.policy
            t_low, t_high = TABLE1_DEFAULT.select(
                policy.predicted_buffer_utilization
            )
            # Mid-oscillation states are allowed; persistent overload at a
            # steady level is not (the policy would have stepped up).
            lu = policy.predicted_link_utilization
            assert lu <= t_high + 0.3

    @settings(max_examples=25, deadline=None)
    @given(rate=st.floats(min_value=0.0, max_value=1.2))
    def test_level_always_valid(self, rate):
        loop = ConstantRateLoop(rate)
        loop.run_windows(300)
        assert 0 <= loop.channel.level <= PAPER_TABLE.max_level
        assert loop.channel.transition_energy_j >= 0.0
