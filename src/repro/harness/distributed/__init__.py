"""Distributed sweep fabric: coordinator, workers, shared result store.

See :mod:`repro.harness.distributed.coordinator` for the execution
model (leases, heartbeats, work-stealing, degrade-to-local) and
``docs/architecture.md`` for the wire protocol.
"""

from __future__ import annotations

from .coordinator import DistributedBackend
from .protocol import (
    MAX_FRAME_BYTES,
    decode_payload,
    encode_frame,
    read_message,
    write_message,
)
from .store import ResultStoreServer, serve_result_store
from .worker import run_worker, run_worker_chunk

__all__ = [
    "DistributedBackend",
    "MAX_FRAME_BYTES",
    "ResultStoreServer",
    "decode_payload",
    "encode_frame",
    "read_message",
    "run_worker",
    "run_worker_chunk",
    "serve_result_store",
    "write_message",
]
