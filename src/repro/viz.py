"""Terminal visualization of network state.

Pure-text renderings (no plotting dependencies) used by examples and
debugging sessions: per-channel DVS-level heatmaps over the mesh, latency
sparklines, and level-residency bars. Everything returns a string; nothing
prints.
"""

from __future__ import annotations

from .errors import ConfigError
from .network.simulator import Simulator

#: Glyph ramp for 0..9 level intensity.
_LEVEL_GLYPHS = "0123456789"
_SPARK_GLYPHS = " .:-=+*#%@"


def level_grid(simulator: Simulator) -> str:
    """Per-router mean output-channel level over a 2-D mesh, as a grid.

    Each cell shows the rounded mean DVS level (0 = slowest, 9 = fastest)
    of the router's attached output channels; `.` marks routers whose
    channels are all absent (never happens on a mesh of radix >= 2).
    """
    topology = simulator.topology
    if topology.dimensions != 2:
        raise ConfigError("level_grid renders 2-D meshes only")
    by_node: dict[int, list[int]] = {}
    for channel in simulator.channels:
        by_node.setdefault(channel.spec.src_node, []).append(channel.dvs.level)
    lines = []
    for y in range(topology.radix):
        row = []
        for x in range(topology.radix):
            levels = by_node.get(topology.node_at((x, y)))
            if not levels:
                row.append(".")
            else:
                mean = sum(levels) / len(levels)
                row.append(_LEVEL_GLYPHS[min(9, int(round(mean)))])
        lines.append(" ".join(row))
    return "\n".join(lines)


def channel_level_heatmap(simulator: Simulator, *, direction: int = 0) -> str:
    """Levels of every channel pointing in one direction, as a grid.

    ``direction`` is the output port index (0 = +x, 1 = -x, 2 = +y, ...).
    Cells without such a channel (mesh edges) render as `.`.
    """
    topology = simulator.topology
    if topology.dimensions != 2:
        raise ConfigError("heatmaps render 2-D meshes only")
    if not 0 <= direction < topology.ports_per_router:
        raise ConfigError(f"direction {direction} out of range")
    levels = {
        channel.spec.src_node: channel.dvs.level
        for channel in simulator.channels
        if channel.spec.src_port == direction
    }
    lines = []
    for y in range(topology.radix):
        row = []
        for x in range(topology.radix):
            level = levels.get(topology.node_at((x, y)))
            row.append("." if level is None else _LEVEL_GLYPHS[level])
        lines.append(" ".join(row))
    return "\n".join(lines)


def sparkline(values, *, width: int = 60) -> str:
    """One-line sparkline of a numeric series (downsampled to *width*)."""
    values = list(values)
    if not values:
        raise ConfigError("nothing to render")
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    low = min(values)
    span = max(values) - low
    if span == 0.0:
        return _SPARK_GLYPHS[0] * len(values)
    return "".join(
        _SPARK_GLYPHS[min(9, int(10 * (v - low) / span))] for v in values
    )


def utilization_bars(simulator: Simulator, *, top: int = 10) -> str:
    """The *top* busiest channels by cumulative busy time, as bars."""
    ranked = sorted(
        simulator.channels, key=lambda ch: ch.dvs.busy_cycles_total, reverse=True
    )[:top]
    if not ranked:
        raise ConfigError("no channels")
    peak = ranked[0].dvs.busy_cycles_total or 1.0
    lines = ["busiest channels (cumulative busy cycles)"]
    for channel in ranked:
        spec = channel.spec
        bar = "#" * int(round(30 * channel.dvs.busy_cycles_total / peak))
        lines.append(
            f"  {spec.src_node:>3}:{spec.src_port} -> {spec.dst_node:>3}  "
            f"L{channel.dvs.level}  {bar}"
        )
    return "\n".join(lines)
