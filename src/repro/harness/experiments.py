"""Per-figure experiment functions (paper Section 4).

Each function regenerates one table or figure of the paper at a chosen
:class:`~repro.harness.scales.ExperimentScale` and returns a
:class:`FigureResult` whose rows mirror what the paper plots. Benchmarks in
``benchmarks/`` call these and print the rendered tables; EXPERIMENTS.md
records paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DVSControlConfig, SimulationConfig
from ..core.registry import policy_label
from ..core.thresholds import TABLE2_SETTINGS
from ..errors import ExperimentError
from ..network.topology import Topology
from ..power.router_power import RouterPowerProfile
from ..traffic.base import make_traffic
from .runner import build_simulator, run_simulation
from .scales import DEFAULT_SCALE, ExperimentScale
from .sweep import (
    SweepPoint,
    compare_policies,
    named_sweeps,
    rate_sweep,
    summarize_comparison,
)
from .tables import render_table


@dataclass(slots=True)
class FigureResult:
    """One reproduced table/figure: labelled rows plus free-form extras."""

    figure: str
    description: str
    columns: list[str]
    rows: list[tuple]
    extras: dict = field(default_factory=dict)

    def render(self) -> str:
        return render_table(
            self.columns, self.rows, title=f"{self.figure}: {self.description}"
        )


# ---------------------------------------------------------------------------
# Figures 3-5: utilization profiles
# ---------------------------------------------------------------------------


def utilization_profiles(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    loads: tuple[float, ...] = (0.2, 0.8, 1.6, 3.0),
    probe_window: int = 50,
    bins: int = 10,
) -> dict[float, dict]:
    """Profile LU / BU / BA of the busiest link as load increases.

    Matches the paper's methodology (Section 3.1): links run at full speed
    (no DVS) while probes sample every 50 cycles, and the reported profile
    is that of the single most-utilized channel — the paper "tracks the
    utilization of a link", necessarily one that carries traffic, and our
    flow-based task workload leaves arbitrary fixed links idle. The
    highest load should sit well past saturation so Figure 3(d)'s
    utilization dip (stalls behind full downstream buffers) is visible.
    """
    profiles: dict[float, dict] = {}
    for load in loads:
        config = scale.simulation(load, policy="none")
        simulator = build_simulator(config)
        probes = [
            simulator.attach_probe(
                spec.src_node, spec.src_port, window_cycles=probe_window
            )
            for spec in simulator.topology.channels
        ]
        simulator.run_cycles(config.warmup_cycles)
        simulator.begin_measurement()
        simulator.run_cycles(config.measure_cycles)
        result = simulator.finish()

        # The paper profiles one link *and* the input buffers downstream of
        # it; score by LU + BU so the tracked link is both busy and, at
        # congesting loads, backed up (a pure-LU pick finds the congestion
        # tree's root, whose downstream drains freely).
        tracked = max(probes, key=lambda p: p.mean_lu() + p.mean_bu())
        active = [p.mean_lu() for p in probes if p.mean_lu() > 0.0]
        profiles[load] = {
            "lu_histogram": tracked.lu_histogram(bins),
            "bu_histogram": tracked.bu_histogram(bins),
            "age_histogram": tracked.age_histogram(bins),
            "mean_lu": tracked.mean_lu(),
            "mean_bu": tracked.mean_bu(),
            "mean_age": tracked.mean_age(),
            # Mean LU over channels that carried any traffic: the Figure
            # 3(d) dip is clearest here — links upstream of congested
            # routers stall behind exhausted credits and their LU falls.
            "network_mean_lu": sum(active) / len(active) if active else 0.0,
            "accepted_rate": result.accepted_rate,
            "mean_latency": result.latency.mean,
        }
    return profiles


def _profile_figure(
    figure: str, description: str, key: str, mean_key: str, profiles: dict
) -> FigureResult:
    columns = ["load", "mean", *[f"bin{i}" for i in range(10)]]
    rows = []
    for load, profile in profiles.items():
        histogram = profile[key]
        rows.append(
            (load, profile[mean_key], *[round(f, 4) for f in histogram.frequencies()])
        )
    return FigureResult(figure, description, columns, rows, extras={"profiles": profiles})


def fig3_link_utilization_profile(
    scale: ExperimentScale = DEFAULT_SCALE, **kwargs: object
) -> FigureResult:
    """Figure 3: link utilization rises with load, then dips at congestion."""
    profiles = utilization_profiles(scale, **kwargs)
    return _profile_figure(
        "Figure 3", "link utilization profile", "lu_histogram", "mean_lu", profiles
    )


def fig4_buffer_utilization_profile(
    scale: ExperimentScale = DEFAULT_SCALE, **kwargs: object
) -> FigureResult:
    """Figure 4: input-buffer utilization acts as a congestion indicator."""
    profiles = utilization_profiles(scale, **kwargs)
    return _profile_figure(
        "Figure 4", "input buffer utilization profile", "bu_histogram", "mean_bu", profiles
    )


def fig5_buffer_age_profile(
    scale: ExperimentScale = DEFAULT_SCALE, **kwargs: object
) -> FigureResult:
    """Figure 5: input-buffer age mirrors buffer utilization."""
    profiles = utilization_profiles(scale, **kwargs)
    return _profile_figure(
        "Figure 5", "input buffer age profile", "age_histogram", "mean_age", profiles
    )


# ---------------------------------------------------------------------------
# Figure 7: router power distribution
# ---------------------------------------------------------------------------


def fig7_router_power_distribution(scale: ExperimentScale | None = None) -> FigureResult:
    """Figure 7: links dominate router power (82.4% at the paper's anchors).

    The breakdown is an analytical property of the router power profile,
    so *scale* is accepted for CLI uniformity but has no effect.
    """
    profile = RouterPowerProfile()
    fractions = profile.breakdown_fractions()
    watts = profile.breakdown_w()
    rows = [
        (name, round(watts[name], 4), round(fraction, 4))
        for name, fraction in sorted(fractions.items(), key=lambda kv: -kv[1])
    ]
    return FigureResult(
        "Figure 7",
        "router power consumption distribution",
        ["component", "power_w", "fraction"],
        rows,
        extras={"profile": profile},
    )


# ---------------------------------------------------------------------------
# Figures 8-9: workload variance snapshots
# ---------------------------------------------------------------------------


def fig8_spatial_variance(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    injection_rate: float = 1.0,
    snapshot_cycles: int = 5_000,
) -> FigureResult:
    """Figure 8: per-node injected load over a snapshot window."""
    topology = Topology(scale.radix, 2)
    workload = make_traffic(topology, scale.workload(injection_rate))
    counts = [0] * topology.node_count
    for now in range(snapshot_cycles):
        for src, _dst in workload.injections(now):
            counts[src] += 1
    rows = []
    for y in range(scale.radix):
        row = tuple(
            counts[topology.node_at((x, y))] / snapshot_cycles
            for x in range(scale.radix)
        )
        rows.append((y, *[round(v, 4) for v in row]))
    mean = sum(counts) / len(counts) / snapshot_cycles
    variance = sum(
        (c / snapshot_cycles - mean) ** 2 for c in counts
    ) / len(counts)
    return FigureResult(
        "Figure 8",
        "spatial variance of the injected workload (packets/cycle per node)",
        ["y", *[f"x{x}" for x in range(scale.radix)]],
        rows,
        extras={"mean": mean, "variance": variance, "counts": counts},
    )


def fig9_temporal_variance(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    injection_rate: float = 1.0,
    window: int = 500,
    windows: int = 60,
    node: int | None = None,
) -> FigureResult:
    """Figure 9: injected load at one router over time (bursty series).

    Task sessions pin flows to specific nodes, so an arbitrary fixed node
    may inject nothing over a short horizon; unless a node is given, the
    per-node series are collected for everyone and the busiest node's
    series is reported (the paper necessarily plots a router with
    traffic).
    """
    topology = Topology(scale.radix, 2)
    workload = make_traffic(topology, scale.workload(injection_rate))
    per_node = [[0] * windows for _ in range(topology.node_count)]
    for now in range(window * windows):
        index = now // window
        for src, _dst in workload.injections(now):
            per_node[src][index] += 1
    if node is None:
        node = max(range(topology.node_count), key=lambda n: sum(per_node[n]))
    series = [count / window for count in per_node[node]]
    mean = sum(series) / len(series)
    variance = sum((v - mean) ** 2 for v in series) / max(1, len(series) - 1)
    rows = [(i * window, round(v, 5)) for i, v in enumerate(series)]
    return FigureResult(
        "Figure 9",
        f"temporal variance of injected load at node {node}",
        ["cycle", "packets_per_cycle"],
        rows,
        extras={"mean": mean, "variance": variance, "node": node},
    )


# ---------------------------------------------------------------------------
# Figures 10-11: DVS vs non-DVS latency/throughput/power sweeps
# ---------------------------------------------------------------------------


def _dvs_comparison(
    scale: ExperimentScale,
    tasks: int,
    figure: str,
    rates: tuple[float, ...] | None = None,
) -> FigureResult:
    rates = rates if rates is not None else scale.sweep_rates
    base = scale.simulation(rates[0], workload_overrides={"average_tasks": tasks})
    baseline_dvs = DVSControlConfig(policy="none")
    history_dvs = DVSControlConfig(policy="history")
    # Column labels come from the registry so knob overrides (or swapped-in
    # plugin policies) relabel the figure automatically. The paper's
    # defaults render as "none" / "history".
    baseline_name = policy_label(baseline_dvs)
    dvs_name = policy_label(history_dvs)
    sweeps = compare_policies(
        base,
        rates,
        {baseline_name: baseline_dvs, dvs_name: history_dvs},
    )
    baseline, dvs = sweeps[baseline_name], sweeps[dvs_name]
    summary = summarize_comparison(baseline, dvs)
    rows = [
        (
            b.target_rate,
            round(b.offered_rate, 3),
            round(b.mean_latency, 1),
            round(d.mean_latency, 1),
            round(b.accepted_rate, 3),
            round(d.accepted_rate, 3),
            round(d.normalized_power, 3),
            round(d.savings_factor, 2),
        )
        for b, d in zip(baseline, dvs, strict=False)
    ]
    return FigureResult(
        figure,
        f"{dvs_name}-policy DVS vs non-DVS, {tasks} tasks",
        [
            "rate",
            "offered",
            f"lat_{baseline_name}",
            f"lat_{dvs_name}",
            f"acc_{baseline_name}",
            f"acc_{dvs_name}",
            "norm_power",
            "savings",
        ],
        rows,
        extras={"summary": summary, "baseline": baseline, "dvs": dvs},
    )


def fig10_dvs_vs_nodvs(
    scale: ExperimentScale = DEFAULT_SCALE, rates: tuple[float, ...] | None = None
) -> FigureResult:
    """Figure 10: latency/throughput and normalized power, 100 tasks."""
    return _dvs_comparison(scale, 100, "Figure 10", rates)


def fig11_dvs_vs_nodvs_50tasks(
    scale: ExperimentScale = DEFAULT_SCALE, rates: tuple[float, ...] | None = None
) -> FigureResult:
    """Figure 11: same comparison with 50 tasks (more imbalanced traffic)."""
    return _dvs_comparison(scale, 50, "Figure 11", rates)


def headline_summary(scale: ExperimentScale = DEFAULT_SCALE) -> FigureResult:
    """The paper's abstract numbers, recomputed from the Figure 10 sweep."""
    fig10 = fig10_dvs_vs_nodvs(scale)
    summary = fig10.extras["summary"]
    rows = [
        ("max power savings (X)", 6.3, round(summary.max_savings, 2)),
        ("avg power savings (X)", 4.6, round(summary.average_savings, 2)),
        ("zero-load latency increase", 0.108, round(summary.zero_load_increase, 3)),
        (
            "avg pre-saturation latency increase",
            0.152,
            round(summary.average_presaturation_increase, 3),
        ),
        ("throughput change", -0.025, round(summary.throughput_change, 3)),
    ]
    return FigureResult(
        "Headline",
        "paper abstract vs measured (100-task workload)",
        ["metric", "paper", "measured"],
        rows,
        extras={"summary": summary, "fig10": fig10},
    )


# ---------------------------------------------------------------------------
# Figure 12: power and throughput beyond saturation
# ---------------------------------------------------------------------------


def fig12_congestion_power(
    scale: ExperimentScale = DEFAULT_SCALE,
    rates: tuple[float, ...] = (0.5, 1.0, 2.0, 3.5, 5.0, 7.0),
) -> FigureResult:
    """Figure 12: network power rises with throughput, then dips when the
    whole network congests and link utilization collapses."""
    base = scale.simulation(rates[0], workload_overrides={"average_tasks": 100})
    points = rate_sweep(base, rates)
    rows = [
        (
            p.target_rate,
            round(p.offered_rate, 3),
            round(p.accepted_rate, 3),
            round(p.normalized_power, 3),
        )
        for p in points
    ]
    return FigureResult(
        "Figure 12",
        "power and throughput under deepening congestion (history DVS)",
        ["rate", "offered", "throughput", "norm_power"],
        rows,
        extras={"points": points},
    )


# ---------------------------------------------------------------------------
# Table 2 / Figures 13-15: threshold trade-off study
# ---------------------------------------------------------------------------


def threshold_sweeps(
    scale: ExperimentScale = DEFAULT_SCALE,
    rates: tuple[float, ...] | None = None,
    settings: dict | None = None,
) -> dict[str, list[SweepPoint]]:
    """Sweep rates under each Table 2 threshold setting."""
    rates = rates if rates is not None else scale.sweep_rates
    settings = settings if settings is not None else TABLE2_SETTINGS
    base = scale.simulation(rates[0], workload_overrides={"average_tasks": 100})
    policies = {
        name: DVSControlConfig(policy="history", thresholds=thresholds)
        for name, thresholds in settings.items()
    }
    return compare_policies(base, rates, policies)


def fig13_threshold_latency(
    scale: ExperimentScale = DEFAULT_SCALE,
    sweeps: dict[str, list[SweepPoint]] | None = None,
) -> FigureResult:
    """Figure 13: latency profile under threshold settings I-VI."""
    sweeps = sweeps if sweeps is not None else threshold_sweeps(scale)
    names = list(sweeps)
    rates = [p.target_rate for p in next(iter(sweeps.values()))]
    rows = [
        (rate, *[round(sweeps[name][i].mean_latency, 1) for name in names])
        for i, rate in enumerate(rates)
    ]
    return FigureResult(
        "Figure 13",
        "latency under DVS threshold settings (Table 2)",
        ["rate", *names],
        rows,
        extras={"sweeps": sweeps},
    )


def fig14_threshold_power(
    scale: ExperimentScale = DEFAULT_SCALE,
    sweeps: dict[str, list[SweepPoint]] | None = None,
) -> FigureResult:
    """Figure 14: power consumption under threshold settings I-VI."""
    sweeps = sweeps if sweeps is not None else threshold_sweeps(scale)
    names = list(sweeps)
    rates = [p.target_rate for p in next(iter(sweeps.values()))]
    rows = [
        (rate, *[round(sweeps[name][i].normalized_power, 3) for name in names])
        for i, rate in enumerate(rates)
    ]
    return FigureResult(
        "Figure 14",
        "normalized power under DVS threshold settings (Table 2)",
        ["rate", *names],
        rows,
        extras={"sweeps": sweeps},
    )


def fig15_pareto_curve(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    rate: float = 1.7,
    settings: dict | None = None,
) -> FigureResult:
    """Figure 15: latency vs power savings across thresholds at one rate."""
    settings = settings if settings is not None else TABLE2_SETTINGS
    rows = []
    points = {}
    for name, thresholds in settings.items():
        config = scale.simulation(
            rate,
            dvs=DVSControlConfig(policy="history", thresholds=thresholds),
            workload_overrides={"average_tasks": 100},
        )
        result = run_simulation(config)
        points[name] = result
        rows.append(
            (
                name,
                thresholds.low_uncongested,
                thresholds.high_uncongested,
                round(result.latency.mean, 1),
                round(result.power.savings_factor, 2),
            )
        )
    return FigureResult(
        "Figure 15",
        f"latency vs dynamic power savings at {rate} packets/cycle",
        ["setting", "TL_low", "TL_high", "latency", "savings"],
        rows,
        extras={"points": points},
    )


# ---------------------------------------------------------------------------
# Figures 16-17: transition-rate sensitivity
# ---------------------------------------------------------------------------


def _transition_sweep(
    scale: ExperimentScale,
    figure: str,
    description: str,
    curves: dict[str, dict],
    task_duration_s: float,
    rates: tuple[float, ...],
) -> FigureResult:
    """Shared machinery for Figures 16 and 17: one curve per link variant.

    All curves run as ONE batched campaign (:func:`named_sweeps`), so a
    process pool parallelizes across variants and the sweep cache
    checkpoints the whole figure incrementally.
    """
    named: dict[str, SimulationConfig] = {}
    for name, link_overrides in curves.items():
        if link_overrides is None:  # the non-DVS reference curve
            named[name] = scale.simulation(
                rates[0],
                policy="none",
                workload_overrides={
                    "average_tasks": 100,
                    "average_task_duration_s": task_duration_s,
                },
            )
        else:
            named[name] = scale.simulation(
                rates[0],
                workload_overrides={
                    "average_tasks": 100,
                    "average_task_duration_s": task_duration_s,
                },
                link_overrides=link_overrides,
            )
    sweeps = named_sweeps(named, rates)
    names = list(sweeps)
    rows = [
        (
            rate,
            *[round(sweeps[name][i].mean_latency, 1) for name in names],
            *[round(sweeps[name][i].accepted_rate, 3) for name in names],
        )
        for i, rate in enumerate(rates)
    ]
    return FigureResult(
        figure,
        description,
        ["rate", *[f"lat:{n}" for n in names], *[f"acc:{n}" for n in names]],
        rows,
        extras={"sweeps": sweeps, "task_duration_s": task_duration_s},
    )


def fig16_voltage_transition_sweep(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    panel: str = "a",
    rates: tuple[float, ...] | None = None,
) -> FigureResult:
    """Figure 16: sensitivity to voltage transition delay.

    Panels match the paper: a/c use long tasks, b/d short tasks; a/b the
    slow 100-link-cycle frequency lock, c/d the fast 10-cycle one.
    Voltage transition delays span a 10:1 range below the scale preset's
    baseline ramp.
    """
    # (task duration multiplier, absolute frequency lock in link cycles).
    # The lock times are the paper's own 100/10 regardless of scale: the
    # panel-(a) pathology — faster voltage ramps hurting latency — exists
    # only when the dead frequency-lock time is a large share of each
    # transition, which is a ratio the scale presets must not shrink away.
    panels = {
        "a": (1.0, 100),
        "b": (0.1, 100),
        "c": (1.0, 10),
        "d": (0.1, 10),
    }
    if panel not in panels:
        raise ExperimentError(f"panel must be one of {sorted(panels)}")
    task_mult, freq_cycles = panels[panel]
    task_duration_s = scale.average_task_duration_s * task_mult
    vt = scale.voltage_transition_s
    curves = {
        "nodvs": None,
        "vt_1.0x": {
            "voltage_transition_s": vt,
            "frequency_transition_link_cycles": freq_cycles,
        },
        "vt_0.5x": {
            "voltage_transition_s": vt * 0.5,
            "frequency_transition_link_cycles": freq_cycles,
        },
        "vt_0.1x": {
            "voltage_transition_s": vt * 0.1,
            "frequency_transition_link_cycles": freq_cycles,
        },
    }
    rates = rates if rates is not None else scale.sweep_rates
    return _transition_sweep(
        scale,
        f"Figure 16({panel})",
        f"voltage-transition sensitivity, task {task_duration_s * 1e6:.0f}us, "
        f"freq transition {freq_cycles} link cycles",
        curves,
        task_duration_s,
        rates,
    )


def fig17_frequency_transition_sweep(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    panel: str = "a",
    rates: tuple[float, ...] | None = None,
) -> FigureResult:
    """Figure 17: sensitivity to frequency transition delay.

    Panels: a/b use the scale's voltage ramp, c/d a 10x faster one; a/c
    long tasks, b/d short tasks. Frequency lock times are the paper's
    absolute 100/50/10 link cycles.
    """
    panels = {
        "a": (1.0, 1.0),  # (task multiplier, voltage multiplier)
        "b": (0.1, 1.0),
        "c": (1.0, 0.1),
        "d": (0.1, 0.1),
    }
    if panel not in panels:
        raise ExperimentError(f"panel must be one of {sorted(panels)}")
    task_mult, volt_mult = panels[panel]
    task_duration_s = scale.average_task_duration_s * task_mult
    vt = scale.voltage_transition_s * volt_mult
    # Frequency lock times are the paper's absolute 100/50/10 link cycles:
    # their effect is a ratio against the voltage ramp and must not be
    # shrunk by the scale preset (see fig16's panel note).
    curves = {
        "nodvs": None,
        "ft_100": {
            "voltage_transition_s": vt,
            "frequency_transition_link_cycles": 100,
        },
        "ft_50": {
            "voltage_transition_s": vt,
            "frequency_transition_link_cycles": 50,
        },
        "ft_10": {
            "voltage_transition_s": vt,
            "frequency_transition_link_cycles": 10,
        },
    }
    rates = rates if rates is not None else scale.sweep_rates
    return _transition_sweep(
        scale,
        f"Figure 17({panel})",
        f"frequency-transition sensitivity, task {task_duration_s * 1e6:.0f}us, "
        f"voltage transition {vt * 1e6:.2f}us",
        curves,
        task_duration_s,
        rates,
    )


# ---------------------------------------------------------------------------
# Ablations (beyond the paper)
# ---------------------------------------------------------------------------


def workload_comparison(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    rate: float = 1.0,
) -> FigureResult:
    """Why the paper built its own workload (Section 4.3).

    Runs the identical DVS configuration under the two-level self-similar
    model, uniform random traffic, and a transpose permutation. Uniform
    traffic lacks spatial variance (every link mildly loaded — links
    settle uniformly); the permutation lacks temporal variance; the
    two-level model exercises both axes, which is what makes history-based
    prediction both useful and hard.
    """
    workloads = {
        "two_level": {},
        "uniform": {"kind": "uniform"},
        "permutation": {"kind": "permutation", "permutation": "transpose"},
    }
    rows = []
    results = {}
    for name, overrides in workloads.items():
        config = scale.simulation(
            rate, workload_overrides={"average_tasks": 100, **overrides}
        )
        result = run_simulation(config)
        results[name] = result
        rows.append(
            (
                name,
                round(result.offered_rate, 3),
                round(result.accepted_rate, 3),
                round(result.latency.mean, 1),
                round(result.power.normalized, 3),
                round(result.power.savings_factor, 2),
            )
        )
    return FigureResult(
        "Workloads",
        f"history-based DVS under different workloads at {rate} pkt/cycle",
        ["workload", "offered", "accepted", "latency", "norm_power", "savings"],
        rows,
        extras={"results": results},
    )


def ablation_congestion_litmus(
    scale: ExperimentScale = DEFAULT_SCALE,
    rates: tuple[float, ...] | None = None,
) -> FigureResult:
    """What the BU congestion litmus buys: history vs LU-only policy."""
    rates = rates if rates is not None else scale.sweep_rates
    base = scale.simulation(rates[0], workload_overrides={"average_tasks": 100})
    full = DVSControlConfig(policy="history")
    lu = DVSControlConfig(policy="lu_only")
    full_name, lu_name = policy_label(full), policy_label(lu)
    sweeps = compare_policies(base, rates, {full_name: full, lu_name: lu})
    rows = [
        (
            rate,
            round(sweeps[full_name][i].mean_latency, 1),
            round(sweeps[lu_name][i].mean_latency, 1),
            round(sweeps[full_name][i].normalized_power, 3),
            round(sweeps[lu_name][i].normalized_power, 3),
        )
        for i, rate in enumerate(rates)
    ]
    return FigureResult(
        "Ablation",
        "congestion litmus: full policy vs LU-only",
        [
            "rate",
            f"lat_{full_name}",
            f"lat_{lu_name}",
            f"pwr_{full_name}",
            f"pwr_{lu_name}",
        ],
        rows,
        extras={"sweeps": sweeps},
    )


def ablation_ewma_weight(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    rate: float = 1.0,
    weights: tuple[float, ...] = (1.0, 3.0, 7.0, 15.0),
) -> FigureResult:
    """Sensitivity to the EWMA weight W (paper fixes W=3 for shift-add)."""
    rows = []
    for weight in weights:
        config = scale.simulation(
            rate,
            dvs=DVSControlConfig(policy="history", ewma_weight=weight),
            workload_overrides={"average_tasks": 100},
        )
        result = run_simulation(config)
        rows.append(
            (
                weight,
                round(result.latency.mean, 1),
                round(result.power.normalized, 3),
                result.power.transition_count,
            )
        )
    return FigureResult(
        "Ablation",
        f"EWMA weight sensitivity at {rate} packets/cycle",
        ["W", "latency", "norm_power", "transitions"],
        rows,
    )


def ablation_history_window(
    scale: ExperimentScale = DEFAULT_SCALE,
    *,
    rate: float = 1.0,
    windows: tuple[int, ...] = (50, 200, 800),
) -> FigureResult:
    """Sensitivity to the history window H (paper fixes H=200)."""
    rows = []
    for window in windows:
        config = scale.simulation(
            rate,
            dvs=DVSControlConfig(policy="history", history_window=window),
            workload_overrides={"average_tasks": 100},
        )
        result = run_simulation(config)
        rows.append(
            (
                window,
                round(result.latency.mean, 1),
                round(result.power.normalized, 3),
                result.power.transition_count,
            )
        )
    return FigureResult(
        "Ablation",
        f"history window sensitivity at {rate} packets/cycle",
        ["H", "latency", "norm_power", "transitions"],
        rows,
    )


def ablation_ideal_links(
    scale: ExperimentScale = DEFAULT_SCALE,
    rates: tuple[float, ...] | None = None,
) -> FigureResult:
    """How much of the DVS latency cost is *mechanism*, not policy.

    Runs the identical history-based policy over (a) the scale's
    conservative links and (b) idealized links whose voltage and frequency
    transitions are (near-)instantaneous and never take the link down —
    the future-technology limit the paper's conclusions point to. The gap
    between the two isolates the cost of slow, link-disabling transitions
    from the cost of running links slower at all.
    """
    rates = rates if rates is not None else scale.sweep_rates
    named: dict[str, SimulationConfig] = {}
    for name, link_overrides in (
        ("conservative", None),
        (
            "ideal",
            {
                "voltage_transition_s": 1.0e-9,
                "frequency_transition_link_cycles": 0,
                # Idealize the regulator too: without a bulk off-chip
                # filter capacitor, per-transition overheads vanish.
                "filter_capacitance_f": 1.0e-9,
            },
        ),
    ):
        named[name] = scale.simulation(
            rates[0],
            workload_overrides={"average_tasks": 100},
            link_overrides=link_overrides or {},
        )
    # One batched campaign: both curves parallelize and checkpoint together.
    sweeps = named_sweeps(named, rates)
    rows = [
        (
            rate,
            round(sweeps["conservative"][i].mean_latency, 1),
            round(sweeps["ideal"][i].mean_latency, 1),
            round(sweeps["conservative"][i].normalized_power, 3),
            round(sweeps["ideal"][i].normalized_power, 3),
        )
        for i, rate in enumerate(rates)
    ]
    return FigureResult(
        "Extension",
        "conservative vs idealized (instantaneous-transition) DVS links",
        ["rate", "lat_conservative", "lat_ideal", "pwr_conservative", "pwr_ideal"],
        rows,
        extras={"sweeps": sweeps},
    )


def ablation_adaptive_thresholds(
    scale: ExperimentScale = DEFAULT_SCALE,
    rates: tuple[float, ...] | None = None,
) -> FigureResult:
    """The paper's suggested extension: dynamically adjusted thresholds."""
    rates = rates if rates is not None else scale.sweep_rates
    base = scale.simulation(rates[0], workload_overrides={"average_tasks": 100})
    static = DVSControlConfig(policy="history")
    adaptive = DVSControlConfig(policy="adaptive_threshold")
    static_name, adaptive_name = policy_label(static), policy_label(adaptive)
    sweeps = compare_policies(
        base, rates, {static_name: static, adaptive_name: adaptive}
    )
    rows = [
        (
            rate,
            round(sweeps[static_name][i].mean_latency, 1),
            round(sweeps[adaptive_name][i].mean_latency, 1),
            round(sweeps[static_name][i].normalized_power, 3),
            round(sweeps[adaptive_name][i].normalized_power, 3),
        )
        for i, rate in enumerate(rates)
    ]
    return FigureResult(
        "Extension",
        "static vs dynamically adjusted thresholds",
        [
            "rate",
            f"lat_{static_name}",
            f"lat_{adaptive_name}",
            f"pwr_{static_name}",
            f"pwr_{adaptive_name}",
        ],
        rows,
        extras={"sweeps": sweeps},
    )
