"""Tests for O(live-state) engine snapshots (repro.network.snapshot).

The contract under test is the one the batched kernel's copy-on-divergence
splits lean on: ``fast_clone(sim)`` must be *behaviorally indistinguishable*
from ``copy.deepcopy(sim)`` — continue both to completion and every
SimulationResult field matches bit for bit — while ``state_digest`` must be
equal exactly when two engines will evolve identically under identical
inputs.
"""

from __future__ import annotations

import copy
import dataclasses

import pytest

from repro.core.registry import registered_policies
from repro.core.thresholds import TABLE2_SETTINGS
from repro.errors import SimulationError
from repro.network.simulator import Simulator
from repro.network.snapshot import _needs_deepcopy, fast_clone, state_digest

from .conftest import small_config


def mid_run_simulator(policy: str, **kwargs) -> Simulator:
    """A seeded engine advanced to the middle of its measured phase —
    the state a divergence split actually clones."""
    defaults = dict(
        radix=4,
        policy=policy,
        rate=0.6,
        warmup=200,
        measure=400,
        workload_kind="two_level",
        seed=7,
        average_tasks=5,
        average_task_duration_s=3.0e-6,
    )
    defaults.update(kwargs)
    config = small_config(**defaults)
    sim = Simulator(config)
    sim.run_cycles(config.warmup_cycles)
    sim.begin_measurement()
    sim.run_cycles(config.measure_cycles // 2)
    return sim


def deepclone(sim: Simulator) -> Simulator:
    """The old split path: deepcopy plus the identity-map rebuild it needs."""
    clone = copy.deepcopy(sim)
    clone._channel_ids = {
        id(channel.dvs): channel.spec.channel_id for channel in clone.channels
    }
    return clone


def finish_from_midpoint(sim: Simulator):
    remaining = (
        sim.config.warmup_cycles
        + sim.config.measure_cycles
        - sim.now
    )
    sim.run_cycles(remaining)
    return sim.finish()


class TestFastCloneEquivalence:
    @pytest.mark.parametrize("policy", registered_policies())
    def test_clone_equals_deepcopy_for_every_policy(self, policy):
        """Property: original, fast_clone, and deepcopy of a mid-run engine
        all finish with strictly equal results and equal digests."""
        sim = mid_run_simulator(policy)
        fast = fast_clone(sim)
        slow = deepclone(sim)
        assert state_digest(fast) == state_digest(sim)
        assert state_digest(slow) == state_digest(sim)
        original = finish_from_midpoint(sim)
        cloned = finish_from_midpoint(fast)
        copied = finish_from_midpoint(slow)
        assert cloned == original
        assert copied == original
        assert state_digest(fast) == state_digest(sim)

    def test_clone_during_warmup(self):
        """Splits can happen before measurement starts; the clone must
        carry warmup state and measure identically afterwards."""
        config = small_config(
            radix=4, policy="history", rate=0.6, warmup=200, measure=400,
            workload_kind="two_level", seed=7, average_tasks=5,
            average_task_duration_s=3.0e-6,
        )
        sim = Simulator(config)
        sim.run_cycles(config.warmup_cycles)
        clone = fast_clone(sim)
        for engine in (sim, clone):
            engine.begin_measurement()
            engine.run_cycles(config.measure_cycles)
        assert clone.finish() == sim.finish()

    def test_clone_is_independent_of_the_original(self):
        """Stepping the clone must not move the original (no shared
        mutable state escaped the walk)."""
        sim = mid_run_simulator("history")
        before = state_digest(sim)
        clone = fast_clone(sim)
        clone.run_cycles(50)
        assert state_digest(sim) == before
        assert state_digest(clone) != before

    def test_unknown_engine_attribute_fails_loudly(self):
        """Inventory drift guard: a new Simulator attribute the walk does
        not know about must raise, not silently share state."""
        sim = mid_run_simulator("history")
        sim.shiny_new_cache = {}
        with pytest.raises(SimulationError, match="shiny_new_cache"):
            fast_clone(sim)

    def test_sanitized_engine_falls_back_to_deepcopy(self):
        """Instrumented engines (sanitizer attached) take the deepcopy
        fallback and still clone into a working, equal engine."""
        config = small_config(
            radix=4, policy="history", rate=0.4, warmup=100, measure=200,
            seed=5,
        )
        sim = Simulator(config, sanitize=True)
        sim.run_cycles(config.warmup_cycles)
        sim.begin_measurement()
        sim.run_cycles(config.measure_cycles // 2)
        assert _needs_deepcopy(sim)
        clone = fast_clone(sim)
        assert finish_from_midpoint(clone) == finish_from_midpoint(sim)


class TestStateDigest:
    def test_divergent_decisions_digest_apart(self):
        """Engines whose DVS decisions actually diverged digest apart.

        Note the digest covers *network* state only (channels, buffers,
        events, traffic) — policy registers are deliberately excluded
        because the batched kernel keeps them per member — so merely
        different knobs with identical behavior so far digest equal;
        that equality is exactly what class re-merging exploits.
        """
        sim = mid_run_simulator("history", measure=600)
        config = dataclasses.replace(
            sim.config,
            dvs=dataclasses.replace(
                sim.config.dvs, thresholds=TABLE2_SETTINGS["VI"]
            ),
        )
        other = Simulator(config)
        other.run_cycles(config.warmup_cycles)
        other.begin_measurement()
        other.run_cycles(config.measure_cycles // 2)
        # Run both to the end of measurement: the reference scenario is
        # known to split classes for this threshold pair, so the final
        # states must differ.
        sim.run_cycles(sim.config.measure_cycles - sim.config.measure_cycles // 2)
        other.run_cycles(config.measure_cycles - config.measure_cycles // 2)
        assert state_digest(sim) != state_digest(other)

    def test_digest_is_stable_under_recomputation(self):
        sim = mid_run_simulator("history")
        assert state_digest(sim) == state_digest(sim)


def _threshold_grid(base):
    return [
        dataclasses.replace(
            base,
            dvs=dataclasses.replace(
                base.dvs, thresholds=thresholds, ewma_weight=weight
            ),
        )
        for weight in (1.0, 3.0)
        for thresholds in (TABLE2_SETTINGS["I"], TABLE2_SETTINGS["IV"])
    ]


class TestReMergeEquivalence:
    def test_diverge_then_reconverge_grid_is_bit_identical(self):
        """A bursty single-task workload makes threshold-divergent classes
        drain back to the same state: the kernel must re-merge them
        (merges > 0) and still match the scalar kernel exactly, member
        for member — the merge-correction algebra at work."""
        from repro.network.batched import BatchedEngine

        base = small_config(
            radix=4, policy="history", rate=1.0, warmup=200, measure=3000,
            workload_kind="two_level", seed=3, average_tasks=1,
            average_task_duration_s=1.0e-6,
        )
        configs = _threshold_grid(base)
        engine = BatchedEngine(configs)
        results = engine.run()
        assert engine.splits > 0
        assert engine.merges > 0
        for config, result in zip(configs, results, strict=False):
            assert Simulator(config).run() == result
