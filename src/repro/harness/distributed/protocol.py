"""Wire protocol for the distributed sweep fabric.

Coordinator and workers speak length-prefixed, digest-checked pickle
frames over a plain TCP stream::

    +--------------+------------------+---------------------+
    | length (4B)  | sha256(payload)  | payload (pickle)    |
    +--------------+------------------+---------------------+

The digest is not a security measure (pickle over a socket is only safe
between mutually trusted hosts — see docs/architecture.md); it exists so
a corrupted frame (a flaky link, or the chaos harness's
``corrupt-payload`` fault) is *detected* at the receiver and surfaces as
a :class:`~repro.errors.DistributedError` instead of a garbage result.
The coordinator treats any protocol error on a connection as a host
fault: the worker's chunk is re-dispatched and the sweep continues.

Message vocabulary (plain dicts, ``type`` selects):

==================  =========================================================
``register``        worker -> coordinator: ``worker_id``
``chunk``           coordinator -> worker: ``chunk_id``, ``configs``,
                    ``retry`` (a pickled :class:`RetryPolicy`)
``result``          worker -> coordinator: ``chunk_id``, ``worker_id``,
                    ``outcomes`` (the :func:`run_chunk` per-point shape)
``heartbeat``       worker -> coordinator: ``worker_id``, ``busy``
``shutdown``        coordinator -> worker: sweep complete, exit cleanly
==================  =========================================================
"""

from __future__ import annotations

import asyncio
import hashlib
import pickle
import struct
from typing import Any

from ...errors import DistributedError

#: Frame header: payload length (uint32, big endian).
_LENGTH = struct.Struct(">I")

#: Hard bound on one frame; a chunk of configs plus results is far below
#: this, so anything larger is a framing error, not data.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_DIGEST_BYTES = hashlib.sha256().digest_size


def encode_frame(message: dict[str, Any], *, corrupt: bool = False) -> bytes:
    """One wire frame for *message*.

    ``corrupt=True`` flips a payload byte *after* the digest is computed
    — the chaos harness's ``corrupt-payload`` fault — so the receiver's
    digest check must reject the frame.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise DistributedError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    digest = hashlib.sha256(payload).digest()
    if corrupt:
        payload = payload[:-1] + bytes([payload[-1] ^ 0xFF])
    return _LENGTH.pack(len(payload)) + digest + payload


def decode_payload(digest: bytes, payload: bytes) -> dict[str, Any]:
    """Verify and unpickle one frame body (header already consumed)."""
    if hashlib.sha256(payload).digest() != digest:
        raise DistributedError(
            "frame payload digest mismatch (corrupt or tampered payload)"
        )
    try:
        message = pickle.loads(payload)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        raise DistributedError(f"frame payload does not unpickle: {exc!r}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise DistributedError("frame payload is not a typed message dict")
    return message


async def read_message(reader: asyncio.StreamReader) -> dict[str, Any]:
    """Read one message; raises on EOF, digest mismatch, or bad frames.

    EOF mid-frame raises ``asyncio.IncompleteReadError`` (a clean EOF at
    a frame boundary too — the caller treats any of these as the peer
    leaving).
    """
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise DistributedError(
            f"incoming frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    digest = await reader.readexactly(_DIGEST_BYTES)
    payload = await reader.readexactly(length)
    return decode_payload(digest, payload)


async def write_message(
    writer: asyncio.StreamWriter,
    message: dict[str, Any],
    *,
    corrupt: bool = False,
) -> None:
    """Write one message and drain the transport."""
    writer.write(encode_frame(message, corrupt=corrupt))
    await writer.drain()
