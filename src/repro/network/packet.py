"""Packets and flits.

The paper uses fixed-length packets of five flits — one head flit leading
four body flits (the last body flit doubles as the tail for flow-control
purposes) — each flit 32 bits wide (Section 4.2). Flits of one packet are
the unit of buffering and link scheduling; the packet is the unit of
routing and VC allocation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import ConfigError

_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One network packet.

    Attributes:
        src: Source node id.
        dst: Destination node id.
        size_flits: Number of flits (head included).
        created_cycle: Router cycle the packet entered the source queue —
            latency is measured from here (the paper includes source
            queueing time).
        packet_id: Monotonic id for tracing and ordering assertions.
        ejected_cycle: Cycle the last flit was ejected at the destination,
            or -1 while in flight.
        vc_class: Dateline class for torus routing (see
            :mod:`repro.network.routing`); 0 on a mesh.
        last_dim: Dimension the packet last moved in, used to reset the
            dateline class at dimension turns; -1 before the first hop.
    """

    src: int
    dst: int
    size_flits: int
    created_cycle: int
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    ejected_cycle: int = -1
    vc_class: int = 0
    last_dim: int = -1

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ConfigError("a packet needs at least one flit")
        if self.src == self.dst:
            raise ConfigError("source and destination must differ")

    @property
    def latency(self) -> int:
        """Creation-to-ejection latency in router cycles (paper metric)."""
        if self.ejected_cycle < 0:
            raise ConfigError("packet has not been ejected yet")
        return self.ejected_cycle - self.created_cycle

    def make_flits(self) -> list["Flit"]:
        """Materialize this packet's flits: head first, tail last."""
        last = self.size_flits - 1
        return [
            Flit(packet=self, index=i, is_head=(i == 0), is_tail=(i == last))
            for i in range(self.size_flits)
        ]


@dataclass(slots=True)
class Flit:
    """One flow-control unit of a packet.

    ``buffer_arrival_cycle`` is refreshed each time the flit is enqueued
    into an input buffer, supporting the paper's input-buffer-age measure
    (Eq. (4)) without a side table.
    """

    packet: Packet
    index: int
    is_head: bool
    is_tail: bool
    buffer_arrival_cycle: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"<Flit {kind} {self.packet.packet_id}:{self.index}>"
