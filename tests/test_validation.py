"""Tests for cross-scale shape validation."""

import dataclasses

import pytest

from repro.errors import ExperimentError
from repro.harness.scales import SMOKE_SCALE
from repro.harness.validation import (
    ScaleObservation,
    ValidationReport,
    observe_scale,
    validate_scales,
)


def obs(name="a", savings=(5.0, 3.0), ratios=(2.0, 3.0), throughput=-0.02):
    return ScaleObservation(
        scale_name=name,
        savings_by_rate=savings,
        latency_ratio_by_rate=ratios,
        throughput_change=throughput,
    )


class TestObservation:
    def test_savings_trend(self):
        assert obs(savings=(5.0, 3.0)).savings_decrease_with_load
        assert not obs(savings=(2.0, 5.0)).savings_decrease_with_load

    def test_latency_cost(self):
        assert obs(ratios=(1.5, 2.0)).dvs_costs_latency
        assert not obs(ratios=(0.9, 2.0)).dvs_costs_latency


class TestReport:
    def test_consistent_pair(self):
        report = ValidationReport(obs("a"), obs("b"))
        assert report.consistent
        assert report.disagreements() == []

    def test_flags_weak_savings(self):
        report = ValidationReport(obs("a", savings=(1.0, 1.0)), obs("b"))
        assert not report.consistent
        assert any("1.2X" in d for d in report.disagreements())

    def test_flags_missing_latency_cost(self):
        report = ValidationReport(obs("a", ratios=(0.8, 0.9)), obs("b"))
        assert any("latency" in d for d in report.disagreements())

    def test_flags_throughput_collapse(self):
        report = ValidationReport(obs("a", throughput=-0.4), obs("b"))
        assert any("throughput" in d for d in report.disagreements())

    def test_flags_trend_disagreement(self):
        report = ValidationReport(
            obs("a", savings=(5.0, 3.0)), obs("b", savings=(2.0, 5.0))
        )
        assert any("trend" in d for d in report.disagreements())


class TestLiveValidation:
    def test_observe_smoke_scale(self):
        tiny = dataclasses.replace(
            SMOKE_SCALE, warmup_cycles=1_000, measure_cycles=4_000
        )
        observation = observe_scale(tiny, rates=(0.2, 0.8))
        assert observation.scale_name == "smoke"
        assert len(observation.savings_by_rate) == 2
        assert all(s > 1.0 for s in observation.savings_by_rate)

    def test_smoke_consistent_with_itself_across_seeds(self):
        tiny = dataclasses.replace(
            SMOKE_SCALE, warmup_cycles=1_000, measure_cycles=4_000
        )
        report = validate_scales(tiny, tiny, rates=(0.2, 0.8))
        assert isinstance(report, ValidationReport)
        # Self-comparison at a sane scale should be consistent.
        assert report.consistent, report.disagreements()

    def test_needs_two_rates(self):
        with pytest.raises(ExperimentError):
            observe_scale(SMOKE_SCALE, rates=(0.5,))
