"""Cross-scale consistency validation.

A reproduction whose conclusions flip between scale presets would be
worthless; this module runs the same compact comparison (DVS vs non-DVS
at a few rates) at two scales and checks that the *shape* conclusions
agree:

* DVS saves substantial power at both scales;
* the savings ordering across rates matches (lighter load saves more);
* DVS costs latency at both scales;
* throughput loss stays bounded at both scales.

Used by tests (smoke vs a shrunken default) and available to users who
define custom scales. Returns a structured report rather than asserting,
so callers choose their own strictness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DVSControlConfig
from ..errors import ExperimentError
from .scales import ExperimentScale
from .sweep import SweepPoint, compare_policies


@dataclass(frozen=True, slots=True)
class ScaleObservation:
    """Shape observables of one scale's comparison run."""

    scale_name: str
    savings_by_rate: tuple[float, ...]
    latency_ratio_by_rate: tuple[float, ...]
    throughput_change: float

    @property
    def savings_decrease_with_load(self) -> bool:
        return self.savings_by_rate[0] >= self.savings_by_rate[-1] * 0.8

    @property
    def dvs_costs_latency(self) -> bool:
        return all(ratio > 1.0 for ratio in self.latency_ratio_by_rate)


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """Agreement between two scales' shape observables."""

    first: ScaleObservation
    second: ScaleObservation

    @property
    def consistent(self) -> bool:
        return not self.disagreements()

    def disagreements(self) -> list[str]:
        problems = []
        for observation in (self.first, self.second):
            if min(observation.savings_by_rate) < 1.2:
                problems.append(
                    f"{observation.scale_name}: DVS saves under 1.2X somewhere"
                )
            if not observation.dvs_costs_latency:
                problems.append(
                    f"{observation.scale_name}: DVS shows no latency cost"
                )
            if observation.throughput_change < -0.25:
                problems.append(
                    f"{observation.scale_name}: throughput loss exceeds 25%"
                )
        if (
            self.first.savings_decrease_with_load
            != self.second.savings_decrease_with_load
        ):
            problems.append("scales disagree on savings-vs-load trend")
        return problems


def observe_scale(
    scale: ExperimentScale, rates: tuple[float, ...] | None = None
) -> ScaleObservation:
    """Run the compact comparison at *scale* and extract shape observables."""
    rates = rates if rates is not None else (scale.sweep_rates[0], scale.sweep_rates[-1])
    if len(rates) < 2:
        raise ExperimentError("need at least two rates to observe a trend")
    base = scale.simulation(rates[0])
    sweeps = compare_policies(
        base,
        rates,
        {
            "none": DVSControlConfig(policy="none"),
            "history": DVSControlConfig(policy="history"),
        },
    )
    baseline, dvs = sweeps["none"], sweeps["history"]
    _check_latencies(baseline)
    _check_latencies(dvs)
    return ScaleObservation(
        scale_name=scale.name,
        savings_by_rate=tuple(point.savings_factor for point in dvs),
        latency_ratio_by_rate=tuple(
            d.mean_latency / b.mean_latency for b, d in zip(baseline, dvs, strict=False)
        ),
        throughput_change=(
            max(p.accepted_rate for p in dvs)
            / max(p.accepted_rate for p in baseline)
            - 1.0
        ),
    )


def _check_latencies(points: list[SweepPoint]) -> None:
    for point in points:
        if point.mean_latency != point.mean_latency:  # NaN
            raise ExperimentError(
                f"no packets completed at rate {point.target_rate}; "
                "choose lower validation rates"
            )


def validate_scales(
    first: ExperimentScale,
    second: ExperimentScale,
    rates: tuple[float, ...] | None = None,
) -> ValidationReport:
    """Compare the shape observables of two scales."""
    return ValidationReport(
        first=observe_scale(first, rates),
        second=observe_scale(second, rates),
    )
