"""The paper's abstract numbers, recomputed from the Figure 10 sweep.

Paper: up to 6.3X power savings (4.6X average), +10.8% zero-load latency,
+15.2% average pre-saturation latency, -2.5% throughput. We reproduce the
savings and throughput shape; the latency penalty is larger at our scales
(EXPERIMENTS.md discusses why).
"""

from repro.harness.experiments import FigureResult
from repro.harness.sweep import summarize_comparison

from .common import cached_fig10, emit, run_once, scale


def test_headline_summary(benchmark):
    fig10 = run_once(benchmark, lambda: cached_fig10(scale().name))
    summary = summarize_comparison(fig10.extras["baseline"], fig10.extras["dvs"])
    figure = FigureResult(
        "Headline",
        "paper abstract vs measured (100-task workload)",
        ["metric", "paper", "measured"],
        [
            ("max power savings (X)", 6.3, round(summary.max_savings, 2)),
            ("avg power savings (X)", 4.6, round(summary.average_savings, 2)),
            ("zero-load latency increase", 0.108, round(summary.zero_load_increase, 3)),
            (
                "avg pre-saturation latency increase",
                0.152,
                round(summary.average_presaturation_increase, 3),
            ),
            ("throughput change", -0.025, round(summary.throughput_change, 3)),
        ],
        extras={"summary": summary},
    )
    emit("headline_summary", figure)
    print(f"\nHeadline: {summary.describe()}")

    # The shape bar: large savings, small throughput loss, positive
    # latency cost.
    assert summary.max_savings > 2.0
    assert summary.average_savings > 1.8
    assert summary.throughput_change > -0.15
    assert summary.zero_load_increase > 0.0
