"""R6 (numpy flavor): temporary array allocated in a # repro-hot lane.

The batched sweep kernel's boundary op must write every ufunc result into
a preallocated scratch buffer (``out=``); an expression like ``a * b``
(or an explicit ``np.multiply`` without ``out=``) materializes a hidden
temporary per call.
"""

import numpy as np


class BoundaryLane:
    def __init__(self, members, channels):
        self.weight = np.ones((members, 1))
        self.pred = np.zeros((members, channels))

    def advance(self, raw):  # repro-hot
        self.pred += np.multiply(self.weight, raw)
        return self.pred
