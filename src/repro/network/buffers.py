"""Input-buffer primitives.

Each router input port holds a fixed pool of flit slots divided evenly
among its virtual channels (the paper: 128 flit buffers per input port,
two VCs, so 64 slots per VC). :class:`VCBuffer` is the per-VC FIFO with
capacity enforcement; higher-level VC state lives in
:mod:`repro.network.vc`.
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigError, FlowControlError
from .packet import Flit


class VCBuffer:
    """Bounded FIFO of flits for one virtual channel.

    The underlying deque is exposed as the read-only-by-convention
    attribute :attr:`flits` so the router's hot loop can inspect emptiness
    and the head flit without method-call overhead; all *mutation* must go
    through :meth:`enqueue`/:meth:`dequeue`, which enforce capacity and
    arrival-time stamping.
    """

    __slots__ = ("capacity", "flits")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigError("VC buffer capacity must be >= 1")
        self.capacity = capacity
        self.flits: deque[Flit] = deque()

    def __len__(self) -> int:
        return len(self.flits)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.flits)

    @property
    def occupancy(self) -> int:
        """Flits currently buffered (the sanitizer-facing spelling)."""
        return len(self.flits)

    @property
    def is_empty(self) -> bool:
        return not self.flits

    @property
    def is_full(self) -> bool:
        return len(self.flits) >= self.capacity

    def head(self) -> Flit | None:
        """The flit at the front, or None when empty."""
        return self.flits[0] if self.flits else None

    def enqueue(self, flit: Flit, now: int) -> None:
        """Append *flit*, stamping its buffer arrival time.

        Overflow is a flow-control bug (the sender must have had a credit),
        so it raises rather than dropping.
        """
        if len(self.flits) >= self.capacity:
            raise FlowControlError(
                f"buffer overflow: enqueue into full VC buffer at cycle {now}"
            )
        flit.buffer_arrival_cycle = now
        self.flits.append(flit)

    def dequeue(self) -> Flit:
        """Remove and return the front flit."""
        if not self.flits:
            raise FlowControlError("dequeue from empty VC buffer")
        return self.flits.popleft()

    def __iter__(self):
        return iter(self.flits)
