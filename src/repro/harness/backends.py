"""Unified execution backends for batches of simulations.

Every sweep in the harness reduces to the same shape of work: a list of
(picklable, frozen) :class:`~repro.config.SimulationConfig` objects, each
run through :func:`~repro.harness.runner.run_simulation`, results wanted
in input order. An :class:`ExecutionBackend` owns exactly that mapping;
:mod:`repro.harness.sweep` and :mod:`repro.harness.parallel` both build
their points on top of it instead of each carrying its own execution
logic.

Determinism: a simulation is fully described by its config, so
:class:`SerialBackend` and :class:`ProcessPoolBackend` produce
bit-identical result lists — the backend choice is purely a wall-clock
decision. Set the ``REPRO_PROCESSES`` environment variable to make every
backend-unaware sweep (including all of
:mod:`repro.harness.experiments`) fan out transparently.

Both backends consult the sweep result cache (:mod:`repro.harness.cache`)
before running anything: previously simulated configs are answered from
disk, only the misses are executed (serially or in the pool), and fresh
results are stored for next time. Caching does not change results — a
cached entry is the pickled result of the identical simulation — and is
disabled entirely via ``REPRO_CACHE=off`` or the CLI's ``--no-cache``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable

from ..config import SimulationConfig
from ..errors import ExperimentError
from ..network.simulator import SimulationResult
from .cache import get_cache
from .runner import run_simulation


class ExecutionBackend:
    """Maps a batch of simulation configs to results, preserving order."""

    def map_configs(
        self, configs: Iterable[SimulationConfig]
    ) -> list[SimulationResult]:
        """Run every config and return the results in input order."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Runs the batch in-process, one simulation at a time."""

    def map_configs(
        self, configs: Iterable[SimulationConfig]
    ) -> list[SimulationResult]:
        configs = list(configs)
        cache = get_cache()
        if cache is None:
            return [run_simulation(config) for config in configs]
        return cache.map_cached(
            configs, lambda missing: [run_simulation(config) for config in missing]
        )

    def __repr__(self) -> str:
        return "SerialBackend()"


class ProcessPoolBackend(ExecutionBackend):
    """Fans the batch out over a :class:`ProcessPoolExecutor`.

    ``chunksize`` controls how many configs each worker receives per IPC
    round-trip; the default sizes chunks so each worker sees ~4 of them
    over the batch, amortizing pickling without starving the pool on
    unevenly sized simulations. A single-process pool degenerates to the
    serial path (no pool spawn).
    """

    def __init__(self, processes: int = 4, *, chunksize: int | None = None) -> None:
        if processes < 1:
            raise ExperimentError("need at least one process")
        if chunksize is not None and chunksize < 1:
            raise ExperimentError("chunksize must be positive")
        self.processes = processes
        self.chunksize = chunksize

    def map_configs(
        self, configs: Iterable[SimulationConfig]
    ) -> list[SimulationResult]:
        configs = list(configs)
        if not configs:
            return []
        cache = get_cache()
        if cache is None:
            return self._run_batch(configs)
        return cache.map_cached(configs, self._run_batch)

    def _run_batch(
        self, configs: list[SimulationConfig]
    ) -> list[SimulationResult]:
        if not configs:
            return []
        if self.processes == 1:
            return [run_simulation(config) for config in configs]
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, len(configs) // (self.processes * 4))
        with ProcessPoolExecutor(max_workers=self.processes) as pool:
            return list(pool.map(run_simulation, configs, chunksize=chunksize))

    def __repr__(self) -> str:
        return (
            f"ProcessPoolBackend(processes={self.processes}, "
            f"chunksize={self.chunksize})"
        )


def make_backend(
    processes: int | None = None, *, chunksize: int | None = None
) -> ExecutionBackend:
    """Backend for *processes* workers (``None``/``0``/``1`` = serial)."""
    if processes is not None and processes < 0:
        raise ExperimentError("process count cannot be negative")
    if not processes or processes == 1:
        return SerialBackend()
    return ProcessPoolBackend(processes, chunksize=chunksize)


def default_backend() -> ExecutionBackend:
    """The backend selected by the ``REPRO_PROCESSES`` environment variable.

    Unset, empty, or ``1`` means serial — the safe default for tests and
    nested pools. Invalid values raise rather than silently serializing.
    """
    raw = os.environ.get("REPRO_PROCESSES", "").strip()
    if not raw:
        return SerialBackend()
    try:
        processes = int(raw)
    except ValueError as exc:
        raise ExperimentError(
            f"REPRO_PROCESSES must be an integer, got {raw!r}"
        ) from exc
    return make_backend(processes)
