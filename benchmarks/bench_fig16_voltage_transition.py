"""Figure 16: sensitivity to the voltage transition delay.

Paper shapes to reproduce:

* panel (a) — long tasks, slow frequency transitions: a *faster* voltage
  transition can INCREASE latency, because the policy transitions more
  often and the link is dead during every frequency retune;
* panel (b) — short tasks (high temporal variance): slow voltage
  transitions defer capacity increases and hurt latency/throughput.
"""

from repro.harness.experiments import fig16_voltage_transition_sweep

from .common import emit, run_once, scale

#: Two rates bracket the paper's sweep; the deep-congestion DVS runs these
#: panels need are the suite's most expensive points, so the default keeps
#: the light-load and near-saturation ends (REPRO_SCALE=paper for more).
RATES = (0.5, 1.7)


def test_fig16a_long_tasks_slow_freq(benchmark):
    figure = run_once(
        benchmark,
        lambda: fig16_voltage_transition_sweep(scale(), panel="a", rates=RATES),
    )
    emit("fig16a_voltage_transition", figure)
    sweeps = figure.extras["sweeps"]
    # All DVS variants sit above the non-DVS latency.
    for points in sweeps.values():
        if name == "nodvs":
            continue
        assert points[0].mean_latency > sweeps["nodvs"][0].mean_latency


def test_fig16b_short_tasks_slow_freq(benchmark):
    figure = run_once(
        benchmark,
        lambda: fig16_voltage_transition_sweep(scale(), panel="b", rates=RATES),
    )
    emit("fig16b_voltage_transition", figure)
    sweeps = figure.extras["sweeps"]
    # Throughput at the top rate: DVS variants give up some accepted rate
    # relative to non-DVS under high temporal variance.
    nodvs_top = sweeps["nodvs"][-1].accepted_rate
    for name, points in sweeps.items():
        assert points[-1].accepted_rate <= nodvs_top * 1.05


def test_fig16_fast_voltage_with_slow_freq_can_hurt(benchmark):
    """The paper's 'strange phenomenon': with slow frequency locks, a 10x
    faster voltage ramp does not reliably help latency (more transitions
    means more dead time)."""
    figure = run_once(
        benchmark,
        lambda: fig16_voltage_transition_sweep(scale(), panel="a", rates=(1.1,)),
    )
    sweeps = figure.extras["sweeps"]
    slow_vt = sweeps["vt_1.0x"][0].mean_latency
    fast_vt = sweeps["vt_0.1x"][0].mean_latency
    print(
        f"\nFigure 16 check at 1.1 pkt/cyc: vt 1.0x -> {slow_vt:.0f} cycles, "
        f"vt 0.1x -> {fast_vt:.0f} cycles"
    )
    # Shape assertion: the fast ramp gives at best a modest win — it must
    # not dominate (paper observed it can even lose).
    assert fast_vt > slow_vt * 0.5
