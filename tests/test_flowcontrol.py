"""Tests for credit state and occupancy tracking."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError, FlowControlError
from repro.network.flowcontrol import CreditState, OccupancyTracker


class TestCreditState:
    def test_initial_credits(self):
        state = CreditState(vcs=2, capacity_per_vc=64)
        assert state.credits == [64, 64]
        assert state.vc_free == [True, True]

    def test_consume_restore(self):
        state = CreditState(2, 4)
        state.consume(0)
        assert state.credits[0] == 3
        state.restore(0)
        assert state.credits[0] == 4

    def test_underflow(self):
        state = CreditState(1, 1)
        state.consume(0)
        with pytest.raises(FlowControlError):
            state.consume(0)

    def test_overflow(self):
        state = CreditState(1, 2)
        with pytest.raises(FlowControlError):
            state.restore(0)

    def test_vc_allocation_cycle(self):
        state = CreditState(2, 4)
        state.allocate_vc(1)
        assert not state.vc_free[1]
        with pytest.raises(FlowControlError):
            state.allocate_vc(1)
        state.release_vc(1)
        assert state.vc_free[1]
        with pytest.raises(FlowControlError):
            state.release_vc(1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            CreditState(0, 4)
        with pytest.raises(ConfigError):
            CreditState(2, 0)

    @given(ops=st.lists(st.booleans(), max_size=100))
    def test_credit_conservation(self, ops):
        """consume/restore sequences keep credits within [0, capacity]."""
        state = CreditState(1, 8)
        outstanding = 0
        for consume in ops:
            if consume and state.credits[0] > 0:
                state.consume(0)
                outstanding += 1
            elif not consume and outstanding > 0:
                state.restore(0)
                outstanding -= 1
            assert state.credits[0] + outstanding == 8


class TestOccupancyTracker:
    def test_integral_accumulates(self):
        tracker = OccupancyTracker()
        tracker.on_enqueue(0)
        # one slot occupied for 10 cycles
        assert tracker.cumulative_integral(10) == pytest.approx(10.0)

    def test_integral_with_changes(self):
        tracker = OccupancyTracker()
        tracker.on_enqueue(0)   # occ 1 from 0
        tracker.on_enqueue(5)   # occ 2 from 5
        tracker.on_dequeue(10)  # occ 1 from 10
        # 1*5 + 2*5 + 1*10 = 25 by cycle 20
        assert tracker.cumulative_integral(20) == pytest.approx(25.0)

    def test_cumulative_for_multiple_consumers(self):
        tracker = OccupancyTracker()
        tracker.on_enqueue(0)
        first = tracker.cumulative_integral(10)
        second = tracker.cumulative_integral(20)
        assert second - first == pytest.approx(10.0)

    def test_underflow(self):
        tracker = OccupancyTracker()
        with pytest.raises(FlowControlError):
            tracker.on_dequeue(0)

    def test_time_backwards(self):
        tracker = OccupancyTracker()
        tracker.on_enqueue(10)
        with pytest.raises(FlowControlError):
            tracker.on_enqueue(5)

    @given(
        events=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=20)),
            max_size=50,
        )
    )
    def test_integral_matches_reference(self, events):
        """Event-wise integral equals a per-cycle reference sum."""
        tracker = OccupancyTracker()
        now = 0
        occupied = 0
        reference = 0.0
        for enqueue, gap in events:
            reference += occupied * gap
            now += gap
            if enqueue:
                tracker.on_enqueue(now)
                occupied += 1
            elif occupied > 0:
                tracker.on_dequeue(now)
                occupied -= 1
        assert tracker.cumulative_integral(now) == pytest.approx(reference)
