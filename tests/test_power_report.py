"""Tests for formatted power reporting."""

import pytest

from repro.config import LinkConfig, NetworkConfig
from repro.errors import ConfigError
from repro.power.accounting import PowerReport
from repro.power.report import (
    format_power_report,
    nominal_network_power_w,
    savings_by_component,
)


def make_report(mean=100.0, baseline=400.0, transitions=10):
    return PowerReport(
        mean_power_w=mean,
        mean_link_power_w=mean * 0.98,
        baseline_power_w=baseline,
        normalized=mean / baseline,
        normalized_link_only=mean * 0.98 / baseline,
        savings_factor=baseline / mean,
        transition_count=transitions,
        transition_energy_j=1.0e-6,
        duration_s=50.0e-6,
    )


class TestNominalPower:
    def test_paper_409_6w(self):
        """64 routers x 4 ports x 8 links x 0.2 W = 409.6 W (Section 4.2)."""
        assert nominal_network_power_w() == pytest.approx(409.6)

    def test_scales_with_topology(self):
        small = nominal_network_power_w(NetworkConfig(radix=4))
        assert small == pytest.approx(409.6 / 4)

    def test_respects_link_config(self):
        cheap = nominal_network_power_w(link=LinkConfig(high_power_w=0.1))
        assert cheap == pytest.approx(204.8)


class TestFormatting:
    def test_contains_key_numbers(self):
        text = format_power_report(make_report())
        assert "100.00 W" in text
        assert "400.00 W" in text
        assert "4.00 X" in text
        assert "transitions" in text

    def test_rejects_empty_report(self):
        report = PowerReport(1.0, 1.0, 2.0, 0.5, 0.5, 2.0, 0, 0.0, 0.0)
        with pytest.raises(ConfigError):
            format_power_report(report)


class TestSavingsByComponent:
    def test_link_only(self):
        summary = savings_by_component(make_report())
        assert summary["link_savings_factor"] == pytest.approx(4.0)
        assert summary["total_savings_factor"] == pytest.approx(4.0)
        assert summary["core_share_of_baseline"] == 0.0

    def test_core_dilutes_savings(self):
        summary = savings_by_component(make_report(), router_core_power_w=100.0)
        assert summary["total_savings_factor"] == pytest.approx(500.0 / 200.0)
        assert summary["total_savings_factor"] < summary["link_savings_factor"]

    def test_negative_core_rejected(self):
        with pytest.raises(ConfigError):
            savings_by_component(make_report(), router_core_power_w=-1.0)
