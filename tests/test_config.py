"""Tests for the configuration layer."""

import pytest

from repro.config import (
    DVSControlConfig,
    LinkConfig,
    NetworkConfig,
    SimulationConfig,
    WorkloadConfig,
    paper_baseline_config,
)
from repro.errors import ConfigError


class TestNetworkConfig:
    def test_paper_defaults(self):
        config = NetworkConfig()
        assert config.radix == 8
        assert config.dimensions == 2
        assert config.node_count == 64
        assert config.vcs_per_port == 2
        assert config.buffers_per_port == 128
        assert config.buffers_per_vc == 64
        assert config.flits_per_packet == 5
        assert config.pipeline_depth == 13
        assert config.router_clock_hz == 1.0e9

    def test_pipeline_latency(self):
        assert NetworkConfig().pipeline_latency == 12

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"radix": 1},
            {"dimensions": 0},
            {"vcs_per_port": 0},
            {"buffers_per_port": 1, "vcs_per_port": 2},
            {"flits_per_packet": 0},
            {"router_clock_hz": 0.0},
            {"pipeline_depth": 0},
            {"credit_delay": 0},
            {"routing": "magic"},
            {"routing": "adaptive", "wraparound": True},
            {"wraparound": True, "vcs_per_port": 1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            NetworkConfig(**kwargs)


class TestLinkConfig:
    def test_builders(self):
        config = LinkConfig()
        table = config.build_table()
        assert len(table) == 10
        model = config.build_power_model()
        assert model.power_w(table[9]) == pytest.approx(0.2)
        regulator = config.build_regulator()
        assert regulator.efficiency == 0.9
        timing = config.build_timing()
        assert timing.voltage_transition_s == 10.0e-6
        assert timing.frequency_transition_link_cycles == 100

    def test_invalid_caught_at_construction(self):
        with pytest.raises(ConfigError):
            LinkConfig(levels=1)
        with pytest.raises(ConfigError):
            LinkConfig(min_frequency_hz=2e9)
        with pytest.raises(ConfigError):
            LinkConfig(regulator_efficiency=1.2)
        with pytest.raises(ConfigError):
            LinkConfig(low_power_w=0.5, high_power_w=0.2)


class TestDVSControlConfig:
    def test_defaults(self):
        config = DVSControlConfig()
        assert config.policy == "history"
        assert config.enabled
        assert config.history_window == 200
        assert config.ewma_weight == 3.0

    def test_none_disables(self):
        assert not DVSControlConfig(policy="none").enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"policy": "bogus"},
            {"ewma_weight": 0.0},
            {"history_window": 0},
            {"static_level": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            DVSControlConfig(**kwargs)


class TestWorkloadConfig:
    def test_defaults(self):
        config = WorkloadConfig()
        assert config.kind == "two_level"
        assert config.on_shape == 1.4
        assert config.off_shape == 1.2

    def test_with_rate(self):
        config = WorkloadConfig(injection_rate=0.5)
        assert config.with_rate(1.5).injection_rate == 1.5
        assert config.injection_rate == 0.5  # original untouched

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "bogus"},
            {"injection_rate": -1.0},
            {"average_tasks": 0},
            {"average_task_duration_s": 0.0},
            {"task_duration_jitter": 1.0},
            {"onoff_sources_per_task": 0},
            {"on_shape": 2.5},
            {"off_shape": 1.0},
            {"locality_radius": 0},
            {"locality_probability": 1.1},
            {"on_location_cycles": 0.0},
            {"peak_interval_cycles": -5.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            WorkloadConfig(**kwargs)


class TestSimulationConfig:
    def test_total_cycles(self):
        config = SimulationConfig(warmup_cycles=100, measure_cycles=200)
        assert config.total_cycles == 300

    def test_with_rate(self):
        config = SimulationConfig()
        changed = config.with_rate(1.7)
        assert changed.workload.injection_rate == 1.7
        assert changed.network == config.network

    def test_with_dvs(self):
        config = SimulationConfig()
        changed = config.with_dvs(DVSControlConfig(policy="none"))
        assert changed.dvs.policy == "none"

    def test_invalid(self):
        with pytest.raises(ConfigError):
            SimulationConfig(warmup_cycles=-1)
        with pytest.raises(ConfigError):
            SimulationConfig(measure_cycles=0)

    def test_paper_baseline(self):
        config = paper_baseline_config()
        assert config.network.radix == 8
        assert config.dvs.policy == "history"

    def test_paper_baseline_override(self):
        config = paper_baseline_config(dvs=DVSControlConfig(policy="none"))
        assert config.dvs.policy == "none"
