"""Batched structure-of-arrays sweep kernel: N configs in lockstep.

A threshold sweep (paper Table 2 settings I–VI x offered loads, or a
``repro pareto`` knob grid) runs many configurations that differ **only in
their policy knobs**: same topology, same traffic trace (same seed), same
warmup/measure phases. Between two history-window boundaries such
configurations are *provably identical* — the policy is only consulted
when a window closes (every ``H`` cycles), so two configs whose policies
have issued the same channel commands so far occupy bit-identical
simulator states. This kernel exploits that:

* **Equivalence classes, split AND re-merged.** The batch starts as one
  class: a single scalar :class:`~repro.network.simulator.Simulator`
  carrying every member. At each history-window boundary the coordinator
  computes the per-member policy decisions, canonicalizes them to
  *channel effects* (a dropped request and a HOLD are the same effect),
  and splits the class only when members' effects genuinely differ — via
  :func:`~repro.network.snapshot.fast_clone`, an O(live-state) snapshot
  that shares everything immutable and copies only mutable simulation
  state. Classes advance in **lockstep** (all at the same cycle), and at
  every boundary the coordinator compares
  :func:`~repro.network.snapshot.state_digest` fingerprints: classes
  whose states re-converged (thresholds briefly disagreed, then both
  settled at the same level) coalesce back into one, with the per-member
  integer result corrections described below. A sweep whose members
  converge (e.g. a saturated network where every threshold setting
  selects the shared congested pair) runs N configs for nearly the price
  of one — and a sweep that diverges transiently pays only for the
  divergent stretch, not for the rest of the run.

* **Structure-of-arrays coordinator state.** Per-member bookkeeping that
  the shared engines cannot carry lives in numpy arrays indexed
  ``[member, channel]``: the EWMA prediction lanes of the history policy
  (advanced by one vectorized, allocation-free op per boundary — see
  :meth:`BatchedEngine._advance_history_lane`), the per-member
  ``requests_dropped`` counters, and the integer-**femtojoule** per-link
  energy ledger (:meth:`BatchedEngine.member_energy_femtojoules`;
  integer addition commutes, so per-member energy sums are exact — see
  :func:`repro.units.joules_to_femtojoules`).

* **Exact merge corrections.** Re-merging members whose *histories*
  differ requires per-member result reconstruction: when class B is
  absorbed into digest-equal class A, every member of B records the
  frame shift ``B_totals - A_totals`` for each integer accumulator
  (per-channel link/transition femtojoules, transition count, ejected
  packets) and splices B's latency samples collected since the member
  joined B into a per-member prefix list. Because the accumulators are
  exact integers (and the latency summary depends only on the sample
  *multiset*), a member's reconstructed measurement —
  ``class_end + correction - member_start`` fed through
  :func:`~repro.power.accounting.derive_report` — is bit-identical to
  its scalar run, merges or none.

* **Bit-identity by construction.** The class engines run the *unmodified*
  scalar kernel; the only seam is a puppet policy
  (:class:`_PuppetPolicy`) that replays the canonical member's decision
  through the real :class:`~repro.core.controller.PortDVSController`
  dispatch path. Counters stay integers, every float op in the vector
  lane is the same single-rounded IEEE-754 op the scalar
  :class:`~repro.core.history.EWMAPredictor` performs, and golden tests
  (``tests/test_batched_kernel.py``) assert strict equality — not
  closeness — against the scalar kernel for every registered policy.

The scalar kernel remains the always-on oracle: anything this module
cannot express (mixed compatibility keys, the network sanitizer) falls
back to it, and :class:`~repro.harness.backends.BatchedBackend` evicts a
failing batch wholesale and retries each member scalar.

numpy is the only dependency and it is optional at import time: importing
this module without numpy succeeds, and :func:`require_numpy` raises a
clear, actionable error before any sweep work starts (never a raw
``ImportError`` mid-sweep).
"""

from __future__ import annotations

import dataclasses

from ..config import SimulationConfig
from ..core.policy import DVSAction, DVSPolicy, PolicyInputs
from ..core.registry import PolicyBuildContext, build_policy, knob_values
from ..core.thresholds import TABLE1_DEFAULT
from ..errors import ConfigError, SimulationError
from ..metrics.latency import LatencyCollector
from ..power.accounting import derive_report
from .simulator import SimulationResult, Simulator
from .snapshot import fast_clone, state_digest

try:  # pragma: no cover - exercised via require_numpy tests
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

#: Oldest numpy release the kernel is tested against (``np.take(out=)``
#: and the ``out=`` ufunc forms the hot lane relies on are all ancient;
#: this mostly guards against truly prehistoric installs).
MIN_NUMPY = (1, 22)

#: Default upper bound on members per lockstep batch. Beyond this the
#: split bookkeeping outgrows the stepping it amortizes.
DEFAULT_MAX_BATCH = 32


def _version_tuple(text: str) -> tuple[int, int]:
    parts = []
    for token in text.split(".")[:2]:
        digits = ""
        for char in token:
            if not char.isdigit():
                break
            digits += char
        parts.append(int(digits) if digits else 0)
    while len(parts) < 2:
        parts.append(0)
    return (parts[0], parts[1])


def require_numpy():
    """Return the numpy module, or raise a clear :class:`ConfigError`.

    Called at :class:`BatchedEngine` and
    :class:`~repro.harness.backends.BatchedBackend` construction so a
    missing or antique numpy fails *before* the sweep starts, with the
    remedy in the message, instead of surfacing as a raw ``ImportError``
    (or an ``AttributeError`` from an old numpy) mid-sweep.
    """
    if _np is None:
        raise ConfigError(
            "the batched sweep kernel (repro.network.batched) requires "
            f"numpy >= {MIN_NUMPY[0]}.{MIN_NUMPY[1]}, which is not "
            "installed; install it, or rerun with the scalar kernel "
            "(--kernel scalar, the default)"
        )
    version = _version_tuple(getattr(_np, "__version__", "0"))
    if version < MIN_NUMPY:
        raise ConfigError(
            f"the batched sweep kernel requires numpy >= "
            f"{MIN_NUMPY[0]}.{MIN_NUMPY[1]}, found {_np.__version__}; "
            "upgrade numpy or rerun with --kernel scalar"
        )
    return _np


def compatibility_key(config: SimulationConfig) -> str:
    """Fingerprint of everything one lockstep batch must share.

    Two configs may occupy the same batch exactly when they differ only
    in policy knobs — thresholds, EWMA weight, static level, generic
    ``params`` — because those are consulted solely at window boundaries,
    where the coordinator handles divergence. Everything else (topology,
    link model, traffic incl. seed and rate, phases, policy *name*,
    history window, initial level) must match, so the key is the config
    fingerprint with the knob fields pinned to canonical values.
    """
    dvs = dataclasses.replace(
        config.dvs,
        thresholds=TABLE1_DEFAULT,
        ewma_weight=3.0,
        static_level=0,
        params={},
    )
    return dataclasses.replace(config, dvs=dvs).fingerprint()


def plan_batches(
    configs: list[SimulationConfig], max_batch: int = DEFAULT_MAX_BATCH
) -> list[list[int]]:
    """Group config positions into lockstep-compatible batches.

    Returns lists of indices into *configs*: each batch shares one
    :func:`compatibility_key`, holds at most *max_batch* members, and
    preserves input order within and across groups (first appearance
    orders the groups), so planning is deterministic for a given input —
    a prerequisite for Serial==ProcessPool bit-identity.
    """
    if max_batch < 1:
        raise ConfigError("max_batch must be positive")
    groups: dict[str, list[int]] = {}
    for index, config in enumerate(configs):
        groups.setdefault(compatibility_key(config), []).append(index)
    batches: list[list[int]] = []
    for indices in groups.values():
        for start in range(0, len(indices), max_batch):
            batches.append(indices[start : start + max_batch])
    return batches


class _PuppetPolicy(DVSPolicy):
    """Replays a coordinator-chosen decision through the real controller.

    Installed in place of every class engine's per-port policy objects.
    ``has_replay`` is always True so the controller drains the replay
    counter every window; a zero preload makes
    :meth:`~repro.core.dvs_link.DVSChannel.charge_replay` a no-op, so
    puppets are transparent for replay-free policies.
    """

    has_replay = True

    def __init__(self) -> None:
        self.action = DVSAction.HOLD
        self.replay = 0

    def preload(self, action: DVSAction, replay: int) -> None:
        self.action = action
        self.replay = replay

    def decide(self, inputs: PolicyInputs) -> DVSAction:
        return self.action

    def consume_replay_flits(self) -> int:
        flits = self.replay
        self.replay = 0
        return flits


class DivergenceOverflow(Exception):
    """A batch's class count exceeded its ``max_classes`` budget.

    Raised by :meth:`BatchedEngine.run` mid-run (the class engines are
    abandoned); carries the member-index groups of the offending class
    partition so a backend can *fan out* — resubmit each group as its own
    smaller batch, typically to separate worker processes. Members that
    diverged together stay together, so each resubmitted group replays its
    shared decision prefix in lockstep.
    """

    def __init__(self, groups: list[list[int]]):
        super().__init__(
            f"batch diverged into {len(groups)} equivalence classes"
        )
        self.groups = groups


class _ClassState:
    """One equivalence class: a scalar engine plus the members riding it."""

    __slots__ = ("engine", "members", "puppets")

    def __init__(
        self, engine: Simulator, members: list[int], puppets: list[_PuppetPolicy]
    ):
        self.engine = engine
        self.members = members
        self.puppets = puppets


#: DVSAction by its signed code (the ``value`` attribute), for decoding
#: the int8 decision arrays back into enum members at puppet preload.
_ACTION_BY_CODE = {action.value: action for action in DVSAction}

# Channel-effect kinds for the canonical signature (what a decision
# actually does to the shared channel state; dropped requests and
# accepted no-ops are both NONE — they differ only in the per-member
# drop counter, which the coordinator carries separately).
_EFFECT_NONE = 0
_EFFECT_STEP = 1
_EFFECT_SLEEP = 2
_EFFECT_WAKE = 3


class BatchedEngine:
    """Runs N lockstep-compatible configurations as one copy-on-divergence
    ensemble; see the module docstring for the design.

    The public surface mirrors the scalar facade: construct with the
    member configs, call :meth:`run` once, receive one
    :class:`~repro.network.simulator.SimulationResult` per config in
    input order, each bit-identical to a scalar run of that config.
    """

    def __init__(
        self,
        configs: list[SimulationConfig],
        *,
        sanitize: bool = False,
        max_classes: int | None = None,
    ):
        np = require_numpy()
        self._np = np
        configs = list(configs)
        if not configs:
            raise ConfigError("batched engine needs at least one config")
        if max_classes is not None and max_classes < 1:
            raise ConfigError("max_classes must be positive")
        key = compatibility_key(configs[0])
        for config in configs[1:]:
            if compatibility_key(config) != key:
                raise ConfigError(
                    "batched engine members must share a compatibility key "
                    "(same topology, link, traffic, phases and policy name; "
                    "only policy knobs may differ) — use plan_batches() to "
                    "group arbitrary sweeps"
                )
        self.configs = configs
        first = configs[0]
        self.n_members = len(configs)
        self._history_window = first.dvs.history_window
        self._warmup = first.warmup_cycles
        self._measure = first.measure_cycles
        self._dvs_enabled = first.dvs.enabled
        self._finished = False
        #: Class-count budget; exceeding it raises DivergenceOverflow so a
        #: backend can fan the groups out across workers. None = unlimited.
        self._max_classes = max_classes

        root = Simulator(first, sanitize=sanitize)
        self._n_channels = len(root.channels)
        table = first.link.build_table()
        self._max_level = table.max_level

        members = self.n_members
        channels = self._n_channels
        #: Per-member dropped-request counters (the only controller field
        #: that reaches SimulationResult; the class engines' own counters
        #: follow the canonical member and are discarded).
        self._drops = np.zeros(members, dtype=np.int64)
        #: Integer-femtojoule per-link energy ledger, reconstructed per
        #: member at finish (class totals plus merge corrections, exact
        #: under integer summation).
        self._energy_fj = np.zeros((members, channels), dtype=np.int64)
        #: Diagnostics for the bench / docs honesty tables.
        self.splits = 0
        self.merges = 0
        self.boundaries = 0

        # Merge-correction frame shifts: a member's true accumulator total
        # is its class's total plus these (see the module docstring).
        # Per-channel femtojoule corrections are [member, channel]; the
        # rest are scalars per member. Latency is carried as a per-member
        # prefix list plus an index into the class's sample list (the
        # samples from that index on are the member's own).
        self._corr_link_fj = np.zeros((members, channels), dtype=np.int64)
        self._corr_trans_fj = np.zeros((members, channels), dtype=np.int64)
        self._corr_trans_count = np.zeros(members, dtype=np.int64)
        self._corr_offered = np.zeros(members, dtype=np.int64)
        self._corr_ejected = np.zeros(members, dtype=np.int64)
        self._lat_prefix: list[list[int]] = [[] for _ in range(members)]
        self._lat_from = [0] * members
        # Per-member measurement-start snapshots (captured after
        # begin_measurement; class begin totals plus corrections then).
        self._start_link_fj = np.zeros((members, channels), dtype=np.int64)
        self._start_trans_fj = np.zeros((members, channels), dtype=np.int64)
        self._start_trans_count = np.zeros(members, dtype=np.int64)

        # A 1-member batch needs no coordinator: no puppets, no decision
        # lanes — run() drives the root scalar engine natively (its real
        # policies stay installed), making batch=1 exactly a scalar run.
        if members == 1:
            self._vector_lane = False
            self._classes = [_ClassState(root, [0], [])]
            return

        self._vector_lane = self._dvs_enabled and first.dvs.policy == "history"
        self._member_policies: list[list[DVSPolicy]] = []
        if self._vector_lane:
            self._init_history_lane(np, table)
        elif self._dvs_enabled:
            # Object lane: real per-member, per-channel policy objects
            # built exactly as the engine builds them (same context, same
            # seeds), consulted by the coordinator instead of a controller.
            for config in configs:
                self._member_policies.append(
                    [
                        build_policy(
                            config.dvs,
                            PolicyBuildContext(
                                table=table,
                                channel_index=channel.spec.channel_id,
                                window_cycles=self._history_window,
                            ),
                        )
                        for channel in root.channels
                    ]
                )

        puppets = self._install_puppets(root)
        self._classes = [_ClassState(root, list(range(members)), puppets)]

    # -- construction helpers ---------------------------------------------

    def _init_history_lane(self, np, table) -> None:
        """Allocate the vectorized EWMA/decision lane for Algorithm 1."""
        members = self.n_members
        channels = self._n_channels
        shape = (members, channels)
        # Prediction registers (EWMAPredictor starts at 0.0).
        self._lu_pred = np.zeros(shape, dtype=np.float64)
        self._bu_pred = np.zeros(shape, dtype=np.float64)
        # Per-member constants, shaped (members, 1) to broadcast across
        # channels. Weight resolution goes through knob_values, exactly
        # like the registered history factory.
        weights = [knob_values(config.dvs)["ewma_weight"] for config in self.configs]
        self._weight = np.array(weights, dtype=np.float64).reshape(members, 1)
        self._weight_p1 = self._weight + 1.0
        thresholds = [config.dvs.thresholds for config in self.configs]
        column = lambda values: np.array(  # noqa: E731 - local shaping helper
            values, dtype=np.float64
        ).reshape(members, 1)
        self._congested_bu = column([t.congested_bu for t in thresholds])
        self._t_low_light = column([t.low_uncongested for t in thresholds])
        self._t_high_light = column([t.high_uncongested for t in thresholds])
        self._t_low_cong = column([t.low_congested for t in thresholds])
        self._t_high_cong = column([t.high_congested for t in thresholds])
        # Scratch buffers for the allocation-free boundary op: full-batch
        # sized, sliced per class. Names match their role in
        # _advance_history_lane.
        self._sc_prior = np.empty(shape, dtype=np.float64)
        self._sc_lu = np.empty(shape, dtype=np.float64)
        self._sc_bu = np.empty(shape, dtype=np.float64)
        self._sc_w = np.empty((members, 1), dtype=np.float64)
        self._sc_wp1 = np.empty((members, 1), dtype=np.float64)
        self._sc_col = np.empty((members, 1), dtype=np.float64)
        self._sc_light = np.empty(shape, dtype=bool)
        self._sc_heavy = np.empty(shape, dtype=bool)
        self._sc_m1 = np.empty(shape, dtype=bool)
        self._sc_m2 = np.empty(shape, dtype=bool)
        self._sc_down = np.empty(shape, dtype=bool)
        self._sc_up = np.empty(shape, dtype=bool)
        self._sc_act = np.empty(shape, dtype=np.int8)

    @staticmethod
    def _install_puppets(engine: Simulator) -> list[_PuppetPolicy]:
        puppets = []
        for controller in engine.controllers:
            puppet = _PuppetPolicy()
            controller.policy = puppet
            puppets.append(puppet)
        return puppets

    # -- public surface ----------------------------------------------------

    @property
    def class_count(self) -> int:
        """Live equivalence classes (1 == the whole batch is in lockstep)."""
        return len(self._classes)

    def member_energy_femtojoules(self):
        """Per-link energy ledger, integer femtojoules, ``[member, channel]``.

        Populated by :meth:`run`; converts back through
        :func:`repro.units.femtojoules_to_joules`.
        """
        return self._energy_fj

    def run(self) -> list[SimulationResult]:
        """Warm up, measure and summarize every member; results in order."""
        if self._finished:
            raise SimulationError("BatchedEngine.run() may only be called once")
        self._finished = True
        if self.n_members == 1:
            # Coordinator bypass: the root engine still carries its real
            # policies (no puppets were installed), so this is literally a
            # scalar run — same objects, same code path, same bits.
            engine = self._classes[0].engine
            result = engine.run()
            now = engine.now
            energy = self._energy_fj
            for j, channel in enumerate(engine.channels):
                dvs = channel.dvs
                dvs.finalize(now)
                energy[0, j] = dvs.total_energy_fj
            self._drops[0] = result.requests_dropped
            return [result]
        self._advance_phase(self._warmup)
        for cls in self._classes:
            cls.engine.begin_measurement()
        self._begin_ledger()
        self._advance_phase(self._warmup + self._measure)
        return self._finish()

    def _begin_ledger(self) -> None:
        """Snapshot every member's measurement-phase starting totals.

        Called right after ``begin_measurement`` (which finalizes channel
        energy to the boundary): a member's start is its class's begin
        totals plus any warmup-merge corrections. The meter-scope
        corrections (ejected/offered/latency) reset here, mirroring the
        meter reset inside ``begin_measurement``.
        """
        np = self._np
        self._corr_offered[:] = 0
        self._corr_ejected[:] = 0
        members = self.n_members
        self._lat_prefix = [[] for _ in range(members)]
        self._lat_from = [0] * members
        for cls in self._classes:
            channels = cls.engine.channels
            link = np.array(
                [channel.dvs.link_energy_fj for channel in channels],
                dtype=np.int64,
            )
            trans = np.array(
                [channel.dvs.transition_energy_fj for channel in channels],
                dtype=np.int64,
            )
            count = sum(channel.dvs.transition_count for channel in channels)
            rows = np.asarray(cls.members, dtype=np.intp)
            self._start_link_fj[rows] = link + self._corr_link_fj[rows]
            self._start_trans_fj[rows] = trans + self._corr_trans_fj[rows]
            self._start_trans_count[rows] = count + self._corr_trans_count[rows]

    # -- the boundary loop -------------------------------------------------

    def _advance_phase(self, end: int) -> None:
        """Advance every class to cycle *end* in lockstep, boundary by
        boundary.

        All classes share ``now`` at every point of this loop (splits run
        their boundary step at birth, landing on the same cycle as their
        parent), which is what makes boundary-time state digests
        comparable: re-merging coalesces classes whose states reconverged
        *at the same cycle*. A window boundary at exactly *end* belongs to
        the next phase (it closes inside ``step(end)``), matching the
        scalar kernel's phasing.
        """
        if not self._dvs_enabled:
            for cls in self._classes:
                cls.engine.run_until(end)
            return
        window = self._history_window
        max_classes = self._max_classes
        while True:
            now = self._classes[0].engine.now
            if now == 0:
                boundary = window
            elif now % window == 0:
                # The boundary at `now` is still pending: it closes
                # inside step(now), which has not run yet.
                boundary = now
            else:
                boundary = now + (window - now % window)
            if boundary >= end:
                for cls in self._classes:
                    cls.engine.run_until(end)
                return
            for cls in self._classes:
                cls.engine.run_until(boundary)
            if len(self._classes) > 1:
                self._merge_classes()
            # Snapshot the list: classes split off at this boundary have
            # already run their boundary step and must not be reprocessed.
            for cls in list(self._classes):
                self._close_boundary(cls)
            if max_classes is not None and len(self._classes) > max_classes:
                raise DivergenceOverflow(
                    [list(cls.members) for cls in self._classes]
                )

    def _merge_classes(self) -> None:
        """Coalesce classes whose engine states re-converged.

        Runs at a boundary cycle *before* the boundary's events dispatch:
        every class sits at the same ``now`` with its window's decision
        inputs accrued, so digest equality here means the engines evolve
        bit-identically from this point for identical future commands.
        The first class with a given digest (class-list order, which is
        deterministic) survives; absorbed members record frame-shift
        corrections (see :meth:`_absorb`).
        """
        survivors: dict[bytes, _ClassState] = {}
        merged: list[_ClassState] = []
        for cls in self._classes:
            digest = state_digest(cls.engine)
            target = survivors.get(digest)
            if target is None:
                survivors[digest] = cls
                merged.append(cls)
            else:
                self._absorb(target, cls)
                self.merges += 1
        self._classes = merged

    def _absorb(self, target: _ClassState, absorbed: _ClassState) -> None:
        """Fold *absorbed*'s members into digest-equal *target*.

        Every integer accumulator gets the exact frame shift
        ``absorbed_totals - target_totals`` added to the member's
        correction, so ``class_total + correction`` keeps equaling the
        member's true scalar-run total. The energy reads skip
        ``finalize``: digest equality includes ``_last_energy_cycle`` and
        the power state, so both engines have accrued to the same point
        and will accrue identically — the raw difference is exact.
        """
        np = self._np
        a = target.engine
        b = absorbed.engine
        link_shift = np.array(
            [channel.dvs.link_energy_fj for channel in b.channels],
            dtype=np.int64,
        ) - np.array(
            [channel.dvs.link_energy_fj for channel in a.channels],
            dtype=np.int64,
        )
        trans_shift = np.array(
            [channel.dvs.transition_energy_fj for channel in b.channels],
            dtype=np.int64,
        ) - np.array(
            [channel.dvs.transition_energy_fj for channel in a.channels],
            dtype=np.int64,
        )
        count_shift = sum(
            channel.dvs.transition_count for channel in b.channels
        ) - sum(channel.dvs.transition_count for channel in a.channels)
        a_meter = a._meter
        b_meter = b._meter
        offered_shift = b_meter.offered - a_meter.offered
        ejected_shift = b_meter.ejected - a_meter.ejected
        b_latencies = b_meter.latency._latencies
        a_count = len(a_meter.latency._latencies)
        rows = np.asarray(absorbed.members, dtype=np.intp)
        self._corr_link_fj[rows] += link_shift
        self._corr_trans_fj[rows] += trans_shift
        self._corr_trans_count[rows] += count_shift
        self._corr_offered[rows] += offered_shift
        self._corr_ejected[rows] += ejected_shift
        for member in absorbed.members:
            # The member's samples so far: its prefix plus what its old
            # class collected since it joined; from here on it rides the
            # target class's list.
            self._lat_prefix[member] += b_latencies[self._lat_from[member] :]
            self._lat_from[member] = a_count
        target.members.extend(absorbed.members)

    def _close_boundary(self, cls: _ClassState) -> list[_ClassState]:
        """Process one history-window boundary for one class.

        Equivalent to the scalar ``step(boundary)`` for every member:
        run the first half of the step (event dispatch + injection), read
        the exact decision inputs ``close_window`` would compute, decide
        per member, split the class where effects diverge, preload the
        puppets with each group's canonical decision, and run the second
        half (the real controller dispatch plus router stepping).
        Returns the classes split off, already advanced past the boundary.
        """
        np = self._np
        engine = cls.engine
        now = engine.now
        self.boundaries += 1
        engine.begin_boundary_step()

        controllers = engine.controllers
        channels = self._n_channels
        members = cls.members
        count = len(members)

        # Class-level decision inputs: exactly the expressions
        # PortDVSController.close_window evaluates (same float ops in the
        # same order), read without mutating the controller registers —
        # close_window itself updates them in finish_boundary_step below.
        lu = [0.0] * channels
        bu = [0.0] * channels
        level = [0] * channels
        steady = [False] * channels
        asleep = [False] * channels
        demand = [False] * channels
        sleep_ok = [False] * channels
        for j, controller in enumerate(controllers):
            channel = controller.channel
            busy = channel.busy_window
            lu[j] = min(1.0, busy / controller.window_cycles)
            occupancy = (
                controller.occupancy_source.cumulative_integral(now)
                - controller._last_occupancy_integral
            )
            bu[j] = min(
                1.0,
                occupancy / (controller.window_cycles * controller.buffer_capacity),
            )
            level[j] = channel.level
            steady[j] = channel.is_steady
            asleep[j] = channel.sleeping
            demand[j] = channel.sleep_demand
            sleep_ok[j] = channel.sleep_permitted(now)

        # Per-member decisions: signed DVSAction codes [member, channel].
        replay = np.zeros((count, channels), dtype=np.int64)
        if self._vector_lane:
            idx = np.asarray(members, dtype=np.intp)
            lu_row = np.asarray(lu, dtype=np.float64)
            bu_row = np.asarray(bu, dtype=np.float64)
            act = self._advance_history_lane(idx, lu_row, bu_row)
        else:
            act = np.zeros((count, channels), dtype=np.int8)
            for i, member in enumerate(members):
                policies = self._member_policies[member]
                for j in range(channels):
                    policy = policies[j]
                    action = policy.decide(
                        PolicyInputs(
                            link_utilization=lu[j],
                            buffer_utilization=bu[j],
                            level=level[j],
                            max_level=self._max_level,
                            cycle=now,
                            asleep=asleep[j],
                            sleep_demand=demand[j],
                        )
                    )
                    act[i, j] = action.value
                    if policy.has_replay:
                        replay[i, j] = policy.consume_replay_flits()

        # Canonical channel effects + per-member drop accounting. The
        # predicates mirror DVSChannel.request_level / request_sleep /
        # request_wake acceptance exactly (see those methods).
        level_arr = np.asarray(level, dtype=np.int64)
        steady_arr = np.asarray(steady, dtype=bool)
        sleep_ok_arr = np.asarray(sleep_ok, dtype=bool)
        asleep_arr = np.asarray(asleep, dtype=bool)
        step_mask = np.abs(act) == 1
        target = np.clip(level_arr + act, 0, self._max_level)
        effect_step = step_mask & steady_arr & (target != level_arr)
        effect_sleep = (act == DVSAction.SLEEP.value) & sleep_ok_arr
        effect_wake = (act == DVSAction.WAKE.value) & asleep_arr
        dropped = (
            (step_mask & ~steady_arr)
            | ((act == DVSAction.SLEEP.value) & ~sleep_ok_arr)
            | ((act == DVSAction.WAKE.value) & ~asleep_arr)
        )
        member_rows = np.asarray(members, dtype=np.intp)
        np.add.at(self._drops, member_rows, dropped.sum(axis=1, dtype=np.int64))

        kind = (
            effect_step * _EFFECT_STEP
            + effect_sleep * _EFFECT_SLEEP
            + effect_wake * _EFFECT_WAKE
        ).astype(np.int64)
        signature = (
            (kind << 48) | (np.where(effect_step, target, 0) << 32) | replay
        )

        # Group members by identical effect rows (insertion order keeps
        # the grouping deterministic across backends).
        groups: dict[bytes, list[int]] = {}
        for i in range(count):
            groups.setdefault(signature[i].tobytes(), []).append(i)
        ordered = list(groups.values())

        new_classes: list[_ClassState] = []
        for rows in ordered[1:]:
            # Divergent group: snapshot the pre-finish engine state.
            # fast_clone maps every internal reference (bound methods,
            # shared counters, pending events) onto the clone and rebuilds
            # the id()-keyed transition-event index; the clone's puppets
            # are re-collected from its controllers.
            clone = fast_clone(engine)
            puppets = [controller.policy for controller in clone.controllers]
            self._preload(puppets, act[rows[0]], replay[rows[0]])
            clone.finish_boundary_step()
            split = _ClassState(clone, [members[i] for i in rows], puppets)
            new_classes.append(split)
            self.splits += 1
        if new_classes:
            cls.members = [members[i] for i in ordered[0]]
            self._classes.extend(new_classes)

        self._preload(cls.puppets, act[ordered[0][0]], replay[ordered[0][0]])
        engine.finish_boundary_step()
        return new_classes

    @staticmethod
    def _preload(puppets: list[_PuppetPolicy], act_row, replay_row) -> None:
        for j, puppet in enumerate(puppets):
            puppet.preload(_ACTION_BY_CODE[int(act_row[j])], int(replay_row[j]))

    def _advance_history_lane(self, idx, lu_row, bu_row):  # repro-hot
        """Vectorized Algorithm 1 for one class's members at one boundary.

        One in-place numpy op per pipeline stage, every ufunc writing into
        a preallocated scratch buffer (lint rule R6 enforces the
        no-temporaries contract). Each element performs exactly the
        scalar sequence of :class:`~repro.core.history.EWMAPredictor`
        and :meth:`HistoryDVSPolicy.decide` — single-rounded IEEE-754
        multiply/add/divide and the same comparisons — so the lane is
        bit-identical to the per-port objects it replaces.

        Returns an int8 ``[len(idx), channel]`` view of signed
        :class:`~repro.core.policy.DVSAction` codes.
        """
        np = self._np
        count = idx.shape[0]
        prior = self._sc_prior[:count]
        lu = self._sc_lu[:count]
        bu = self._sc_bu[:count]
        weight = self._sc_w[:count]
        weight_p1 = self._sc_wp1[:count]
        column = self._sc_col[:count]
        light = self._sc_light[:count]
        heavy = self._sc_heavy[:count]
        mask_a = self._sc_m1[:count]
        mask_b = self._sc_m2[:count]
        down = self._sc_down[:count]
        up = self._sc_up[:count]
        act = self._sc_act[:count]

        np.take(self._weight, idx, axis=0, out=weight)
        np.take(self._weight_p1, idx, axis=0, out=weight_p1)

        # LU_pred = (W * LU + LU_pred) / (W + 1)   (paper Eq. (5))
        np.take(self._lu_pred, idx, axis=0, out=prior)
        np.multiply(weight, lu_row, out=lu)
        np.add(lu, prior, out=lu)
        np.divide(lu, weight_p1, out=lu)
        self._lu_pred[idx] = lu

        # BU_pred, same recurrence.
        np.take(self._bu_pred, idx, axis=0, out=prior)
        np.multiply(weight, bu_row, out=bu)
        np.add(bu, prior, out=bu)
        np.divide(bu, weight_p1, out=bu)
        self._bu_pred[idx] = bu

        # Threshold select (BU litmus) + compare, regime by regime so the
        # selected thresholds are the member's exact floats, never a
        # blended recomputation.
        np.take(self._congested_bu, idx, axis=0, out=column)
        np.less(bu, column, out=light)
        np.logical_not(light, out=heavy)

        np.take(self._t_low_light, idx, axis=0, out=column)
        np.less(lu, column, out=mask_a)
        np.logical_and(light, mask_a, out=mask_a)
        np.take(self._t_low_cong, idx, axis=0, out=column)
        np.less(lu, column, out=mask_b)
        np.logical_and(heavy, mask_b, out=mask_b)
        np.logical_or(mask_a, mask_b, out=down)

        np.take(self._t_high_light, idx, axis=0, out=column)
        np.greater(lu, column, out=mask_a)
        np.logical_and(light, mask_a, out=mask_a)
        np.take(self._t_high_cong, idx, axis=0, out=column)
        np.greater(lu, column, out=mask_b)
        np.logical_and(heavy, mask_b, out=mask_b)
        np.logical_or(mask_a, mask_b, out=up)

        act.fill(DVSAction.HOLD.value)
        act[down] = DVSAction.STEP_DOWN.value
        act[up] = DVSAction.STEP_UP.value
        return act

    # -- summarization -----------------------------------------------------

    def _finish(self) -> list[SimulationResult]:
        """Reconstruct every member's result from its class plus corrections.

        One uniform path: a never-merged member has zero corrections and
        an empty latency prefix, so its reconstruction feeds the exact
        integers of its class through the exact float-op sequence
        (:func:`~repro.power.accounting.derive_report`, the same division
        for the rates, a latency summary over the same multiset) that the
        scalar kernel's ``finish()`` performs — bit-identical by
        construction, with no second code path to drift.
        """
        np = self._np
        results: list[SimulationResult | None] = [None] * self.n_members
        for cls in self._classes:
            engine = cls.engine
            class_result = engine.finish()
            accountant = engine.accountant
            meter = engine._meter
            # finish() finalized every channel to `now` via the
            # accountant, so these totals are current.
            link_end = np.array(
                [channel.dvs.link_energy_fj for channel in engine.channels],
                dtype=np.int64,
            )
            trans_end = np.array(
                [channel.dvs.transition_energy_fj for channel in engine.channels],
                dtype=np.int64,
            )
            count_end = sum(
                channel.dvs.transition_count for channel in engine.channels
            )
            latencies = meter.latency._latencies
            measure_cycles = class_result.measure_cycles
            for member in cls.members:
                member_link = link_end + self._corr_link_fj[member]
                member_trans = trans_end + self._corr_trans_fj[member]
                self._energy_fj[member, :] = member_link + member_trans
                power = derive_report(
                    int(member_link.sum()) - int(self._start_link_fj[member].sum()),
                    int(member_trans.sum())
                    - int(self._start_trans_fj[member].sum()),
                    count_end
                    + int(self._corr_trans_count[member])
                    - int(self._start_trans_count[member]),
                    meter.measure_start,
                    engine.now,
                    accountant.router_clock_hz,
                    accountant.baseline_power_w,
                )
                collector = LatencyCollector()
                collector._latencies = (
                    self._lat_prefix[member] + latencies[self._lat_from[member] :]
                )
                offered = meter.offered + int(self._corr_offered[member])
                ejected = meter.ejected + int(self._corr_ejected[member])
                results[member] = dataclasses.replace(
                    class_result,
                    config=self.configs[member],
                    offered_packets=offered,
                    ejected_packets=ejected,
                    offered_rate=offered / measure_cycles,
                    accepted_rate=ejected / measure_cycles,
                    latency=collector.stats(),
                    power=power,
                    requests_dropped=int(self._drops[member]),
                )
        return results  # type: ignore[return-value]


def run_batch(
    configs: list[SimulationConfig], *, sanitize: bool = False
) -> list[SimulationResult]:
    """Convenience: one-shot batched run of *configs* (shared key required)."""
    return BatchedEngine(configs, sanitize=sanitize).run()
