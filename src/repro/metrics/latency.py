"""Packet latency collection.

Latency spans "the creation of the first flit of the packet to ejection of
its last flit at the destination router, including source queuing time and
assuming immediate ejection" (paper Section 4.2). The simulator feeds this
collector every ejected packet created inside the measurement phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SimulationError


@dataclass(frozen=True, slots=True)
class LatencyStats:
    """Summary of a latency sample set (cycles)."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    minimum: int
    maximum: int

    @classmethod
    def empty(cls) -> "LatencyStats":
        return cls(
            count=0,
            mean=math.nan,
            median=math.nan,
            p95=math.nan,
            p99=math.nan,
            minimum=0,
            maximum=0,
        )


class LatencyCollector:
    """Accumulates per-packet latencies."""

    __slots__ = ("_latencies",)

    def __init__(self):
        self._latencies: list[int] = []

    def record(self, latency: int) -> None:
        if latency < 0:
            raise SimulationError(f"negative packet latency {latency}")
        self._latencies.append(latency)

    def reset(self) -> None:
        self._latencies.clear()

    @property
    def count(self) -> int:
        return len(self._latencies)

    @property
    def latencies(self) -> list[int]:
        """The raw sample list (a copy)."""
        return list(self._latencies)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile ``q`` in [0, 100]."""
        if not self._latencies:
            raise SimulationError("no latency samples collected")
        if not 0.0 <= q <= 100.0:
            raise SimulationError(f"percentile {q} out of range")
        ordered = sorted(self._latencies)
        rank = max(0, min(len(ordered) - 1, math.ceil(q / 100.0 * len(ordered)) - 1))
        return float(ordered[rank])

    def stats(self) -> LatencyStats:
        """Summary statistics (``LatencyStats.empty()`` when no samples)."""
        if not self._latencies:
            return LatencyStats.empty()
        ordered = sorted(self._latencies)
        n = len(ordered)
        return LatencyStats(
            count=n,
            mean=sum(ordered) / n,
            median=float(ordered[n // 2]),
            p95=float(ordered[max(0, math.ceil(0.95 * n) - 1)]),
            p99=float(ordered[max(0, math.ceil(0.99 * n) - 1)]),
            minimum=ordered[0],
            maximum=ordered[-1],
        )
